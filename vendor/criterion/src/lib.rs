//! Offline stand-in for the subset of the `criterion` crate API this
//! workspace uses (the build environment has no access to crates.io).
//!
//! Benchmarks register with [`criterion_group!`] / [`criterion_main!`] and
//! run with `cargo bench`. Instead of criterion's statistical machinery,
//! each benchmark is warmed up briefly and then timed over a fixed
//! measurement window; the mean time per iteration is printed. When invoked
//! with `--test` (as `cargo test --benches` does) every routine runs exactly
//! once, so benchmarks double as smoke tests.

use std::time::{Duration, Instant};

/// How [`Bencher::iter_batched`] sizes its batches. The shim always runs
/// one routine invocation per setup call, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Times closures for one benchmark id.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Nanoseconds per iteration measured by the last `iter*` call.
    mean_nanos: f64,
    iterations: u64,
}

impl Bencher<'_> {
    /// Times `routine` in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.test_mode {
            std::hint::black_box(routine());
            self.mean_nanos = 0.0;
            self.iterations = 1;
            return;
        }
        let warmup_end = Instant::now() + self.config.warmup_time;
        while Instant::now() < warmup_end {
            std::hint::black_box(routine());
        }
        let mut iterations = 0u64;
        let start = Instant::now();
        let measure_end = start + self.config.measurement_time;
        while Instant::now() < measure_end || iterations < self.config.min_iterations {
            std::hint::black_box(routine());
            iterations += 1;
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / iterations as f64;
        self.iterations = iterations;
    }

    /// Times `routine` over inputs produced by `setup`; only the routine is
    /// on the timed path.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.config.test_mode {
            std::hint::black_box(routine(setup()));
            self.mean_nanos = 0.0;
            self.iterations = 1;
            return;
        }
        let warmup_end = Instant::now() + self.config.warmup_time;
        while Instant::now() < warmup_end {
            std::hint::black_box(routine(setup()));
        }
        let mut iterations = 0u64;
        let mut elapsed = Duration::ZERO;
        let measure_start = Instant::now();
        let measure_end = measure_start + self.config.measurement_time;
        while Instant::now() < measure_end || iterations < self.config.min_iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
            iterations += 1;
        }
        self.mean_nanos = elapsed.as_nanos() as f64 / iterations as f64;
        self.iterations = iterations;
    }
}

#[derive(Debug, Clone)]
struct Config {
    warmup_time: Duration,
    measurement_time: Duration,
    min_iterations: u64,
    test_mode: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warmup_time: Duration::from_millis(150),
            measurement_time: Duration::from_millis(600),
            min_iterations: 10,
            test_mode: false,
        }
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            config: Config {
                test_mode,
                ..Config::default()
            },
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (the shim maps it onto the minimum
    /// iteration count).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.config.min_iterations = samples.max(1) as u64;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.config.measurement_time = time;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, time: Duration) -> Self {
        self.config.warmup_time = time;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>),
    {
        run_one(&self.config, &id.into(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.criterion.config, &full, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnOnce(&mut Bencher<'_>)>(config: &Config, id: &str, f: F) {
    let mut bencher = Bencher {
        config,
        mean_nanos: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    if config.test_mode {
        println!("test {id} ... ok (bench smoke)");
    } else if bencher.iterations == 0 {
        println!("{id:<50} (no iterations run)");
    } else {
        println!(
            "{id:<50} {:>12.1} ns/iter ({} iterations)",
            bencher.mean_nanos, bencher.iterations
        );
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            config: Config {
                warmup_time: Duration::from_millis(1),
                measurement_time: Duration::from_millis(5),
                min_iterations: 3,
                test_mode: false,
            },
        }
    }

    #[test]
    fn iter_measures_something() {
        let mut c = fast_criterion();
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = fast_criterion();
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.benchmark_group("g").bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| runs += 1,
                BatchSize::SmallInput,
            );
        });
        assert!(runs >= 3);
        assert!(setups >= runs);
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut c = Criterion {
            config: Config {
                test_mode: true,
                ..Config::default()
            },
        };
        let mut ran = 0u64;
        c.bench_function("once", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }
}
