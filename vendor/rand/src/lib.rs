//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses (the build environment has no access to crates.io).
//!
//! Implemented surface: [`Rng::gen_range`] over half-open and inclusive
//! integer ranges, [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//! The generator is xoshiro256** seeded through SplitMix64 — not
//! cryptographically secure, but a high-quality deterministic stream, which
//! is exactly what the latency models, workload generators and property
//! tests need.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Converts `self` to the `u64` domain the sampler works in.
    fn to_u64(self) -> u64;
    /// Converts back from the sampler domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from an empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

/// Uniform sample in `0..bound` using rejection to avoid modulo bias.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// The random-number-generator interface.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A random `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(0..=3u8);
            assert!(w <= 3);
            let u: usize = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
