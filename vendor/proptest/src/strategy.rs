//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically produces values from an RNG stream; the
//! [`proptest!`](crate::proptest) macro drives one per test parameter. No
//! shrinking is performed (see the crate docs).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy built by [`prop_oneof!`](crate::prop_oneof): draws one of the
/// component strategies uniformly, then draws a value from it. The
/// components are erased to closures so heterogeneous strategy types with a
/// common `Value` can be mixed, like the real crate's `TupleUnion`.
pub struct OneOf<V> {
    options: Vec<DrawFn<V>>,
}

/// One type-erased branch of a [`OneOf`] union: draws a value from the
/// branch's underlying strategy.
pub type DrawFn<V> = Box<dyn Fn(&mut StdRng) -> V>;

impl<V> OneOf<V> {
    /// Builds the union; used by the macro expansion.
    #[doc(hidden)]
    pub fn new(options: Vec<DrawFn<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let index = rng.gen_range(0..self.options.len());
        (self.options[index])(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The strategy generating arbitrary values of this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for an integer type.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyInt { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    type Strategy = bool::Any;
    fn arbitrary() -> Self::Strategy {
        bool::ANY
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy generating `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The boolean strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Size specification accepted by the collection strategies: an exact
/// `usize` or a `usize` range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *range.start(),
            max: *range.end() + 1,
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`, ...).

    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`.
    ///
    /// If the element domain is too small to reach the target size, the set
    /// is returned with as many distinct elements as could be drawn (after a
    /// bounded number of attempts), like the real proptest under rejection
    /// pressure.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < 64 * (target + 1) {
                if !set.insert(self.element.generate(rng)) {
                    attempts += 1;
                }
            }
            set
        }
    }
}

/// String strategies: a `&str` is interpreted as a regular expression from
/// a small supported subset and generates matching `String`s.
///
/// Supported syntax: a sequence of atoms, where an atom is a literal
/// character or a character class `[...]` (literal characters and `a-z`
/// ranges), optionally followed by a `{m}` or `{m,n}` repetition. This
/// covers the patterns used by this workspace's tests; anything else
/// panics with a clear message.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.min == atom.max {
                atom.min
            } else {
                rng.gen_range(atom.min..=atom.max)
            };
            for _ in 0..count {
                let idx = rng.gen_range(0..atom.chars.len());
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut set = BTreeSet::new();
                let mut class = Vec::new();
                for c in chars.by_ref() {
                    if c == ']' {
                        break;
                    }
                    class.push(c);
                }
                let mut i = 0;
                while i < class.len() {
                    if i + 2 < class.len() && class[i + 1] == '-' {
                        let (lo, hi) = (class[i], class[i + 2]);
                        assert!(lo <= hi, "invalid range in character class: {pattern}");
                        for c in lo..=hi {
                            set.insert(c);
                        }
                        i += 3;
                    } else {
                        set.insert(class[i]);
                        i += 1;
                    }
                }
                assert!(
                    !set.is_empty(),
                    "empty character class in pattern: {pattern}"
                );
                set.into_iter().collect()
            }
            '\\' => vec![chars.next().expect("dangling escape in pattern")],
            '.' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => panic!(
                "unsupported regex syntax {c:?} in {pattern:?}: this offline \
                 proptest stand-in only supports literal characters and \
                 [class]{{m,n}} atoms"
            ),
            literal => vec![literal],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition lower bound"),
                    n.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let exact = spec.trim().parse().expect("bad repetition count");
                    (exact, exact)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom {
            chars: choices,
            min,
            max,
        });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn ranges_and_tuples_generate_in_domain() {
        let mut rng = rng();
        for _ in 0..200 {
            let (a, b) = (0u64..10, 5usize..6).generate(&mut rng);
            assert!(a < 10);
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = rng();
        let s = (1u64..2).prop_map(|v| v * 10);
        assert_eq!(s.generate(&mut rng), 10);
    }

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = rng();
        let fixed = collection::vec(0u64..5, 3).generate(&mut rng);
        assert_eq!(fixed.len(), 3);
        for _ in 0..100 {
            let ranged = collection::vec(0u64..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&ranged.len()));
        }
    }

    #[test]
    fn btree_set_reaches_target_when_domain_allows() {
        let mut rng = rng();
        for _ in 0..50 {
            let set = collection::btree_set(0usize..6, 1..6).generate(&mut rng);
            assert!(!set.is_empty() && set.len() < 6);
        }
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = "[a-z0-9:_-]{1,32}".generate(&mut rng);
            assert!((1..=32).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ":_-".contains(c)));
        }
        let exact = "ab[01]{3}".generate(&mut rng);
        assert_eq!(exact.len(), 5);
        assert!(exact.starts_with("ab"));
    }

    #[test]
    fn any_bool_produces_both_values() {
        let mut rng = rng();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[any::<bool>().generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
