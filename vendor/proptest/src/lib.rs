//! Offline stand-in for the subset of the `proptest` crate API this
//! workspace uses (the build environment has no access to crates.io).
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` inner attribute), [`prop_assert!`] /
//! [`prop_assert_eq!`], the [`Strategy`] trait with
//! `prop_map`, integer-range and tuple strategies, `any::<T>()`,
//! `prop::bool::ANY`, `prop::collection::{vec, btree_set}`, and string
//! strategies for a small regex subset (`[class]{m,n}` atoms).
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (fully deterministic), there is **no shrinking**, and the
//! default case count is 64. Failures report the failing case index and
//! message; reproduce by re-running the test (same seed, same stream).

pub mod strategy;

pub mod test_runner {
    //! Configuration and error types used by the expanded test bodies.

    /// Subset of proptest's runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked with.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod prop {
    //! Named strategy collections (`prop::collection::vec`, ...).

    pub use crate::strategy::{bool, collection};
}

pub use strategy::{any, Arbitrary, OneOf, Strategy};

#[doc(hidden)]
pub use rand as __rand;

/// Picks uniformly among the given strategies (which must share a `Value`
/// type) each time a value is drawn. Unlike the real crate, weighted
/// `weight => strategy` entries are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $({
                let strategy = $strategy;
                ::std::boxed::Box::new(move |rng: &mut $crate::__rand::rngs::StdRng| {
                    $crate::strategy::Strategy::generate(&strategy, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::__rand::rngs::StdRng) -> _>
            }),+
        ])
    };
}

/// Derives the deterministic per-test RNG used by [`proptest!`].
#[doc(hidden)]
pub fn __rng_for_test(test_name: &str) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};
    // DefaultHasher::new() uses fixed keys, so the seed — and therefore the
    // whole case stream — is stable across runs and machines.
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut hasher);
    rand::rngs::StdRng::seed_from_u64(hasher.finish() ^ 0x5EED_CAFE_F00D_D00D)
}

pub mod prelude {
    //! Everything a property test file needs.

    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Checks properties over randomly generated inputs.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))] // optional
///     #[test]
///     fn property(a in strategy_a(), mut b in 0u64..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::__rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "proptest: property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}
