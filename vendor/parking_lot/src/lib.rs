//! Offline stand-in for the subset of the `parking_lot` crate API this
//! workspace uses (the build environment has no access to crates.io).
//!
//! Semantics match `parking_lot` where it differs from `std`:
//! [`Mutex::lock`] returns the guard directly (no poisoning — a panicked
//! holder does not poison the lock for everyone else), and
//! [`Condvar::wait_for`] / [`Condvar::wait_until`] take the guard by `&mut`
//! instead of by value. Internally everything delegates to `std::sync`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive (non-poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard of a [`Mutex`].
///
/// The inner `Option` is always `Some` between calls; it exists so that the
/// [`Condvar`] wait methods can temporarily take ownership of the underlying
/// `std` guard while re-parking the thread.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (non-poisoning).
///
/// Mirrors the subset of `parking_lot::RwLock` the workspace uses: guards
/// are returned directly, a panicked holder does not poison the lock, and
/// `try_read`/`try_write` return `Option`s.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(RwLockReadGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(RwLockWriteGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII shared-read guard of a [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII exclusive-write guard of a [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a bounded [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard invariant");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard invariant");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Blocks until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        assert!(cv
            .wait_for(&mut guard, Duration::from_millis(5))
            .timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waker = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            *waker.0.lock() = true;
            waker.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            let result = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
            assert!(!result.timed_out(), "waiter should be woken, not time out");
        }
        handle.join().unwrap();
    }

    #[test]
    fn rwlock_readers_share_and_writers_exclude() {
        let lock = RwLock::new(5);
        {
            let r1 = lock.read();
            let r2 = lock.try_read().expect("readers share");
            assert_eq!((*r1, *r2), (5, 5));
            assert!(lock.try_write().is_none(), "writer excluded by readers");
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn rwlock_survives_a_panicked_writer() {
        let lock = Arc::new(RwLock::new(0));
        let writer = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = writer.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 0);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
