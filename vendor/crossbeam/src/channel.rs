//! Multi-producer multi-consumer channels with the `crossbeam-channel`
//! surface used by this workspace: [`unbounded`], [`bounded`], blocking and
//! non-blocking send/receive, receive with timeout, and queue length.
//!
//! Built on a mutex-protected deque with two condition variables. Slower
//! than the real lock-free implementation but semantically equivalent for
//! the protocol code and tests in this repository.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and full.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a bounded MPMC channel holding at most `capacity` messages.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(capacity))
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    self.shared.not_full.wait(&mut state);
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Sends `value` without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one is available.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            self.shared.not_empty.wait(&mut state);
        }
    }

    /// Receives a message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            if self
                .shared
                .not_empty
                .wait_until(&mut state, deadline)
                .timed_out()
            {
                return match state.queue.pop_front() {
                    Some(value) => {
                        drop(state);
                        self.shared.not_full.notify_one();
                        Ok(value)
                    }
                    None if state.senders == 0 => Err(RecvTimeoutError::Disconnected),
                    None => Err(RecvTimeoutError::Timeout),
                };
            }
        }
    }

    /// Receives a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock();
        match state.queue.pop_front() {
            Some(value) => {
                drop(state);
                self.shared.not_full.notify_one();
                Ok(value)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake blocked senders so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
    }

    #[test]
    fn disconnect_propagates_to_receiver() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn disconnect_propagates_to_sender() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(7u8).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        handle.join().unwrap();
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let producer = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(5));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        producer.join().unwrap();
    }

    #[test]
    fn mpmc_all_messages_delivered_once() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Ok(v) = rx.recv() {
                        seen.push(v);
                    }
                    seen
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort();
        assert_eq!(all.len(), 400);
        all.dedup();
        assert_eq!(all.len(), 400);
    }
}
