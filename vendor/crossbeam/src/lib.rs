//! Offline stand-in for the subset of the `crossbeam` crate API this
//! workspace uses (the build environment has no access to crates.io): the
//! `channel` module with MPMC unbounded/bounded channels.

pub mod channel;
