//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros backing
//! the offline `serde` stand-in (the build environment has no access to
//! crates.io).
//!
//! The derives expand to nothing: they exist so that types in this workspace
//! can keep their serde annotations (including `#[serde(...)]` helper
//! attributes, which the derives declare and thereby consume) without pulling
//! in the real serde. No code in the workspace performs actual
//! serialization; the moment one does, these shims must be replaced by the
//! real crates.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
