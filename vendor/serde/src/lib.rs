//! Offline stand-in for the subset of the `serde` crate API this workspace
//! uses (the build environment has no access to crates.io).
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — nothing serializes yet — so this crate simply re-exports
//! no-op derive macros. When real serialization lands, replace this shim
//! (and `vendor/serde_derive`) with the actual crates.

pub use serde_derive::{Deserialize, Serialize};
