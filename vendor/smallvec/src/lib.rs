//! Offline stand-in for the subset of the `smallvec` crate API this
//! workspace uses (the build environment has no access to crates.io): a
//! vector that stores up to `N` elements inline and spills to the heap only
//! beyond that capacity.
//!
//! The workspace uses it for allocation-lean vector clocks
//! (`sss-vclock`): clusters up to the inline arity never heap-allocate a
//! clock, and clock clones on the message hot path become plain `memcpy`s.
//!
//! Differences from the real crate, acceptable for a stand-in:
//!
//! * backed by a default-initialized array plus an (initially unallocated)
//!   `Vec`, so `Array::Item` must implement [`Default`] — true for every
//!   element type the workspace stores;
//! * once spilled, a `SmallVec` never moves back inline (matching the real
//!   crate's behaviour for everything but `shrink_to_fit`).

#![deny(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Backing storage of a [`SmallVec`]: a fixed-size array type.
///
/// Implemented for `[T; N]` for every `T: Default` and every `N`.
pub trait Array {
    /// Element type stored by the array.
    type Item;
    /// Number of elements storable inline.
    const CAPACITY: usize;
    /// The initialized portion of the buffer as a slice.
    fn as_slice(&self) -> &[Self::Item];
    /// The initialized portion of the buffer as a mutable slice.
    fn as_mut_slice(&mut self) -> &mut [Self::Item];
    /// A buffer with every slot holding `Item::default()`.
    fn filled_with_default() -> Self;
    /// Moves the first `len` elements out of the buffer into `out`,
    /// leaving defaults behind.
    fn drain_into(&mut self, len: usize, out: &mut Vec<Self::Item>);
}

impl<T: Default, const N: usize> Array for [T; N] {
    type Item = T;
    const CAPACITY: usize = N;

    fn as_slice(&self) -> &[T] {
        self
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        self
    }

    fn filled_with_default() -> Self {
        std::array::from_fn(|_| T::default())
    }

    fn drain_into(&mut self, len: usize, out: &mut Vec<T>) {
        for slot in self.iter_mut().take(len) {
            out.push(std::mem::take(slot));
        }
    }
}

/// A vector storing up to `A::CAPACITY` elements inline, spilling to the
/// heap beyond that.
///
/// ```rust
/// use smallvec::SmallVec;
///
/// let mut v: SmallVec<[u64; 4]> = SmallVec::new();
/// for i in 0..4 {
///     v.push(i);
/// }
/// assert!(!v.spilled());
/// v.push(4);
/// assert!(v.spilled());
/// assert_eq!(&v[..], &[0, 1, 2, 3, 4]);
/// ```
pub struct SmallVec<A: Array> {
    len: usize,
    inline: A,
    heap: Vec<A::Item>,
    spilled: bool,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        SmallVec {
            len: 0,
            inline: A::filled_with_default(),
            heap: Vec::new(),
            spilled: false,
        }
    }

    /// Creates an empty vector able to hold `capacity` elements; spills
    /// immediately when `capacity` exceeds the inline arity.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut v = SmallVec::new();
        if capacity > A::CAPACITY {
            v.heap.reserve(capacity);
            v.spilled = true;
        }
        v
    }

    /// Builds a vector by moving the elements of `vec` in. A `vec` longer
    /// than the inline arity is taken over as-is without copying.
    pub fn from_vec(vec: Vec<A::Item>) -> Self {
        if vec.len() > A::CAPACITY {
            SmallVec {
                len: 0,
                inline: A::filled_with_default(),
                heap: vec,
                spilled: true,
            }
        } else {
            let mut v = SmallVec::new();
            for item in vec {
                v.push(item);
            }
            v
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        if self.spilled {
            self.heap.len()
        } else {
            self.len
        }
    }

    /// `true` when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once the vector moved to heap storage.
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// Appends `item`, spilling to the heap when the inline buffer is full.
    pub fn push(&mut self, item: A::Item) {
        if !self.spilled {
            if self.len < A::CAPACITY {
                self.inline.as_mut_slice()[self.len] = item;
                self.len += 1;
                return;
            }
            self.heap.reserve(A::CAPACITY + 1);
            self.inline.drain_into(self.len, &mut self.heap);
            self.len = 0;
            self.spilled = true;
        }
        self.heap.push(item);
    }

    /// The stored elements as a slice.
    pub fn as_slice(&self) -> &[A::Item] {
        if self.spilled {
            &self.heap
        } else {
            &self.inline.as_slice()[..self.len]
        }
    }

    /// The stored elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [A::Item] {
        if self.spilled {
            &mut self.heap
        } else {
            &mut self.inline.as_mut_slice()[..self.len]
        }
    }
}

impl<A: Array> SmallVec<A>
where
    A::Item: Clone,
{
    /// A vector holding `n` clones of `elem`.
    pub fn from_elem(elem: A::Item, n: usize) -> Self {
        let mut v = SmallVec::with_capacity(n);
        for _ in 0..n {
            v.push(elem.clone());
        }
        v
    }

    /// A vector holding a clone of every element of `slice`.
    pub fn from_slice(slice: &[A::Item]) -> Self {
        let mut v = SmallVec::with_capacity(slice.len());
        for item in slice {
            v.push(item.clone());
        }
        v
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    fn deref(&self) -> &[A::Item] {
        self.as_slice()
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    fn deref_mut(&mut self) -> &mut [A::Item] {
        self.as_mut_slice()
    }
}

impl<A: Array> AsRef<[A::Item]> for SmallVec<A> {
    fn as_ref(&self) -> &[A::Item] {
        self.as_slice()
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec::from_slice(self.as_slice())
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<A: Array> From<Vec<A::Item>> for SmallVec<A> {
    fn from(vec: Vec<A::Item>) -> Self {
        SmallVec::from_vec(vec)
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: SmallVec<[u64; 4]> = SmallVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.len(), 4);
        assert_eq!(&v[..], &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_beyond_capacity_and_preserves_order() {
        let mut v: SmallVec<[u64; 2]> = SmallVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(&v[..], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn from_vec_takes_large_vectors_over() {
        let v: SmallVec<[u64; 2]> = SmallVec::from_vec(vec![1, 2, 3]);
        assert!(v.spilled());
        assert_eq!(&v[..], &[1, 2, 3]);
        let small: SmallVec<[u64; 4]> = SmallVec::from_vec(vec![1, 2]);
        assert!(!small.spilled());
        assert_eq!(&small[..], &[1, 2]);
    }

    #[test]
    fn from_elem_and_mutation() {
        let mut v: SmallVec<[u64; 8]> = SmallVec::from_elem(0, 3);
        v[1] = 9;
        assert_eq!(&v[..], &[0, 9, 0]);
        assert!(!v.spilled());
    }

    #[test]
    fn equality_and_clone_compare_contents_not_storage() {
        let inline: SmallVec<[u64; 4]> = SmallVec::from_slice(&[1, 2, 3]);
        let mut spilled: SmallVec<[u64; 4]> = SmallVec::with_capacity(8);
        for i in [1, 2, 3] {
            spilled.push(i);
        }
        assert!(spilled.spilled());
        assert_eq!(inline, spilled);
        assert_eq!(inline.clone(), inline);
    }

    #[test]
    fn collects_from_iterators() {
        let v: SmallVec<[u64; 4]> = (0..3).collect();
        assert_eq!(&v[..], &[0, 1, 2]);
        let total: u64 = (&v).into_iter().sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn works_with_non_copy_items() {
        let mut v: SmallVec<[String; 2]> = SmallVec::new();
        for s in ["a", "b", "c"] {
            v.push(s.to_string());
        }
        assert!(v.spilled());
        assert_eq!(v.as_slice().join(""), "abc");
    }
}
