//! Offline stand-in for the subset of the `bytes` crate API this workspace
//! uses (the build environment has no access to crates.io): an immutable,
//! cheaply cloneable byte string backed by `Arc<[u8]>`.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable contiguous slice of bytes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(value: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(value.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(value: &[u8]) -> Self {
        Bytes::copy_from_slice(value)
    }
}

impl From<&str> for Bytes {
    fn from(value: &str) -> Self {
        Bytes::copy_from_slice(value.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(value: String) -> Self {
        Bytes::from(value.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default(), Bytes::new());
    }

    #[test]
    fn conversions() {
        assert_eq!(Bytes::from(vec![9u8]), Bytes::copy_from_slice(&[9]));
        assert_eq!(Bytes::from("ab"), Bytes::copy_from_slice(b"ab"));
        assert_eq!(Bytes::from("ab".to_string()), Bytes::from("ab"));
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::copy_from_slice(b"shared");
        let b = a.clone();
        assert_eq!(a.data.as_ptr(), b.data.as_ptr());
    }

    #[test]
    fn debug_escapes_non_printable() {
        assert_eq!(format!("{:?}", Bytes::from("a\x01")), "b\"a\\x01\"");
    }
}
