//! The cooperative discrete-event scheduler.
//!
//! # Execution model
//!
//! Tasks are OS threads, but **exactly one task executes at any moment**:
//! the scheduler hands a single turn token around, and a task gives it up
//! only at a blocking point ([`SimScheduler::park`] /
//! [`SimScheduler::sleep`]) or when it finishes. When no task is runnable,
//! the scheduler advances the virtual clock to the earliest pending timer or
//! event, fires what is due, and hands the turn to whoever became runnable.
//! Which runnable task runs next is drawn from a seeded RNG, so different
//! seeds explore different interleavings while the same seed replays the
//! same schedule.
//!
//! Single-token execution gives the simulator a property real condvars lack:
//! between a task's predicate check and its park no other task can run, so
//! there are no lost wakeups by construction. [`SimScheduler::wake`] simply
//! marks every parked task runnable and lets each re-check its predicate —
//! the classic condvar loop, minus the races.
//!
//! # Deadlock detection
//!
//! Daemon tasks (node workers) park indefinitely while idle; that is normal.
//! If a *foreground* task (a workload client) is parked with no deadline
//! while nothing is runnable and no timer or event is pending, virtual time
//! can never advance again: the scheduler declares a deadlock and every
//! parked task panics with a state dump instead of hanging the test run.

use std::cell::Cell;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::{rngs::StdRng, Rng, SeedableRng};
use sss_vclock::runtime::{self, SchedulerHandle, SimScheduler};

use crate::clock::SimClock;
use crate::queue::EventQueue;

thread_local! {
    /// The task id of the current thread, when it is a simulation task.
    static TASK_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Ready to run; waiting for the turn.
    Runnable,
    /// Holds the turn and is executing.
    Running,
    /// Gave up the turn; waiting for a wake or (if set) a virtual deadline.
    Parked { deadline: Option<u64> },
    /// Finished.
    Done,
}

struct TaskSlot {
    name: String,
    daemon: bool,
    state: TaskState,
    /// The task's private turn signal: its thread waits here (under the
    /// shared state mutex) until the dispatcher hands it the turn. One
    /// condvar per task keeps a turn handoff to a single `notify_one`
    /// instead of a `notify_all` storm waking every task thread in the
    /// world only to re-check and re-sleep — with dozens of tasks that
    /// storm made simulations syscall-bound.
    cv: Arc<Condvar>,
}

struct SimState {
    clock: SimClock,
    events: EventQueue<Box<dyn FnOnce() + Send>>,
    tasks: Vec<TaskSlot>,
    /// Ids of `Runnable` tasks (each at most once). The scheduler draws the
    /// next task from this set with the seeded RNG.
    runnable: Vec<usize>,
    /// The task currently holding the turn.
    active: Option<usize>,
    /// `true` until [`SimRuntime::start`]: the dispatcher is held back so a
    /// host thread can construct the whole world (spawn node workers,
    /// schedule events) without racing already-running tasks — the first
    /// turn is handed out only once construction is complete, which keeps
    /// the seeded schedule deterministic.
    held: bool,
    /// Set while a dispatch loop is advancing time / firing events with the
    /// state lock released; nested dispatch attempts no-op and let the
    /// running loop observe their changes.
    dispatching: bool,
    rng: StdRng,
    /// Set when a deadlock was detected; parked tasks panic with this.
    failure: Option<String>,
}

/// The deterministic simulation runtime. Construct with
/// [`SimRuntime::new`], pass as a [`SchedulerHandle`] (it implements
/// [`SimScheduler`]) to everything that blocks, and drive workloads with
/// [`SimRuntime::block_on`] or [`SimScheduler::spawn_task`].
pub struct SimRuntime {
    weak: Weak<SimRuntime>,
    state: Mutex<SimState>,
    /// Signalled at quiescence or failure; host threads wait here in
    /// [`SimRuntime::wait_quiescent`]. Tasks wait on their own
    /// [`TaskSlot::cv`] instead.
    turn: Condvar,
    /// Schedule trace (`SSS_SIM_TRACE=prefix`): one line per scheduling
    /// decision, for diffing two runs of the same seed when chasing a
    /// determinism bug. `None` unless the env var is set.
    trace: Option<Mutex<BufWriter<File>>>,
}

/// Distinguishes the trace files of several runtimes in one process
/// (`{prefix}-{n}.log`).
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

fn open_trace() -> Option<Mutex<BufWriter<File>>> {
    let prefix = std::env::var("SSS_SIM_TRACE").ok()?;
    let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let file = File::create(format!("{prefix}-{n}.log")).ok()?;
    Some(Mutex::new(BufWriter::new(file)))
}

macro_rules! trace {
    ($self:expr, $($arg:tt)*) => {
        if let Some(trace) = &$self.trace {
            let _ = writeln!(trace.lock(), $($arg)*);
        }
    };
}

impl SimRuntime {
    /// A fresh simulated world at virtual time zero. `seed` drives the
    /// runnable-task choice (and nothing else), so it selects the
    /// interleaving the simulation explores.
    pub fn new(seed: u64) -> Arc<SimRuntime> {
        Arc::new_cyclic(|weak| SimRuntime {
            weak: weak.clone(),
            state: Mutex::new(SimState {
                clock: SimClock::new(),
                events: EventQueue::new(),
                tasks: Vec::new(),
                runnable: Vec::new(),
                active: None,
                held: true,
                dispatching: false,
                rng: StdRng::seed_from_u64(seed),
                failure: None,
            }),
            turn: Condvar::new(),
            trace: open_trace(),
        })
    }

    /// This runtime as a trait-object handle.
    pub fn handle(self: &Arc<Self>) -> SchedulerHandle {
        Arc::clone(self) as SchedulerHandle
    }

    /// Virtual time elapsed since construction.
    pub fn virtual_elapsed(&self) -> Duration {
        Duration::from_nanos(self.state.lock().clock.nanos())
    }

    /// Releases the start gate and hands out the first turn. A fresh
    /// runtime is *held*: tasks spawned and events scheduled before
    /// `start` queue up without running, so world construction from the
    /// host thread cannot interleave with task execution (which would
    /// consume the schedule RNG in wall-clock-dependent order and destroy
    /// seed determinism). [`SimRuntime::block_on`] calls this implicitly.
    pub fn start(&self) {
        {
            let mut state = self.state.lock();
            if !state.held {
                return;
            }
            state.held = false;
        }
        self.dispatch();
    }

    /// Blocks the calling (host) thread until the simulation is fully
    /// quiescent: no task running or runnable, no pending event, and no
    /// parked task with a deadline — only daemons parked indefinitely (or
    /// finished tasks) remain. Host threads must only interact with a
    /// running simulation (spawn tasks, arm faults, read stats, shut down)
    /// at quiescent points; interleaving host work with in-flight virtual
    /// activity would make the schedule depend on wall-clock timing.
    ///
    /// # Panics
    ///
    /// Panics if the simulation declared a deadlock.
    pub fn wait_quiescent(&self) {
        self.quiesce(false);
    }

    /// Like [`SimRuntime::wait_quiescent`], but re-engages the start gate
    /// the moment quiescence is reached: the simulation stays frozen (no
    /// clock advance, no event firing) while the host performs setup
    /// between phases — arming fault windows, spawning the next driver
    /// task — and resumes at the next [`SimRuntime::start`] /
    /// [`SimRuntime::block_on`]. Without the hold, an event scheduled
    /// during setup can fire (advancing the virtual clock, waking tasks)
    /// *while* the host is still spawning, and where the spawn lands
    /// relative to those firings is a wall-clock race that destroys seed
    /// determinism.
    ///
    /// # Panics
    ///
    /// Panics if the simulation declared a deadlock.
    pub fn freeze(&self) {
        self.quiesce(true);
    }

    fn quiesce(&self, hold: bool) {
        let mut state = self.state.lock();
        loop {
            if let Some(failure) = state.failure.clone() {
                drop(state);
                panic!("simulation deadlock: {failure}");
            }
            if state.held {
                // Already frozen (a fresh or re-frozen runtime): nothing
                // can be in flight.
                return;
            }
            let timer_pending = state
                .tasks
                .iter()
                .any(|t| matches!(t.state, TaskState::Parked { deadline: Some(_) }));
            let busy = state.dispatching
                || state.active.is_some()
                || !state.runnable.is_empty()
                || !state.events.is_empty()
                || timer_pending;
            if !busy {
                state.held = hold;
                return;
            }
            self.turn.wait(&mut state);
        }
    }

    /// Runs `f` as a foreground task and blocks the calling (host) thread
    /// until it returns, propagating panics. The host thread itself never
    /// takes part in the simulation; it only waits.
    pub fn block_on<R: Send + 'static>(
        self: &Arc<Self>,
        name: &str,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> R {
        let result: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let handle = self.spawn_task(
            name.to_string(),
            false,
            Box::new(move || {
                *slot.lock() = Some(f());
            }),
        );
        self.start();
        match handle.join() {
            Ok(()) => result.lock().take().expect("task completed"),
            Err(panic) => resume_unwind(panic),
        }
    }

    /// Marks `id` runnable if it was parked.
    fn make_runnable(state: &mut SimState, id: usize) {
        if matches!(state.tasks[id].state, TaskState::Parked { .. }) {
            state.tasks[id].state = TaskState::Runnable;
            state.runnable.push(id);
        }
    }

    /// Draws the next runnable task with the seeded RNG.
    fn pick_runnable(state: &mut SimState) -> Option<usize> {
        while !state.runnable.is_empty() {
            let index = if state.runnable.len() == 1 {
                0
            } else {
                state.rng.gen_range(0..state.runnable.len())
            };
            let id = state.runnable.swap_remove(index);
            if state.tasks[id].state == TaskState::Runnable {
                return Some(id);
            }
        }
        None
    }

    /// The scheduler step: hands the turn to a runnable task, or advances
    /// virtual time to the next timer/event and fires what is due, or —
    /// when neither is possible — detects quiescence or deadlock. Callable
    /// from any thread; no-ops if a task holds the turn or another dispatch
    /// loop is already running.
    fn dispatch(&self) {
        loop {
            let mut due: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            {
                let mut state = self.state.lock();
                if state.held
                    || state.dispatching
                    || state.active.is_some()
                    || state.failure.is_some()
                {
                    return;
                }
                let candidates = if self.trace.is_some() {
                    state.runnable.clone()
                } else {
                    Vec::new()
                };
                if let Some(next) = Self::pick_runnable(&mut state) {
                    trace!(
                        self,
                        "P t={} pick={}:{} from={:?}",
                        state.clock.nanos(),
                        next,
                        state.tasks[next].name,
                        candidates
                    );
                    state.active = Some(next);
                    state.tasks[next].cv.notify_one();
                    return;
                }
                // Nothing runnable: find the next point virtual time can
                // jump to — the earliest event or parked-task deadline.
                let next_event = state.events.next_time();
                let next_deadline = state
                    .tasks
                    .iter()
                    .filter_map(|task| match task.state {
                        TaskState::Parked { deadline } => deadline,
                        _ => None,
                    })
                    .min();
                let target = match (next_event, next_deadline) {
                    (Some(e), Some(d)) => e.min(d),
                    (Some(e), None) => e,
                    (None, Some(d)) => d,
                    (None, None) => {
                        // Fully quiescent. Daemon tasks parked forever are
                        // normal (idle workers); a foreground task parked
                        // forever is a deadlock.
                        let hung: Vec<&TaskSlot> = state
                            .tasks
                            .iter()
                            .filter(|t| {
                                !t.daemon && matches!(t.state, TaskState::Parked { deadline: None })
                            })
                            .collect();
                        if !hung.is_empty() {
                            let report = Self::deadlock_report(&state, &hung);
                            state.failure = Some(report);
                            // Every parked task must wake to observe the
                            // failure and panic instead of hanging.
                            for task in &state.tasks {
                                task.cv.notify_one();
                            }
                        }
                        // Quiescent (or failed): let `wait_quiescent`
                        // observe the final state.
                        self.turn.notify_all();
                        return;
                    }
                };
                state.clock.advance_to(target);
                let now = state.clock.nanos();
                trace!(self, "A t={now}");
                for id in 0..state.tasks.len() {
                    if let TaskState::Parked { deadline: Some(d) } = state.tasks[id].state {
                        if d <= now {
                            Self::make_runnable(&mut state, id);
                        }
                    }
                }
                while let Some((time, seq, event)) = state.events.pop_due(now) {
                    trace!(self, "F t={now} ev={time}/{seq}");
                    due.push(event);
                }
                if due.is_empty() {
                    continue; // only timers fired; loop to hand out the turn
                }
                state.dispatching = true;
            }
            // Fire due events with the lock released: event closures push
            // into mailboxes and call `wake`, which must be able to lock.
            // `dispatching` keeps nested dispatch attempts out; this loop
            // re-examines the state afterwards.
            for event in due {
                event();
            }
            self.state.lock().dispatching = false;
        }
    }

    fn deadlock_report(state: &SimState, hung: &[&TaskSlot]) -> String {
        use std::fmt::Write as _;
        let mut report = format!(
            "virtual time {:?}: no runnable task, no pending timer or event, \
             but {} foreground task(s) are parked without a deadline:",
            Duration::from_nanos(state.clock.nanos()),
            hung.len(),
        );
        for task in hung {
            let _ = write!(report, " [{}]", task.name);
        }
        let _ = write!(report, "; all tasks:");
        for task in &state.tasks {
            let _ = write!(
                report,
                " {}={:?}{}",
                task.name,
                task.state,
                if task.daemon { " (daemon)" } else { "" }
            );
        }
        report
    }

    /// Blocks the calling task thread until it holds the turn, then marks
    /// it `Running`.
    fn acquire_turn(&self, id: usize) {
        let mut state = self.state.lock();
        // Clone out of the slot so waiting does not borrow `state`; the
        // `Arc` also survives `tasks` growing (spawns) while we wait.
        let cv = Arc::clone(&state.tasks[id].cv);
        loop {
            if let Some(failure) = state.failure.clone() {
                drop(state);
                panic!("simulation deadlock: {failure}");
            }
            if state.active == Some(id) {
                break;
            }
            cv.wait(&mut state);
        }
        state.tasks[id].state = TaskState::Running;
    }

    /// Marks a finished task `Done` and releases the turn if it held it.
    fn finish_task(&self, id: usize) {
        {
            let mut state = self.state.lock();
            state.tasks[id].state = TaskState::Done;
            if state.active == Some(id) {
                state.active = None;
            }
        }
        self.dispatch();
    }
}

impl SimScheduler for SimRuntime {
    fn now(&self) -> Instant {
        self.state.lock().clock.now()
    }

    fn sleep(&self, duration: Duration) {
        let deadline = self.now() + duration;
        loop {
            self.park(Some(deadline));
            if self.now() >= deadline {
                return;
            }
        }
    }

    fn park(&self, deadline: Option<Instant>) {
        let me = TASK_ID.with(|cell| cell.get()).expect(
            "park called outside a simulation task; host threads must use \
             their own blocking primitives",
        );
        {
            let mut state = self.state.lock();
            if let Some(failure) = state.failure.clone() {
                drop(state);
                panic!("simulation deadlock: {failure}");
            }
            assert_eq!(
                state.active,
                Some(me),
                "park by a task that does not hold the turn"
            );
            let deadline = deadline.map(|d| state.clock.nanos_at(d));
            trace!(
                self,
                "K t={} task={me} dl={deadline:?}",
                state.clock.nanos()
            );
            state.tasks[me].state = TaskState::Parked { deadline };
            state.active = None;
        }
        self.dispatch();
        self.acquire_turn(me);
    }

    fn wake(&self) {
        let kick = {
            let mut state = self.state.lock();
            let before = state.runnable.len();
            for id in 0..state.tasks.len() {
                Self::make_runnable(&mut state, id);
            }
            if state.runnable.len() > before {
                trace!(
                    self,
                    "W t={} woke={:?}",
                    state.clock.nanos(),
                    &state.runnable[before..]
                );
            }
            state.active.is_none() && !state.dispatching
        };
        if kick {
            self.dispatch();
        }
    }

    fn schedule(&self, at: Instant, event: Box<dyn FnOnce() + Send>) -> u64 {
        let (token, kick) = {
            let mut state = self.state.lock();
            let time = state.clock.nanos_at(at).max(state.clock.nanos());
            let token = state.events.push(time, event);
            trace!(self, "Q t={} ev={time} tok={token}", state.clock.nanos());
            (token, state.active.is_none() && !state.dispatching)
        };
        if kick {
            self.dispatch();
        }
        token
    }

    fn cancel(&self, token: u64) -> bool {
        self.state.lock().events.cancel(token).is_some()
    }

    fn trace(&self, line: &str) {
        trace!(self, "D {line}");
    }

    fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    fn spawn_task(
        &self,
        name: String,
        daemon: bool,
        f: Box<dyn FnOnce() + Send>,
    ) -> JoinHandle<()> {
        let id = {
            let mut state = self.state.lock();
            let id = state.tasks.len();
            state.tasks.push(TaskSlot {
                name: name.clone(),
                daemon,
                state: TaskState::Runnable,
                cv: Arc::new(Condvar::new()),
            });
            state.runnable.push(id);
            trace!(self, "S id={id} name={}", state.tasks[id].name);
            id
        };
        let this = self
            .weak
            .upgrade()
            .expect("spawn_task on a dropped SimRuntime");
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let scheduler: SchedulerHandle = Arc::clone(&this) as SchedulerHandle;
                TASK_ID.with(|cell| cell.set(Some(id)));
                runtime::enter(&scheduler, || {
                    this.acquire_turn(id);
                    let result = catch_unwind(AssertUnwindSafe(f));
                    this.finish_task(id);
                    if let Err(panic) = result {
                        resume_unwind(panic);
                    }
                });
            })
            .expect("failed to spawn simulation task thread");
        self.dispatch();
        handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn block_on_runs_a_task_to_completion() {
        let sim = SimRuntime::new(1);
        let out = sim.block_on("t", || 41 + 1);
        assert_eq!(out, 42);
    }

    #[test]
    fn sleep_advances_virtual_time_not_wall_time() {
        let sim = SimRuntime::new(1);
        let wall = Instant::now();
        let slept = {
            let sim2 = Arc::clone(&sim);
            sim.block_on("sleeper", move || {
                let start = sim2.now();
                runtime::sleep(Duration::from_secs(3600));
                sim2.now() - start
            })
        };
        assert_eq!(slept, Duration::from_secs(3600));
        assert!(
            wall.elapsed() < Duration::from_secs(30),
            "an hour of virtual time must not take wall-clock hours"
        );
        assert!(sim.virtual_elapsed() >= Duration::from_secs(3600));
    }

    #[test]
    fn events_fire_in_time_then_seq_order() {
        let sim = SimRuntime::new(7);
        let order = Arc::new(Mutex::new(Vec::new()));
        let base = sim.now();
        for (delay_us, tag) in [(50u64, "b1"), (50, "b2"), (10, "a")] {
            let order = Arc::clone(&order);
            sim.schedule(
                base + Duration::from_micros(delay_us),
                Box::new(move || order.lock().push(tag)),
            );
        }
        // Sleep past all events so they have fired by the time we return.
        let sim2 = Arc::clone(&sim);
        sim.block_on("driver", move || {
            sss_vclock::runtime::sleep(Duration::from_millis(1));
            let _ = sim2.now();
        });
        assert_eq!(*order.lock(), vec!["a", "b1", "b2"]);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let sim = SimRuntime::new(7);
        let fired = Arc::new(AtomicUsize::new(0));
        let base = sim.now();
        let f1 = Arc::clone(&fired);
        let token = sim.schedule(
            base + Duration::from_micros(5),
            Box::new(move || {
                f1.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert!(sim.cancel(token));
        assert!(!sim.cancel(token));
        sim.block_on("driver", || {
            sss_vclock::runtime::sleep(Duration::from_millis(1))
        });
        assert_eq!(fired.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn wake_makes_a_parked_task_re_check_its_predicate() {
        let sim = SimRuntime::new(3);
        let flag = Arc::new(AtomicUsize::new(0));
        let waiter_flag = Arc::clone(&flag);
        let waiter_sim = Arc::clone(&sim);
        let waiter = sim.spawn_task(
            "waiter".into(),
            false,
            Box::new(move || {
                while waiter_flag.load(Ordering::Relaxed) == 0 {
                    waiter_sim.park(None);
                }
            }),
        );
        let setter_flag = Arc::clone(&flag);
        let setter_sim = Arc::clone(&sim);
        sim.block_on("setter", move || {
            sss_vclock::runtime::sleep(Duration::from_micros(10));
            setter_flag.store(1, Ordering::Relaxed);
            setter_sim.wake();
        });
        waiter.join().expect("waiter exits after the wake");
    }

    #[test]
    fn same_seed_same_schedule_different_seed_may_differ() {
        fn interleaving(seed: u64) -> Vec<usize> {
            let sim = SimRuntime::new(seed);
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            for task in 0..4usize {
                let log = Arc::clone(&log);
                handles.push(sim.spawn_task(
                    format!("t{task}"),
                    false,
                    Box::new(move || {
                        for _ in 0..5 {
                            log.lock().push(task);
                            sss_vclock::runtime::sleep(Duration::from_micros(1));
                        }
                    }),
                ));
            }
            sim.start();
            for handle in handles {
                handle.join().unwrap();
            }
            Arc::try_unwrap(log).unwrap().into_inner()
        }
        let a1 = interleaving(11);
        let a2 = interleaving(11);
        assert_eq!(a1, a2, "same seed must replay the same interleaving");
        let b = interleaving(12);
        // Different seeds *may* coincide in principle; with 4 tasks × 5 ops
        // the probability is negligible, and determinism of each is what
        // matters.
        assert_ne!(a1, b, "different seeds should explore different orders");
    }

    #[test]
    fn deadlocked_foreground_task_panics_with_a_report() {
        let sim = SimRuntime::new(5);
        let sim2 = Arc::clone(&sim);
        let handle = sim.spawn_task(
            "stuck".into(),
            false,
            Box::new(move || loop {
                sim2.park(None);
            }),
        );
        sim.start();
        let panic = handle.join().expect_err("the stuck task must panic");
        let message = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("simulation deadlock"),
            "unexpected panic payload: {message}"
        );
    }

    #[test]
    fn daemon_tasks_may_idle_without_tripping_deadlock_detection() {
        let sim = SimRuntime::new(5);
        let stop = Arc::new(AtomicUsize::new(0));
        let worker_stop = Arc::clone(&stop);
        let worker_sim = Arc::clone(&sim);
        let worker = sim.spawn_task(
            "worker".into(),
            true,
            Box::new(move || {
                while worker_stop.load(Ordering::Relaxed) == 0 {
                    worker_sim.park(None);
                }
            }),
        );
        sim.block_on("client", || {
            sss_vclock::runtime::sleep(Duration::from_millis(1));
        });
        // The foreground task finished while the daemon idles: no deadlock.
        stop.store(1, Ordering::Relaxed);
        sim.wake();
        worker.join().expect("worker exits cleanly");
    }
}
