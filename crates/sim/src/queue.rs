//! The deterministic event queue: entries ordered by `(time, seq)` where
//! `seq` is the global scheduling order, so same-instant events fire in the
//! order they were scheduled — on every run.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A cancellable priority queue of timed events.
///
/// Ordering is total and deterministic: earlier `time` first, and among
/// entries scheduled for the same time, lower `seq` (scheduled earlier)
/// first. Cancellation is O(1) lazy removal: the heap entry stays behind and
/// is skipped when it surfaces, so `len` counts only live entries but the
/// internal heap may be larger until stale entries drain.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    live: HashMap<u64, T>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at virtual time `time` (nanoseconds). Returns a
    /// token for [`EventQueue::cancel`]. Tokens are unique for the lifetime
    /// of the queue and increase in scheduling order.
    pub fn push(&mut self, time: u64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((time, seq)));
        self.live.insert(seq, payload);
        seq
    }

    /// Cancels the event identified by `token`, returning its payload if it
    /// had not yet fired (or been cancelled).
    pub fn cancel(&mut self, token: u64) -> Option<T> {
        self.live.remove(&token)
    }

    /// The time of the earliest live event, if any.
    pub fn next_time(&mut self) -> Option<u64> {
        while let Some(&Reverse((time, seq))) = self.heap.peek() {
            if self.live.contains_key(&seq) {
                return Some(time);
            }
            self.heap.pop(); // stale (cancelled): drop and keep looking
        }
        None
    }

    /// Pops the earliest live event if its time is `<= now`. Returns the
    /// event's `(time, token, payload)`.
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, u64, T)> {
        let time = self.next_time()?;
        if time > now {
            return None;
        }
        let Reverse((time, seq)) = self.heap.pop().expect("next_time saw an entry");
        let payload = self.live.remove(&seq).expect("next_time saw a live entry");
        Some((time, seq, payload))
    }

    /// Number of live (not yet fired or cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_seq_tie_break() {
        let mut q = EventQueue::new();
        let _c = q.push(20, "c");
        let _a1 = q.push(10, "a1");
        let _a2 = q.push(10, "a2");
        assert_eq!(q.next_time(), Some(10));
        assert_eq!(q.pop_due(100).map(|(_, _, p)| p), Some("a1"));
        assert_eq!(q.pop_due(100).map(|(_, _, p)| p), Some("a2"));
        assert_eq!(q.pop_due(15), None, "time 20 not yet due at 15");
        assert_eq!(q.pop_due(20).map(|(_, _, p)| p), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut q = EventQueue::new();
        let a = q.push(5, "a");
        let _b = q.push(5, "b");
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.cancel(a), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(10).map(|(_, _, p)| p), Some("b"));
        assert!(q.is_empty());
    }

    #[test]
    fn next_time_skips_stale_entries() {
        let mut q = EventQueue::new();
        let early = q.push(1, "early");
        q.push(9, "late");
        q.cancel(early);
        assert_eq!(q.next_time(), Some(9));
    }
}
