//! Deterministic discrete-event simulation runtime for the SSS stack.
//!
//! The threaded runtime spins a real thread per node worker and sleeps real
//! microseconds to model network latency, so chaos coverage is bounded by
//! wall time. This crate replaces it — behind the
//! [`sss_vclock::runtime::SimScheduler`] abstraction — with a
//! single-token cooperative scheduler over a virtual clock:
//!
//! - [`SimClock`]: virtual nanoseconds anchored to one real [`std::time::Instant`],
//!   so the simulator can hand out fabricated `Instant`s that flow through
//!   every existing timeout / timestamp API unchanged.
//! - [`EventQueue`]: timed events with deterministic `(time, seq)` ordering
//!   and O(1) lazy cancellation — message deliveries and fault-plan
//!   transitions live here.
//! - [`SimRuntime`]: cooperative tasks (node workers as daemons, workload
//!   clients as foreground tasks) of which exactly one runs at a time; the
//!   seeded RNG picks which runnable task goes next, so a seed selects an
//!   interleaving and replaying the seed replays the run bit-for-bit.
//!
//! Virtual time advances only when no task can run: to the earliest pending
//! timer or event. A simulated second therefore costs only the work done in
//! it, which turns minutes-long consistency-checker soaks into sub-second
//! runs and makes hundreds-of-seeds chaos sweeps affordable in CI.
//!
//! # What determinism covers (and what it does not)
//!
//! With a fixed seed, the schedule — task interleaving, virtual event
//! order, virtual timestamps — replays exactly. Protocol-level artifacts
//! that iterate `std::collections::HashMap` (whose per-instance hash seeds
//! differ run to run) can still vary where iteration order reaches the
//! wire; the stack avoids ordering-sensitive map iteration on those paths,
//! and the seed-sweep tier asserts bit-identical outcome fingerprints to
//! keep it that way.

#![deny(missing_docs)]

mod clock;
mod queue;
mod scheduler;

pub use clock::SimClock;
pub use queue::EventQueue;
pub use scheduler::SimRuntime;
