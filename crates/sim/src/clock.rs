//! The virtual clock: a monotonic nanosecond counter anchored to one real
//! [`Instant`] so it can hand out fabricated `Instant` values.

use std::time::{Duration, Instant};

/// A virtual clock. Time is a `u64` nanosecond counter starting at zero;
/// [`SimClock::now`] maps it into the `Instant` domain by adding it to a
/// real anchor captured at construction. Instants fabricated by the same
/// clock compare and subtract like real ones, so every `Instant`-typed API
/// in the stack (timeouts, fault epochs, history records) works unchanged
/// under simulation — as long as no one mixes them with `Instant::now()`
/// taken outside the simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimClock {
    anchor: Instant,
    nanos: u64,
}

impl SimClock {
    /// A clock at virtual time zero, anchored to the current real instant.
    pub fn new() -> Self {
        SimClock {
            anchor: Instant::now(),
            nanos: 0,
        }
    }

    /// Current virtual time in nanoseconds since the clock's epoch.
    pub fn nanos(&self) -> u64 {
        self.nanos
    }

    /// Current virtual time as a fabricated [`Instant`].
    pub fn now(&self) -> Instant {
        self.instant_at(self.nanos)
    }

    /// The fabricated [`Instant`] corresponding to virtual nanosecond `nanos`.
    pub fn instant_at(&self, nanos: u64) -> Instant {
        self.anchor + Duration::from_nanos(nanos)
    }

    /// Maps a fabricated [`Instant`] back to virtual nanoseconds, clamping
    /// instants before the epoch to zero.
    pub fn nanos_at(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.anchor)
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    /// Advances the clock to `nanos`. Virtual time is monotonic: a target in
    /// the past is a no-op.
    pub fn advance_to(&mut self, nanos: u64) {
        self.nanos = self.nanos.max(nanos);
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances_monotonically() {
        let mut clock = SimClock::new();
        assert_eq!(clock.nanos(), 0);
        clock.advance_to(500);
        assert_eq!(clock.nanos(), 500);
        clock.advance_to(100); // past: no-op
        assert_eq!(clock.nanos(), 500);
        clock.advance_to(501);
        assert_eq!(clock.nanos(), 501);
    }

    #[test]
    fn instants_round_trip_through_the_nanos_domain() {
        let mut clock = SimClock::new();
        clock.advance_to(1_000_000);
        let now = clock.now();
        assert_eq!(clock.nanos_at(now), 1_000_000);
        let later = now + Duration::from_micros(250);
        assert_eq!(clock.nanos_at(later), 1_250_000);
        assert_eq!(clock.instant_at(1_250_000), later);
    }

    #[test]
    fn pre_epoch_instants_clamp_to_zero() {
        let clock = SimClock::new();
        let before = clock.instant_at(0) - Duration::from_secs(1);
        assert_eq!(clock.nanos_at(before), 0);
    }

    #[test]
    fn fabricated_instants_subtract_like_real_ones() {
        let mut clock = SimClock::new();
        let t0 = clock.now();
        clock.advance_to(42_000);
        let t1 = clock.now();
        assert_eq!(t1 - t0, Duration::from_nanos(42_000));
        assert_eq!(t0.saturating_duration_since(t1), Duration::ZERO);
    }
}
