//! Property tests for the simulator's primitives: the virtual clock and
//! the cancellable event queue. These are the two pieces every determinism
//! guarantee rests on — timer ordering, same-instant tie-breaking, and
//! cancel/reschedule semantics — so they are exercised against randomized
//! operation sequences rather than hand-picked cases.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use sss_sim::{EventQueue, SimClock};

/// One randomized mutation of an [`EventQueue`], chosen by proptest.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Schedule a payload at the given virtual time.
    Push(u64),
    /// Cancel the `n`-th token handed out so far (mod the count), if any.
    Cancel(usize),
    /// Pop everything due at the given virtual time.
    PopDue(u64),
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        (0u64..1_000).prop_map(QueueOp::Push),
        (0usize..64).prop_map(QueueOp::Cancel),
        (0u64..1_000).prop_map(QueueOp::PopDue),
    ]
}

proptest! {
    /// Draining the queue always yields events in `(time, seq)` order:
    /// non-decreasing times, and among same-time events strictly
    /// increasing tokens (the order they were scheduled).
    #[test]
    fn drain_is_ordered_by_time_then_schedule_order(times in prop::collection::vec(0u64..500, 1..50)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(t, t);
        }
        let mut previous: Option<(u64, u64)> = None;
        let mut drained = 0;
        while let Some((time, seq, payload)) = q.pop_due(u64::MAX) {
            prop_assert_eq!(payload, time, "payload rides with its scheduled time");
            if let Some((pt, ps)) = previous {
                prop_assert!(time > pt || (time == pt && seq > ps),
                    "events must drain in (time, seq) order: ({pt},{ps}) then ({time},{seq})");
            }
            previous = Some((time, seq));
            drained += 1;
        }
        prop_assert_eq!(drained, times.len());
        prop_assert!(q.is_empty());
    }

    /// Same-instant events fire in the order they were scheduled, whatever
    /// that order's interleaving with other instants was.
    #[test]
    fn same_instant_ties_break_by_schedule_order(labels in prop::collection::vec(0u64..4, 2..40)) {
        let mut q = EventQueue::new();
        // All events share one instant; payloads record the schedule order.
        for (i, _) in labels.iter().enumerate() {
            q.push(7, i);
        }
        let mut seen = Vec::new();
        while let Some((_, _, payload)) = q.pop_due(7) {
            seen.push(payload);
        }
        prop_assert_eq!(seen, (0..labels.len()).collect::<Vec<_>>());
    }

    /// The queue agrees with a reference model (a sorted map keyed by
    /// `(time, token)`) under arbitrary push/cancel/pop interleavings, and
    /// a cancelled event is never popped.
    #[test]
    fn queue_matches_reference_model(ops in prop::collection::vec(queue_op(), 1..200)) {
        let mut q = EventQueue::new();
        let mut model: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut tokens: Vec<(u64, u64)> = Vec::new(); // (token, time)

        for op in ops {
            match op {
                QueueOp::Push(time) => {
                    let token = q.push(time, time);
                    model.insert((time, token), time);
                    tokens.push((token, time));
                }
                QueueOp::Cancel(n) => {
                    if tokens.is_empty() {
                        continue;
                    }
                    let (token, time) = tokens[n % tokens.len()];
                    let expected = model.remove(&(time, token));
                    prop_assert_eq!(q.cancel(token), expected,
                        "cancel must succeed exactly when the event is still live");
                }
                QueueOp::PopDue(now) => {
                    loop {
                        let expected = model.first_key_value().map(|(&k, _)| k);
                        match q.pop_due(now) {
                            Some((time, seq, payload)) => {
                                prop_assert!(time <= now);
                                prop_assert_eq!(Some((time, seq)), expected,
                                    "pop must yield the model's earliest live event");
                                prop_assert_eq!(payload, time);
                                model.remove(&(time, seq));
                            }
                            None => {
                                if let Some((time, _)) = expected {
                                    prop_assert!(time > now, "queue stopped early: {time} is due at {now}");
                                }
                                break;
                            }
                        }
                    }
                }
            }
        }
        prop_assert_eq!(q.len(), model.len());
        prop_assert_eq!(q.next_time(), model.first_key_value().map(|(&(t, _), _)| t));
    }

    /// Cancelling and rescheduling keeps `len`, `next_time` and the drain
    /// order consistent: the rescheduled event fires at its new time with a
    /// fresh token, never at the old one.
    #[test]
    fn cancel_then_reschedule_moves_the_event(old in 0u64..500, new in 0u64..500, other in 0u64..500) {
        let mut q = EventQueue::new();
        let moved = q.push(old, "moved");
        let _stay = q.push(other, "stays");
        prop_assert_eq!(q.cancel(moved), Some("moved"));
        prop_assert_eq!(q.cancel(moved), None, "double cancel is a no-op");
        let moved2 = q.push(new, "moved");
        prop_assert!(moved2 > moved, "tokens are never reused");
        prop_assert_eq!(q.len(), 2);
        prop_assert_eq!(q.next_time(), Some(new.min(other)));

        // The old instant no longer fires the moved event.
        let mut fired_at: Vec<(u64, &str)> = Vec::new();
        while let Some((time, _, payload)) = q.pop_due(u64::MAX) {
            fired_at.push((time, payload));
        }
        prop_assert!(fired_at.contains(&(new, "moved")));
        prop_assert!(fired_at.contains(&(other, "stays")));
        prop_assert_eq!(fired_at.len(), 2);
    }

    /// Virtual instants round-trip exactly through the nanosecond domain,
    /// and arithmetic on fabricated instants matches the nanosecond math.
    #[test]
    fn clock_instants_round_trip(advances in prop::collection::vec(0u64..1_000_000_000, 1..20), offset in 0u64..1_000_000_000) {
        let mut clock = SimClock::new();
        let epoch = clock.now();
        let mut total = 0u64;
        for a in advances {
            total = total.max(a);
            clock.advance_to(a);
            prop_assert_eq!(clock.nanos(), total, "virtual time is monotonic");
            let now = clock.now();
            prop_assert_eq!(clock.nanos_at(now), total);
            prop_assert_eq!(now - epoch, Duration::from_nanos(total));
            let later = now + Duration::from_nanos(offset);
            prop_assert_eq!(clock.nanos_at(later), total + offset);
            prop_assert_eq!(clock.instant_at(total + offset), later);
        }
    }

    /// Deadlines computed as `now + timeout` in the `Instant` domain land
    /// on the exact nanosecond the timeout names — the property the
    /// simulated lock table and reply channels rely on for virtual-time
    /// timeouts.
    #[test]
    fn instant_deadlines_are_exact_in_nanos(start in 0u64..1_000_000_000, timeout_ns in 0u64..10_000_000_000) {
        let mut clock = SimClock::new();
        clock.advance_to(start);
        let deadline = clock.now() + Duration::from_nanos(timeout_ns);
        prop_assert_eq!(clock.nanos_at(deadline), start + timeout_ns);
    }
}
