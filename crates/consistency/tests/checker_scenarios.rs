//! Scenario tests of the consistency checker: the schedules discussed in the
//! paper (Figures 1 and 2, and the cross-node ordering anomaly of §III-C)
//! encoded as explicit histories, plus histories that must be rejected.

use std::time::{Duration, Instant};

use sss_consistency::{
    check_all, check_external_consistency, check_read_only_snapshots, ConsistencyError, DsgChecker,
    History, TxnKind, TxnRecordBuilder,
};
use sss_storage::{TxnId, Value};
use sss_vclock::NodeId;

fn txn(node: usize, seq: u64) -> TxnId {
    TxnId::new(NodeId(node), seq)
}

fn at(base: Instant, ms: u64) -> Instant {
    base + Duration::from_millis(ms)
}

/// Paper Figure 1: read-only transaction `T1` reads `y`, the concurrent
/// update transaction `T2` overwrites `y`, and `T2`'s client response is
/// delayed until `T1` returns. The resulting client-observed schedule
/// (T1 returns before T2) is consistent with T1 reading the old version.
#[test]
fn figure_1_schedule_is_accepted() {
    let base = Instant::now();
    let seed = TxnRecordBuilder::new(txn(1, 0), TxnKind::Update)
        .started(at(base, 0))
        .finished(at(base, 1))
        .write("y", Value::from_u64(0))
        .build();
    // T1: read-only, reads the initial version, returns at t=30.
    let t1 = TxnRecordBuilder::new(txn(0, 1), TxnKind::ReadOnly)
        .started(at(base, 10))
        .finished(at(base, 30))
        .read("y", Some(Value::from_u64(0)), Some(txn(1, 0)))
        .build();
    // T2: update, overwrites y concurrently with T1, but its client response
    // is withheld until after T1 returned (external commit at t=35).
    let t2 = TxnRecordBuilder::new(txn(1, 2), TxnKind::Update)
        .started(at(base, 12))
        .finished(at(base, 35))
        .read("y", Some(Value::from_u64(0)), Some(txn(1, 0)))
        .write("y", Value::from_u64(1))
        .build();
    let history: History = [seed, t1, t2].into_iter().collect();
    check_all(&history).expect("the paper's Figure 1 schedule is external consistent");
}

/// The same scenario but with the delay *not* applied: T2 returns to its
/// client before T1 starts, yet T1 still reads the old version. This is the
/// violation SSS's pre-commit wait exists to prevent, and the checker must
/// reject it.
#[test]
fn figure_1_without_the_delay_is_rejected() {
    let base = Instant::now();
    let seed = TxnRecordBuilder::new(txn(1, 0), TxnKind::Update)
        .started(at(base, 0))
        .finished(at(base, 1))
        .write("y", Value::from_u64(0))
        .build();
    let t2 = TxnRecordBuilder::new(txn(1, 2), TxnKind::Update)
        .started(at(base, 5))
        .finished(at(base, 8))
        .read("y", Some(Value::from_u64(0)), Some(txn(1, 0)))
        .write("y", Value::from_u64(1))
        .build();
    // T1 starts only after T2's client was answered, but observes the
    // pre-T2 version: externally inconsistent.
    let t1 = TxnRecordBuilder::new(txn(0, 1), TxnKind::ReadOnly)
        .started(at(base, 10))
        .finished(at(base, 12))
        .read("y", Some(Value::from_u64(0)), Some(txn(1, 0)))
        .build();
    let history: History = [seed, t2, t1].into_iter().collect();
    let err = check_external_consistency(&history)
        .expect_err("a stale read after the writer's return must be rejected");
    assert!(matches!(err, ConsistencyError::CycleDetected { .. }));
}

/// Paper Figure 2: two read-only transactions (T1, T4) and two
/// non-conflicting update transactions (T2 on x, T3 on y). SSS serializes
/// both readers before both writers; every reader observes the initial
/// versions of both keys. That joint outcome must be accepted.
#[test]
fn figure_2_schedule_is_accepted() {
    let base = Instant::now();
    let seed = TxnRecordBuilder::new(txn(2, 0), TxnKind::Update)
        .started(at(base, 0))
        .finished(at(base, 1))
        .write("x", Value::from_u64(0))
        .write("y", Value::from_u64(0))
        .build();
    let t1 = TxnRecordBuilder::new(txn(0, 1), TxnKind::ReadOnly)
        .started(at(base, 10))
        .finished(at(base, 40))
        .read("x", Some(Value::from_u64(0)), Some(txn(2, 0)))
        .read("y", Some(Value::from_u64(0)), Some(txn(2, 0)))
        .build();
    let t4 = TxnRecordBuilder::new(txn(3, 1), TxnKind::ReadOnly)
        .started(at(base, 11))
        .finished(at(base, 41))
        .read("y", Some(Value::from_u64(0)), Some(txn(2, 0)))
        .read("x", Some(Value::from_u64(0)), Some(txn(2, 0)))
        .build();
    // The two writers overlap the readers and each other; their client
    // responses are delayed until both readers returned.
    let t2 = TxnRecordBuilder::new(txn(1, 2), TxnKind::Update)
        .started(at(base, 15))
        .finished(at(base, 45))
        .write("x", Value::from_u64(1))
        .build();
    let t3 = TxnRecordBuilder::new(txn(2, 3), TxnKind::Update)
        .started(at(base, 16))
        .finished(at(base, 46))
        .write("y", Value::from_u64(1))
        .build();
    let history: History = [seed, t1, t4, t2, t3].into_iter().collect();
    check_all(&history).expect("the paper's Figure 2 schedule is external consistent");
}

/// The cross-node ordering anomaly of §III-C (first observed by Adya): two
/// read-only transactions order two non-conflicting update transactions in
/// opposite ways. Each reader alone is fine, so only the snapshot
/// monotonicity / cycle analysis over the whole history can reject it.
#[test]
fn adya_cross_node_ordering_anomaly_is_rejected() {
    let base = Instant::now();
    let seed = TxnRecordBuilder::new(txn(0, 0), TxnKind::Update)
        .started(at(base, 0))
        .finished(at(base, 1))
        .write("x", Value::from_u64(0))
        .write("y", Value::from_u64(0))
        .build();
    // Non-conflicting writers, both completed before the readers start (so
    // the readers' observations are constrained by real time).
    let wx = TxnRecordBuilder::new(txn(1, 1), TxnKind::Update)
        .started(at(base, 5))
        .finished(at(base, 7))
        .read("x", Some(Value::from_u64(0)), Some(txn(0, 0)))
        .write("x", Value::from_u64(1))
        .build();
    let wy = TxnRecordBuilder::new(txn(2, 1), TxnKind::Update)
        .started(at(base, 6))
        .finished(at(base, 8))
        .read("y", Some(Value::from_u64(0)), Some(txn(0, 0)))
        .write("y", Value::from_u64(1))
        .build();
    // Reader A sees wx but not wy; reader B sees wy but not wx. Both start
    // after both writers returned, which makes each individual observation a
    // stale read and the pair mutually inconsistent.
    let ra = TxnRecordBuilder::new(txn(1, 9), TxnKind::ReadOnly)
        .started(at(base, 20))
        .finished(at(base, 21))
        .read("x", Some(Value::from_u64(1)), Some(txn(1, 1)))
        .read("y", Some(Value::from_u64(0)), Some(txn(0, 0)))
        .build();
    let rb = TxnRecordBuilder::new(txn(2, 9), TxnKind::ReadOnly)
        .started(at(base, 22))
        .finished(at(base, 23))
        .read("x", Some(Value::from_u64(0)), Some(txn(0, 0)))
        .read("y", Some(Value::from_u64(1)), Some(txn(2, 1)))
        .build();
    let history: History = [seed, wx, wy, ra, rb].into_iter().collect();
    assert!(
        check_external_consistency(&history).is_err()
            || check_read_only_snapshots(&history).is_err(),
        "readers ordering non-conflicting writers in opposite ways must be rejected"
    );
}

/// Mutation probe for the grouped external-commit confirmation: two update
/// transactions share one `ConfirmExternal` round, and a (deliberately
/// buggy) coordinator answers the *second* member's client as soon as the
/// round acknowledged the first — before the round's coverage extends to
/// the second member's write on every node. A reader that starts after
/// that premature response but still observes the pre-write version is
/// exactly the history such a mis-grouping produces, and the checker must
/// reject it. Guards the invariant that an epoch-grouped round may only
/// release members whose commit vectors it actually carried.
#[test]
fn misgrouped_confirmation_release_is_rejected() {
    let base = Instant::now();
    let seed = TxnRecordBuilder::new(txn(0, 0), TxnKind::Update)
        .started(at(base, 0))
        .finished(at(base, 1))
        .write("x", Value::from_u64(0))
        .write("y", Value::from_u64(0))
        .build();
    // First group member: confirmed correctly, its response is fine.
    let w1 = TxnRecordBuilder::new(txn(1, 1), TxnKind::Update)
        .started(at(base, 5))
        .finished(at(base, 8))
        .read("x", Some(Value::from_u64(0)), Some(txn(0, 0)))
        .write("x", Value::from_u64(1))
        .build();
    // Second group member: its client response rides on w1's ack even
    // though its own write was never covered by the round — the response
    // lands before the write is visible anywhere.
    let w2 = TxnRecordBuilder::new(txn(2, 2), TxnKind::Update)
        .started(at(base, 6))
        .finished(at(base, 9))
        .read("y", Some(Value::from_u64(0)), Some(txn(0, 0)))
        .write("y", Value::from_u64(1))
        .build();
    // Reader starts after both responses, sees w1's write but still the
    // pre-w2 version of y: the premature release made real time and the
    // serialization order disagree.
    let reader = TxnRecordBuilder::new(txn(0, 9), TxnKind::ReadOnly)
        .started(at(base, 12))
        .finished(at(base, 14))
        .read("x", Some(Value::from_u64(1)), Some(txn(1, 1)))
        .read("y", Some(Value::from_u64(0)), Some(txn(0, 0)))
        .build();
    let history: History = [seed, w1, w2, reader].into_iter().collect();
    let err = check_external_consistency(&history)
        .expect_err("a stale read after a mis-grouped release must be rejected");
    assert!(matches!(err, ConsistencyError::CycleDetected { .. }));
}

/// A long chain of serially dependent update transactions followed by a
/// reader of the final state: the graph is large but acyclic, and the
/// checker must accept it quickly.
#[test]
fn long_serial_chain_is_accepted() {
    let base = Instant::now();
    let mut history = History::new();
    let mut previous_writer = txn(0, 0);
    history.push(
        TxnRecordBuilder::new(previous_writer, TxnKind::Update)
            .started(at(base, 0))
            .finished(at(base, 1))
            .write("counter", Value::from_u64(0))
            .build(),
    );
    for i in 1..100u64 {
        let id = txn((i % 3) as usize, i);
        history.push(
            TxnRecordBuilder::new(id, TxnKind::Update)
                .started(at(base, 2 * i))
                .finished(at(base, 2 * i + 1))
                .read(
                    "counter",
                    Some(Value::from_u64(i - 1)),
                    Some(previous_writer),
                )
                .write("counter", Value::from_u64(i))
                .build(),
        );
        previous_writer = id;
    }
    history.push(
        TxnRecordBuilder::new(txn(1, 999), TxnKind::ReadOnly)
            .started(at(base, 500))
            .finished(at(base, 501))
            .read("counter", Some(Value::from_u64(99)), Some(previous_writer))
            .build(),
    );
    let dsg = DsgChecker::build(&history);
    assert_eq!(dsg.node_count(), 101);
    assert!(dsg.is_acyclic());
    check_all(&history).expect("serial chain is consistent");

    // A reader observing a value from the middle of the chain *after* the
    // chain completed is stale and must be rejected.
    let mut stale = history.clone();
    stale.push(
        TxnRecordBuilder::new(txn(2, 999), TxnKind::ReadOnly)
            .started(at(base, 600))
            .finished(at(base, 601))
            .read(
                "counter",
                Some(Value::from_u64(50)),
                Some(txn((50 % 3) as usize, 50)),
            )
            .build(),
    );
    assert!(check_all(&stale).is_err());
}
