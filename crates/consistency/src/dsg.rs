//! Direct Serialization Graph construction and cycle detection.
//!
//! Following the paper's correctness framework (§IV): every committed
//! transaction is a node; write-read, write-write and read-write
//! dependencies are edges; and, because external consistency also constrains
//! the order of client-observed completions, an edge is added from `Ti` to
//! `Tj` whenever `Ti` returned to its client before `Tj` started. The
//! history is external consistent iff the resulting graph is acyclic.
//!
//! The per-key version order required for write-write and read-write edges
//! is *not* guessed from wall-clock completion times (overlapping writers of
//! the same key may legally complete in either order, because SSS only
//! delays the client response). Instead the checker uses two sound sources
//! of ordering evidence:
//!
//! * **read-links** — an update transaction that read key `k` and then
//!   overwrote it is ordered directly after the writer of the version it
//!   observed (SSS and the 2PC baseline validate reads, so the observed
//!   version is exactly the one being replaced);
//! * **real time** — a writer that started after another writer of the same
//!   key completed necessarily produces a later version.
//!
//! Both kinds of evidence never order two transactions the system was free
//! to serialize either way, so a reported cycle is always a genuine
//! violation.
//!
//! Real-time edges form a dense relation (up to n² for n transactions), so
//! they are **not materialized**: the cycle search enumerates them
//! implicitly from a start-time-sorted index. [`DsgChecker::edges`]
//! therefore returns only the dependency edges; use
//! [`TxnRecord::precedes_in_real_time`](crate::TxnRecord::precedes_in_real_time)
//! for individual real-time queries.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use sss_storage::{Key, TxnId};

use crate::history::History;

/// The kind of dependency an edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dependency {
    /// `Tj` read a value written by `Ti`.
    WriteRead,
    /// `Tj` overwrote a value written by `Ti`.
    WriteWrite,
    /// `Tj` overwrote a value previously read by `Ti` (anti-dependency).
    ReadWrite,
    /// `Ti` returned to its client before `Tj` started.
    RealTime,
}

impl std::fmt::Display for Dependency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dependency::WriteRead => "wr",
            Dependency::WriteWrite => "ww",
            Dependency::ReadWrite => "rw",
            Dependency::RealTime => "rt",
        };
        f.write_str(s)
    }
}

/// A directed edge of the serialization graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source transaction.
    pub from: TxnId,
    /// Destination transaction.
    pub to: TxnId,
    /// Dependency kind.
    pub dependency: Dependency,
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -[{}]-> {}", self.from, self.dependency, self.to)
    }
}

/// Builds and checks the Direct Serialization Graph of a [`History`].
#[derive(Debug)]
pub struct DsgChecker {
    /// Materialized dependency (wr/ww/rw) edges.
    edges: Vec<Edge>,
    /// Dependency adjacency in node-index space.
    adjacency: Vec<Vec<usize>>,
    /// Node ids by index.
    ids: Vec<TxnId>,
    /// `(started, finished)` per node, in index space.
    times: Vec<(Instant, Instant)>,
    /// Node indices sorted by start instant — the implicit real-time edges:
    /// node `a` has an rt edge to every node whose start is at or after
    /// `a`'s finish, i.e. a suffix of this ordering.
    by_start: Vec<usize>,
}

impl DsgChecker {
    /// Builds the graph from a history of committed transactions.
    pub fn build(history: &History) -> Self {
        let records = history.transactions();
        let ids: Vec<TxnId> = records.iter().map(|t| t.id).collect();
        let index_of: HashMap<TxnId, usize> =
            ids.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        let times: Vec<(Instant, Instant)> =
            records.iter().map(|t| (t.started, t.finished)).collect();

        let mut edge_set: HashSet<Edge> = HashSet::new();

        // Writers of every key, used to place write-write and read-write
        // (anti-dependency) edges.
        let mut writers_per_key: HashMap<&Key, Vec<TxnId>> = HashMap::new();
        // Read-links: `(writer, key, observed)` when `writer` read
        // `observed`'s version of `key` and overwrote it.
        let mut read_links: HashSet<(TxnId, &Key, TxnId)> = HashSet::new();
        for txn in records {
            for key in txn.written_keys() {
                writers_per_key.entry(key).or_default().push(txn.id);
            }
            for read in &txn.reads {
                if let Some(observed) = read.observed_writer {
                    if txn.written_value(&read.key).is_some() {
                        read_links.insert((txn.id, &read.key, observed));
                    }
                }
            }
        }

        // `W` is provably a later writer of `key` than `observed` if either
        // it read `observed`'s version before overwriting it, or it started
        // only after `observed` had already completed.
        let provably_after = |w: &TxnId, observed: &TxnId, key: &Key| -> bool {
            if w == observed {
                return false;
            }
            if read_links.contains(&(*w, key, *observed)) {
                return true;
            }
            match (index_of.get(observed), index_of.get(w)) {
                // Strict: same-instant transactions are concurrent (see
                // `TxnRecord::precedes_in_real_time`).
                (Some(o), Some(wi)) => times[*o].1 < times[*wi].0,
                _ => false,
            }
        };

        for txn in records {
            for read in &txn.reads {
                let Some(observed) = read.observed_writer else {
                    continue;
                };
                if !index_of.contains_key(&observed) || observed == txn.id {
                    continue;
                }
                // Write-read dependency.
                edge_set.insert(Edge {
                    from: observed,
                    to: txn.id,
                    dependency: Dependency::WriteRead,
                });
                // Write-write: the reader itself overwrote the observed
                // version (update transactions validate their reads, so the
                // version they observed is the one they replace).
                if txn.written_value(&read.key).is_some() {
                    edge_set.insert(Edge {
                        from: observed,
                        to: txn.id,
                        dependency: Dependency::WriteWrite,
                    });
                }
                // Read-write anti-dependencies towards every writer that is
                // provably ordered after the observed version.
                if let Some(writers) = writers_per_key.get(&read.key) {
                    for w in writers {
                        if *w != txn.id && provably_after(w, &observed, &read.key) {
                            edge_set.insert(Edge {
                                from: txn.id,
                                to: *w,
                                dependency: Dependency::ReadWrite,
                            });
                        }
                    }
                }
            }
        }

        // Write-write edges between writers of the same key that did not
        // overlap in real time (the later one necessarily produced the later
        // version).
        for writers in writers_per_key.values() {
            for p in writers {
                for w in writers {
                    if p == w {
                        continue;
                    }
                    let (Some(pi), Some(wi)) = (index_of.get(p), index_of.get(w)) else {
                        continue;
                    };
                    if times[*pi].1 < times[*wi].0 {
                        edge_set.insert(Edge {
                            from: *p,
                            to: *w,
                            dependency: Dependency::WriteWrite,
                        });
                    }
                }
            }
        }

        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
        for edge in &edge_set {
            adjacency[index_of[&edge.from]].push(index_of[&edge.to]);
        }

        let mut by_start: Vec<usize> = (0..ids.len()).collect();
        by_start.sort_by_key(|i| times[*i].0);

        DsgChecker {
            edges: edge_set.into_iter().collect(),
            adjacency,
            ids,
            times,
            by_start,
        }
    }

    /// The materialized dependency edges of the graph (write-read,
    /// write-write, read-write). Real-time edges are implicit; see the
    /// module docs.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of transactions in the graph.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Searches for a cycle over the dependency edges *and* the implicit
    /// real-time edges. Returns the sequence of transaction ids along one
    /// cycle if found, `None` if the graph is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            Unvisited,
            InProgress,
            Done,
        }
        let n = self.ids.len();
        let mut marks = vec![Mark::Unvisited; n];
        let mut stack: Vec<usize> = Vec::new();

        // Iterative DFS; each frame tracks progress through the dependency
        // neighbours and then through the real-time suffix (nodes whose
        // start is at or after this node's finish, in start order).
        struct Frame {
            node: usize,
            dep_pos: usize,
            rt_pos: usize,
        }

        // First index in `by_start` whose start instant is strictly after
        // `finish` (ties are concurrent, not rt-ordered).
        let rt_suffix_start = |finish: Instant| -> usize {
            self.by_start
                .partition_point(|i| self.times[*i].0 <= finish)
        };

        for root in 0..n {
            if marks[root] != Mark::Unvisited {
                continue;
            }
            let mut frames = vec![Frame {
                node: root,
                dep_pos: 0,
                rt_pos: rt_suffix_start(self.times[root].1),
            }];
            marks[root] = Mark::InProgress;
            stack.push(root);

            while let Some(frame) = frames.last_mut() {
                let node = frame.node;
                // Next neighbour: dependency edges first, then the rt suffix.
                let next = if frame.dep_pos < self.adjacency[node].len() {
                    let t = self.adjacency[node][frame.dep_pos];
                    frame.dep_pos += 1;
                    Some(t)
                } else if frame.rt_pos < self.by_start.len() {
                    let t = self.by_start[frame.rt_pos];
                    frame.rt_pos += 1;
                    if t == node {
                        continue;
                    }
                    Some(t)
                } else {
                    None
                };
                match next {
                    Some(target) => match marks[target] {
                        Mark::InProgress => {
                            let start = stack.iter().position(|x| *x == target).unwrap_or(0);
                            let mut cycle: Vec<TxnId> =
                                stack[start..].iter().map(|i| self.ids[*i]).collect();
                            cycle.push(self.ids[target]);
                            return Some(cycle);
                        }
                        Mark::Unvisited => {
                            marks[target] = Mark::InProgress;
                            stack.push(target);
                            frames.push(Frame {
                                node: target,
                                dep_pos: 0,
                                rt_pos: rt_suffix_start(self.times[target].1),
                            });
                        }
                        Mark::Done => {}
                    },
                    None => {
                        marks[node] = Mark::Done;
                        stack.pop();
                        frames.pop();
                    }
                }
            }
        }
        None
    }

    /// Describes each hop of a transaction sequence (as returned by
    /// [`DsgChecker::find_cycle`]) by the dependency kinds connecting the
    /// pair, e.g. `"rw"` or `"wr+ww"`; real-time edges are reported as
    /// `"rt"`. Hops with no known edge render as `"?"`.
    pub fn explain_hops(&self, cycle: &[TxnId]) -> Vec<String> {
        let index_of: HashMap<TxnId, usize> = self
            .ids
            .iter()
            .enumerate()
            .map(|(i, id)| (*id, i))
            .collect();
        cycle
            .windows(2)
            .map(|pair| {
                let mut kinds: Vec<String> = self
                    .edges
                    .iter()
                    .filter(|e| e.from == pair[0] && e.to == pair[1])
                    .map(|e| e.dependency.to_string())
                    .collect();
                if let (Some(a), Some(b)) = (index_of.get(&pair[0]), index_of.get(&pair[1])) {
                    if self.times[*a].1 < self.times[*b].0 {
                        kinds.push(Dependency::RealTime.to_string());
                    }
                }
                if kinds.is_empty() {
                    "?".to_string()
                } else {
                    kinds.join("+")
                }
            })
            .collect()
    }

    /// `true` when the graph has no cycle (the history is external
    /// consistent under the derived version order).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{TxnKind, TxnRecordBuilder};
    use sss_storage::Value;
    use sss_vclock::NodeId;
    use std::time::Duration;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn serial_history_is_acyclic() {
        let t0 = Instant::now();
        let history: History = (0..3u64)
            .map(|i| {
                TxnRecordBuilder::new(txn(i), TxnKind::Update)
                    .started(t0 + Duration::from_millis(10 * i))
                    .finished(t0 + Duration::from_millis(10 * i + 5))
                    .write("x", Value::from_u64(i))
                    .build()
            })
            .collect();
        let dsg = DsgChecker::build(&history);
        assert_eq!(dsg.node_count(), 3);
        assert!(dsg.is_acyclic());
        assert!(dsg
            .edges()
            .iter()
            .any(|e| e.dependency == Dependency::WriteWrite));
    }

    #[test]
    fn stale_read_after_completion_forms_a_cycle() {
        // T1 writes x and completes. T2 starts afterwards but observes the
        // initial version written by T0 — a violation of external
        // consistency (rt edge T1 -> T2, rw edge T2 -> T1).
        let t0 = Instant::now();
        let init = TxnRecordBuilder::new(txn(0), TxnKind::Update)
            .started(t0)
            .finished(t0 + Duration::from_millis(1))
            .write("x", Value::from_u64(0))
            .build();
        let writer = TxnRecordBuilder::new(txn(1), TxnKind::Update)
            .started(t0 + Duration::from_millis(2))
            .finished(t0 + Duration::from_millis(3))
            .write("x", Value::from_u64(1))
            .build();
        let stale_reader = TxnRecordBuilder::new(txn(2), TxnKind::ReadOnly)
            .started(t0 + Duration::from_millis(4))
            .finished(t0 + Duration::from_millis(5))
            .read("x", Some(Value::from_u64(0)), Some(txn(0)))
            .build();
        let history: History = [init, writer, stale_reader].into_iter().collect();
        let dsg = DsgChecker::build(&history);
        assert!(!dsg.is_acyclic());
        let cycle = dsg.find_cycle().unwrap();
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn concurrent_reader_of_old_version_is_allowed() {
        // Same as above but the reader overlaps the writer in real time, so
        // serializing it before the writer is legal.
        let t0 = Instant::now();
        let init = TxnRecordBuilder::new(txn(0), TxnKind::Update)
            .started(t0)
            .finished(t0 + Duration::from_millis(1))
            .write("x", Value::from_u64(0))
            .build();
        let writer = TxnRecordBuilder::new(txn(1), TxnKind::Update)
            .started(t0 + Duration::from_millis(2))
            .finished(t0 + Duration::from_millis(10))
            .write("x", Value::from_u64(1))
            .build();
        let reader = TxnRecordBuilder::new(txn(2), TxnKind::ReadOnly)
            .started(t0 + Duration::from_millis(3))
            .finished(t0 + Duration::from_millis(4))
            .read("x", Some(Value::from_u64(0)), Some(txn(0)))
            .build();
        let history: History = [init, writer, reader].into_iter().collect();
        let dsg = DsgChecker::build(&history);
        assert!(dsg.is_acyclic());
    }

    #[test]
    fn pure_real_time_chains_are_acyclic() {
        // Disjoint transactions ordered purely by real time must not be
        // reported as cyclic by the implicit rt traversal.
        let t0 = Instant::now();
        let history: History = (0..50u64)
            .map(|i| {
                TxnRecordBuilder::new(txn(i), TxnKind::Update)
                    .started(t0 + Duration::from_millis(2 * i))
                    .finished(t0 + Duration::from_millis(2 * i + 1))
                    .write(format!("k{i}"), Value::from_u64(i))
                    .build()
            })
            .collect();
        let dsg = DsgChecker::build(&history);
        assert!(dsg.is_acyclic());
    }

    #[test]
    fn edge_display_is_readable() {
        let e = Edge {
            from: txn(1),
            to: txn(2),
            dependency: Dependency::ReadWrite,
        };
        assert_eq!(e.to_string(), "T0.1 -[rw]-> T0.2");
        assert_eq!(Dependency::WriteRead.to_string(), "wr");
        assert_eq!(Dependency::RealTime.to_string(), "rt");
        assert_eq!(Dependency::WriteWrite.to_string(), "ww");
    }
}
