//! Direct Serialization Graph construction and cycle detection.
//!
//! Following the paper's correctness framework (§IV): every committed
//! transaction is a node; write-read, write-write and read-write
//! dependencies are edges; and, because external consistency also constrains
//! the order of client-observed completions, an edge is added from `Ti` to
//! `Tj` whenever `Ti` returned to its client before `Tj` started. The
//! history is external consistent iff the resulting graph is acyclic.
//!
//! The per-key version order required for write-write and read-write edges
//! is *not* guessed from wall-clock completion times (overlapping writers of
//! the same key may legally complete in either order, because SSS only
//! delays the client response). Instead the checker uses two sound sources
//! of ordering evidence:
//!
//! * **read-links** — an update transaction that read key `k` and then
//!   overwrote it is ordered directly after the writer of the version it
//!   observed (SSS and the 2PC baseline validate reads, so the observed
//!   version is exactly the one being replaced);
//! * **real time** — a writer that started after another writer of the same
//!   key completed necessarily produces a later version.
//!
//! Both kinds of evidence never order two transactions the system was free
//! to serialize either way, so a reported cycle is always a genuine
//! violation.

use std::collections::{HashMap, HashSet};

use sss_storage::{Key, TxnId};

use crate::history::History;

/// The kind of dependency an edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dependency {
    /// `Tj` read a value written by `Ti`.
    WriteRead,
    /// `Tj` overwrote a value written by `Ti`.
    WriteWrite,
    /// `Tj` overwrote a value previously read by `Ti` (anti-dependency).
    ReadWrite,
    /// `Ti` returned to its client before `Tj` started.
    RealTime,
}

impl std::fmt::Display for Dependency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dependency::WriteRead => "wr",
            Dependency::WriteWrite => "ww",
            Dependency::ReadWrite => "rw",
            Dependency::RealTime => "rt",
        };
        f.write_str(s)
    }
}

/// A directed edge of the serialization graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source transaction.
    pub from: TxnId,
    /// Destination transaction.
    pub to: TxnId,
    /// Dependency kind.
    pub dependency: Dependency,
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -[{}]-> {}", self.from, self.dependency, self.to)
    }
}

/// Builds and checks the Direct Serialization Graph of a [`History`].
#[derive(Debug)]
pub struct DsgChecker {
    edges: Vec<Edge>,
    adjacency: HashMap<TxnId, Vec<(TxnId, Dependency)>>,
    nodes: Vec<TxnId>,
}

impl DsgChecker {
    /// Builds the graph from a history of committed transactions.
    pub fn build(history: &History) -> Self {
        let mut edges: HashSet<Edge> = HashSet::new();
        let ids: HashSet<TxnId> = history.transactions().iter().map(|t| t.id).collect();

        // Writers of every key, used to place read-write (anti-dependency)
        // edges.
        let mut writers_per_key: HashMap<Key, Vec<TxnId>> = HashMap::new();
        for txn in history.transactions() {
            for key in txn.written_keys() {
                writers_per_key.entry(key.clone()).or_default().push(txn.id);
            }
        }

        // `W` is provably a later writer of `key` than `observed` if either
        // it read `observed`'s version before overwriting it, or it started
        // only after `observed` had already completed.
        let provably_after = |w: &TxnId, observed: &TxnId, key: &Key| -> bool {
            if w == observed {
                return false;
            }
            let (Some(writer), Some(observed_rec)) = (history.get(*w), history.get(*observed))
            else {
                return false;
            };
            let via_read_link = writer
                .reads
                .iter()
                .any(|r| &r.key == key && r.observed_writer == Some(*observed));
            via_read_link || observed_rec.precedes_in_real_time(writer)
        };

        for txn in history.transactions() {
            for read in &txn.reads {
                let Some(observed) = read.observed_writer else {
                    continue;
                };
                if !ids.contains(&observed) || observed == txn.id {
                    continue;
                }
                // Write-read dependency.
                edges.insert(Edge {
                    from: observed,
                    to: txn.id,
                    dependency: Dependency::WriteRead,
                });
                // Write-write: the reader itself overwrote the observed
                // version (update transactions validate their reads, so the
                // version they observed is the one they replace).
                if txn.written_value(&read.key).is_some() {
                    edges.insert(Edge {
                        from: observed,
                        to: txn.id,
                        dependency: Dependency::WriteWrite,
                    });
                }
                // Read-write anti-dependencies towards every writer that is
                // provably ordered after the observed version.
                if let Some(writers) = writers_per_key.get(&read.key) {
                    for w in writers {
                        if *w != txn.id && provably_after(w, &observed, &read.key) {
                            edges.insert(Edge {
                                from: txn.id,
                                to: *w,
                                dependency: Dependency::ReadWrite,
                            });
                        }
                    }
                }
            }
        }

        // Write-write edges between writers of the same key that did not
        // overlap in real time (the later one necessarily produced the later
        // version).
        for writers in writers_per_key.values() {
            for p in writers {
                for w in writers {
                    if p == w {
                        continue;
                    }
                    let (Some(pr), Some(wr)) = (history.get(*p), history.get(*w)) else {
                        continue;
                    };
                    if pr.precedes_in_real_time(wr) {
                        edges.insert(Edge {
                            from: *p,
                            to: *w,
                            dependency: Dependency::WriteWrite,
                        });
                    }
                }
            }
        }

        // Real-time (external completion order) edges: A completed before B
        // started, so B must serialize after A.
        let records = history.transactions();
        for a in records {
            for b in records {
                if a.id == b.id || !a.precedes_in_real_time(b) {
                    continue;
                }
                edges.insert(Edge {
                    from: a.id,
                    to: b.id,
                    dependency: Dependency::RealTime,
                });
            }
        }

        let mut adjacency: HashMap<TxnId, Vec<(TxnId, Dependency)>> = HashMap::new();
        for edge in &edges {
            adjacency
                .entry(edge.from)
                .or_default()
                .push((edge.to, edge.dependency));
        }
        DsgChecker {
            edges: edges.into_iter().collect(),
            adjacency,
            nodes: ids.into_iter().collect(),
        }
    }

    /// All edges of the graph.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of transactions in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Searches for a cycle. Returns the sequence of transaction ids along
    /// one cycle if found, `None` if the graph is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            Unvisited,
            InProgress,
            Done,
        }
        let mut marks: HashMap<TxnId, Mark> =
            self.nodes.iter().map(|n| (*n, Mark::Unvisited)).collect();
        let mut stack: Vec<TxnId> = Vec::new();

        fn dfs(
            node: TxnId,
            adjacency: &HashMap<TxnId, Vec<(TxnId, Dependency)>>,
            marks: &mut HashMap<TxnId, Mark>,
            stack: &mut Vec<TxnId>,
        ) -> Option<Vec<TxnId>> {
            marks.insert(node, Mark::InProgress);
            stack.push(node);
            if let Some(neighbours) = adjacency.get(&node) {
                for (next, _) in neighbours {
                    match marks.get(next).copied().unwrap_or(Mark::Unvisited) {
                        Mark::InProgress => {
                            let start = stack.iter().position(|n| n == next).unwrap_or(0);
                            let mut cycle = stack[start..].to_vec();
                            cycle.push(*next);
                            return Some(cycle);
                        }
                        Mark::Unvisited => {
                            if let Some(cycle) = dfs(*next, adjacency, marks, stack) {
                                return Some(cycle);
                            }
                        }
                        Mark::Done => {}
                    }
                }
            }
            stack.pop();
            marks.insert(node, Mark::Done);
            None
        }

        let nodes: Vec<TxnId> = self.nodes.clone();
        for node in nodes {
            if marks.get(&node).copied() == Some(Mark::Unvisited) {
                if let Some(cycle) = dfs(node, &self.adjacency, &mut marks, &mut stack) {
                    return Some(cycle);
                }
            }
        }
        None
    }

    /// `true` when the graph has no cycle (the history is external
    /// consistent under the derived version order).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{TxnKind, TxnRecordBuilder};
    use sss_storage::Value;
    use sss_vclock::NodeId;
    use std::time::{Duration, Instant};

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn serial_history_is_acyclic() {
        let t0 = Instant::now();
        let history: History = (0..3u64)
            .map(|i| {
                TxnRecordBuilder::new(txn(i), TxnKind::Update)
                    .started(t0 + Duration::from_millis(10 * i))
                    .finished(t0 + Duration::from_millis(10 * i + 5))
                    .write("x", Value::from_u64(i))
                    .build()
            })
            .collect();
        let dsg = DsgChecker::build(&history);
        assert_eq!(dsg.node_count(), 3);
        assert!(dsg.is_acyclic());
        assert!(dsg.edges().iter().any(|e| e.dependency == Dependency::WriteWrite));
    }

    #[test]
    fn stale_read_after_completion_forms_a_cycle() {
        // T1 writes x and completes. T2 starts afterwards but observes the
        // initial version written by T0 — a violation of external
        // consistency (rt edge T1 -> T2, rw edge T2 -> T1).
        let t0 = Instant::now();
        let init = TxnRecordBuilder::new(txn(0), TxnKind::Update)
            .started(t0)
            .finished(t0 + Duration::from_millis(1))
            .write("x", Value::from_u64(0))
            .build();
        let writer = TxnRecordBuilder::new(txn(1), TxnKind::Update)
            .started(t0 + Duration::from_millis(2))
            .finished(t0 + Duration::from_millis(3))
            .write("x", Value::from_u64(1))
            .build();
        let stale_reader = TxnRecordBuilder::new(txn(2), TxnKind::ReadOnly)
            .started(t0 + Duration::from_millis(4))
            .finished(t0 + Duration::from_millis(5))
            .read("x", Some(Value::from_u64(0)), Some(txn(0)))
            .build();
        let history: History = [init, writer, stale_reader].into_iter().collect();
        let dsg = DsgChecker::build(&history);
        assert!(!dsg.is_acyclic());
        let cycle = dsg.find_cycle().unwrap();
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn concurrent_reader_of_old_version_is_allowed() {
        // Same as above but the reader overlaps the writer in real time, so
        // serializing it before the writer is legal.
        let t0 = Instant::now();
        let init = TxnRecordBuilder::new(txn(0), TxnKind::Update)
            .started(t0)
            .finished(t0 + Duration::from_millis(1))
            .write("x", Value::from_u64(0))
            .build();
        let writer = TxnRecordBuilder::new(txn(1), TxnKind::Update)
            .started(t0 + Duration::from_millis(2))
            .finished(t0 + Duration::from_millis(10))
            .write("x", Value::from_u64(1))
            .build();
        let reader = TxnRecordBuilder::new(txn(2), TxnKind::ReadOnly)
            .started(t0 + Duration::from_millis(3))
            .finished(t0 + Duration::from_millis(4))
            .read("x", Some(Value::from_u64(0)), Some(txn(0)))
            .build();
        let history: History = [init, writer, reader].into_iter().collect();
        let dsg = DsgChecker::build(&history);
        assert!(dsg.is_acyclic());
    }

    #[test]
    fn edge_display_is_readable() {
        let e = Edge {
            from: txn(1),
            to: txn(2),
            dependency: Dependency::ReadWrite,
        };
        assert_eq!(e.to_string(), "T0.1 -[rw]-> T0.2");
        assert_eq!(Dependency::WriteRead.to_string(), "wr");
        assert_eq!(Dependency::RealTime.to_string(), "rt");
        assert_eq!(Dependency::WriteWrite.to_string(), "ww");
    }
}
