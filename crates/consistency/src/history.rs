//! Recording committed-transaction histories from concurrent clients.

use std::time::Instant;

use parking_lot::Mutex;
use sss_storage::{Key, TxnId, Value};

/// Whether a recorded transaction was declared read-only or update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// An update transaction (may also have read).
    Update,
    /// A read-only transaction.
    ReadOnly,
}

/// One read observation: the key, the value returned, and — when the test
/// encodes writer identities into values — the transaction that wrote it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRecord {
    /// Key that was read.
    pub key: Key,
    /// Value returned (`None` = no visible version).
    pub value: Option<Value>,
    /// Writer of the observed value, if the harness can attribute it.
    pub observed_writer: Option<TxnId>,
}

/// One write performed by a committed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRecord {
    /// Key that was written.
    pub key: Key,
    /// Value installed.
    pub value: Value,
}

/// A committed transaction as observed by its client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// The transaction identifier.
    pub id: TxnId,
    /// Declared kind.
    pub kind: TxnKind,
    /// Client-side instant at which the transaction began.
    pub started: Instant,
    /// Client-side instant at which the transaction's outcome was returned
    /// to the client (the *external* completion).
    pub finished: Instant,
    /// Reads performed, in program order.
    pub reads: Vec<ReadRecord>,
    /// Writes performed, in program order.
    pub writes: Vec<WriteRecord>,
}

impl TxnRecord {
    /// `true` if this transaction finished (returned to its client) strictly
    /// before `other` started — the real-time precedence used for external
    /// consistency. Ties are treated as concurrent: under the discrete-event
    /// simulator many transactions legitimately complete at the same virtual
    /// instant, and ordering both ways would fabricate precedence cycles.
    pub fn precedes_in_real_time(&self, other: &TxnRecord) -> bool {
        self.finished < other.started
    }

    /// The value this transaction wrote to `key`, if any (last write wins).
    pub fn written_value(&self, key: &Key) -> Option<&Value> {
        self.writes
            .iter()
            .rev()
            .find(|w| &w.key == key)
            .map(|w| &w.value)
    }

    /// Keys written by this transaction.
    pub fn written_keys(&self) -> impl Iterator<Item = &Key> {
        self.writes.iter().map(|w| &w.key)
    }
}

/// A complete history of committed transactions.
#[derive(Debug, Clone, Default)]
pub struct History {
    transactions: Vec<TxnRecord>,
    /// Index from transaction id to position in `transactions`, so that
    /// [`History::get`] stays O(1) — the consistency checkers look records
    /// up inside nested loops over sizeable histories.
    index: std::collections::HashMap<TxnId, usize>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Adds a committed transaction.
    pub fn push(&mut self, record: TxnRecord) {
        self.index.insert(record.id, self.transactions.len());
        self.transactions.push(record);
    }

    /// All committed transactions, in recording order.
    pub fn transactions(&self) -> &[TxnRecord] {
        &self.transactions
    }

    /// Number of recorded transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Looks a transaction up by id.
    pub fn get(&self, id: TxnId) -> Option<&TxnRecord> {
        self.index.get(&id).map(|i| &self.transactions[*i])
    }

    /// Update transactions only.
    pub fn updates(&self) -> impl Iterator<Item = &TxnRecord> {
        self.transactions
            .iter()
            .filter(|t| t.kind == TxnKind::Update)
    }

    /// Read-only transactions only.
    pub fn read_onlys(&self) -> impl Iterator<Item = &TxnRecord> {
        self.transactions
            .iter()
            .filter(|t| t.kind == TxnKind::ReadOnly)
    }
}

impl FromIterator<TxnRecord> for History {
    fn from_iter<T: IntoIterator<Item = TxnRecord>>(iter: T) -> Self {
        let mut history = History::new();
        for record in iter {
            history.push(record);
        }
        history
    }
}

/// A thread-safe [`History`] collector shared by concurrent client threads.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    inner: Mutex<History>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        HistoryRecorder::default()
    }

    /// Records one committed transaction.
    pub fn record(&self, record: TxnRecord) {
        self.inner.lock().push(record);
    }

    /// Number of transactions recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Extracts the recorded history.
    pub fn into_history(self) -> History {
        self.inner.into_inner()
    }

    /// Clones the history recorded so far.
    pub fn snapshot(&self) -> History {
        self.inner.lock().clone()
    }
}

/// Convenience builder used by tests to assemble transaction records.
#[derive(Debug)]
pub struct TxnRecordBuilder {
    record: TxnRecord,
}

impl TxnRecordBuilder {
    /// Starts building a record for transaction `id`.
    pub fn new(id: TxnId, kind: TxnKind) -> Self {
        let now = Instant::now();
        TxnRecordBuilder {
            record: TxnRecord {
                id,
                kind,
                started: now,
                finished: now,
                reads: Vec::new(),
                writes: Vec::new(),
            },
        }
    }

    /// Sets the start instant.
    pub fn started(mut self, at: Instant) -> Self {
        self.record.started = at;
        self
    }

    /// Sets the finish instant.
    pub fn finished(mut self, at: Instant) -> Self {
        self.record.finished = at;
        self
    }

    /// Adds a read observation.
    pub fn read(
        mut self,
        key: impl Into<Key>,
        value: Option<Value>,
        writer: Option<TxnId>,
    ) -> Self {
        self.record.reads.push(ReadRecord {
            key: key.into(),
            value,
            observed_writer: writer,
        });
        self
    }

    /// Adds a write.
    pub fn write(mut self, key: impl Into<Key>, value: impl Into<Value>) -> Self {
        self.record.writes.push(WriteRecord {
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> TxnRecord {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_vclock::NodeId;
    use std::time::Duration;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn recorder_collects_from_many_threads() {
        let recorder = std::sync::Arc::new(HistoryRecorder::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let recorder = std::sync::Arc::clone(&recorder);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        recorder.record(
                            TxnRecordBuilder::new(TxnId::new(NodeId(t), i), TxnKind::Update)
                                .write("k", Value::from_u64(i))
                                .build(),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(recorder.len(), 100);
        assert!(!recorder.is_empty());
        let history = std::sync::Arc::try_unwrap(recorder).unwrap().into_history();
        assert_eq!(history.len(), 100);
        assert_eq!(history.updates().count(), 100);
        assert_eq!(history.read_onlys().count(), 0);
    }

    #[test]
    fn real_time_precedence() {
        let t0 = Instant::now();
        let a = TxnRecordBuilder::new(txn(1), TxnKind::Update)
            .started(t0)
            .finished(t0 + Duration::from_millis(1))
            .build();
        let b = TxnRecordBuilder::new(txn(2), TxnKind::ReadOnly)
            .started(t0 + Duration::from_millis(2))
            .finished(t0 + Duration::from_millis(3))
            .build();
        assert!(a.precedes_in_real_time(&b));
        assert!(!b.precedes_in_real_time(&a));
    }

    #[test]
    fn written_value_returns_last_write() {
        let rec = TxnRecordBuilder::new(txn(1), TxnKind::Update)
            .write("x", Value::from_u64(1))
            .write("x", Value::from_u64(2))
            .build();
        assert_eq!(rec.written_value(&Key::new("x")), Some(&Value::from_u64(2)));
        assert_eq!(rec.written_value(&Key::new("y")), None);
        assert_eq!(rec.written_keys().count(), 2);
    }

    #[test]
    fn history_lookup_and_collect() {
        let history: History = (0..3)
            .map(|i| TxnRecordBuilder::new(txn(i), TxnKind::Update).build())
            .collect();
        assert_eq!(history.len(), 3);
        assert!(history.get(txn(2)).is_some());
        assert!(history.get(txn(9)).is_none());
        assert!(!history.is_empty());
        assert!(History::new().is_empty());
    }
}
