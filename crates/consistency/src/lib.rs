//! History recording and consistency checking for the SSS reproduction.
//!
//! The paper's correctness argument (§IV) is based on Adya's Direct
//! Serialization Graph (DSG): a history is external consistent iff the DSG
//! built from its dependencies *plus* the client-observed completion order
//! is acyclic. This crate provides:
//!
//! * [`HistoryRecorder`] / [`History`] — a thread-safe recorder that clients
//!   use to log every committed transaction (reads with the observed writer,
//!   writes, wall-clock start/finish instants),
//! * [`DsgChecker`] — builds the DSG (write-read, write-write, read-write
//!   and real-time edges) and searches for cycles,
//! * [`check_all`] and friends — higher-level assertions used by the
//!   test-suite: external consistency, snapshot atomicity of read-only
//!   transactions, and monotonicity of client-observed prefixes.
//!
//! The checker is engine-agnostic: SSS and every baseline engine are checked
//! with the same code, which is how the test-suite demonstrates both that
//! SSS *is* externally consistent and that the intentionally weaker Walter
//! engine admits the anomalies PSI allows.

mod checks;
mod dsg;
mod history;

pub use checks::{
    check_all, check_external_consistency, check_read_only_snapshots, has_read_only_traffic,
    ConsistencyError,
};
pub use dsg::{Dependency, DsgChecker, Edge};
pub use history::{
    History, HistoryRecorder, ReadRecord, TxnKind, TxnRecord, TxnRecordBuilder, WriteRecord,
};

pub use sss_storage::{Key, TxnId, Value};
