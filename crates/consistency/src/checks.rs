//! High-level consistency assertions used by the test-suite.

use std::collections::HashMap;

use sss_storage::{Key, TxnId};

use crate::dsg::DsgChecker;
use crate::history::{History, TxnKind};

/// A violation found in a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyError {
    /// The serialization graph (including completion-order edges) has a
    /// cycle: the history is not external consistent.
    CycleDetected {
        /// The transactions along the cycle.
        cycle: Vec<TxnId>,
        /// The dependency kinds along each hop of the cycle (parallel to
        /// the hops of `cycle`), e.g. `["rw", "rt"]` — diagnostic detail
        /// for failure messages.
        kinds: Vec<String>,
    },
    /// A read-only transaction observed a fractured snapshot: it saw the
    /// effects of an update transaction on one key but missed them on
    /// another key written by the same transaction.
    FracturedRead {
        /// The read-only transaction.
        reader: TxnId,
        /// The update transaction partially observed.
        writer: TxnId,
        /// Key on which the writer's effect was observed.
        observed_on: Key,
        /// Key on which an older version was returned.
        missed_on: Key,
    },
    /// Two read-only transactions ordered by their client-observed
    /// completions disagree on the order of the same key's versions.
    NonMonotonicReads {
        /// The earlier (by completion) read-only transaction.
        earlier: TxnId,
        /// The later read-only transaction.
        later: TxnId,
        /// Key on which the later transaction observed an older version.
        key: Key,
    },
}

impl std::fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyError::CycleDetected { cycle, kinds } => {
                write!(f, "serialization cycle: ")?;
                for (i, t) in cycle.iter().enumerate() {
                    if i > 0 {
                        match kinds.get(i - 1) {
                            Some(kind) => write!(f, " -[{kind}]-> ")?,
                            None => write!(f, " -> ")?,
                        }
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            ConsistencyError::FracturedRead {
                reader,
                writer,
                observed_on,
                missed_on,
            } => write!(
                f,
                "fractured read: {reader} saw {writer} on {observed_on} but not on {missed_on}"
            ),
            ConsistencyError::NonMonotonicReads { earlier, later, key } => write!(
                f,
                "non-monotonic reads on {key}: {later} (completed after {earlier}) observed an older version"
            ),
        }
    }
}

impl std::error::Error for ConsistencyError {}

/// Checks that a history is external consistent: the Direct Serialization
/// Graph extended with client-observed completion-order edges must be
/// acyclic (paper §IV).
///
/// # Errors
///
/// Returns [`ConsistencyError::CycleDetected`] with one offending cycle.
pub fn check_external_consistency(history: &History) -> Result<(), ConsistencyError> {
    let dsg = DsgChecker::build(history);
    match dsg.find_cycle() {
        None => Ok(()),
        Some(cycle) => {
            let kinds = dsg.explain_hops(&cycle);
            Err(ConsistencyError::CycleDetected { cycle, kinds })
        }
    }
}

/// Checks two snapshot properties of read-only transactions:
///
/// 1. **Atomicity** — a read-only transaction never observes an update
///    transaction's write on one key while missing the same transaction's
///    write on another key it also read (no fractured reads). This requires
///    the observed writers to be attributed in the history.
/// 2. **Monotonicity** — if read-only transaction `A` returned to its client
///    before `B` started, `B` never observes an older version than `A` on a
///    common key (Statement 3 of §IV: all read-only transactions observe
///    prefixes of a single sequence of update transactions).
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_read_only_snapshots(history: &History) -> Result<(), ConsistencyError> {
    // Sound per-key ordering evidence between committed writers: `later` is
    // provably newer than `earlier` on `key` if it is reachable through a
    // chain of (a) writers that read their predecessor's version of the key
    // before overwriting it, or (b) writers that started only after the
    // predecessor completed. Overlapping writers without a read-link stay
    // unordered, so the checks below never flag an order the system was
    // free to choose. The full per-key transitive closure is precomputed
    // (writer groups per key are small), keeping the pairwise checks below
    // O(1) per lookup.
    let mut writers_per_key: HashMap<&Key, Vec<TxnId>> = HashMap::new();
    for txn in history.updates() {
        for key in txn.written_keys() {
            writers_per_key.entry(key).or_default().push(txn.id);
        }
    }
    let mut newer: HashMap<&Key, std::collections::HashSet<(TxnId, TxnId)>> = HashMap::new();
    for (key, writers) in &writers_per_key {
        let mut direct: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        for w in writers {
            let Some(writer) = history.get(*w) else {
                continue;
            };
            for p in writers {
                if p == w {
                    continue;
                }
                let read_link = writer
                    .reads
                    .iter()
                    .any(|r| &&r.key == key && r.observed_writer == Some(*p));
                let rt_link = history
                    .get(*p)
                    .map(|pr| pr.precedes_in_real_time(writer))
                    .unwrap_or(false);
                if read_link || rt_link {
                    direct.entry(*p).or_default().push(*w);
                }
            }
        }
        // Transitive closure by DFS from every writer of this key.
        let closure = newer.entry(key).or_default();
        for start in writers {
            let mut stack: Vec<TxnId> = direct.get(start).cloned().unwrap_or_default();
            while let Some(current) = stack.pop() {
                if current != *start && closure.insert((*start, current)) {
                    if let Some(next) = direct.get(&current) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
        }
    }
    let provably_newer = |key: &Key, earlier: &TxnId, later: &TxnId| -> bool {
        earlier != later
            && newer
                .get(key)
                .map(|c| c.contains(&(*earlier, *later)))
                .unwrap_or(false)
    };

    // 1. No fractured reads within a single read-only transaction: if the
    // reader observed writer `X` on one key, then on any other key that `X`
    // also wrote it must not observe a version provably older than `X`'s.
    for reader in history.read_onlys() {
        for observed in &reader.reads {
            let Some(writer_id) = observed.observed_writer else {
                continue;
            };
            let Some(writer) = history.get(writer_id) else {
                continue;
            };
            for other_read in &reader.reads {
                if other_read.key == observed.key {
                    continue;
                }
                if writer.written_value(&other_read.key).is_none() {
                    continue;
                }
                let Some(other_writer) = other_read.observed_writer else {
                    continue;
                };
                if other_writer != writer_id
                    && provably_newer(&other_read.key, &other_writer, &writer_id)
                {
                    return Err(ConsistencyError::FracturedRead {
                        reader: reader.id,
                        writer: writer_id,
                        observed_on: observed.key.clone(),
                        missed_on: other_read.key.clone(),
                    });
                }
            }
        }
    }

    // 2. Monotonicity across read-only transactions ordered by completion:
    // the later transaction must not observe a provably older version.
    // Grouped per key, so each pairwise comparison only covers observations
    // of the same key.
    let mut observations: HashMap<&Key, Vec<(&crate::TxnRecord, TxnId)>> = HashMap::new();
    for reader in history.read_onlys() {
        for read in &reader.reads {
            if let Some(writer) = read.observed_writer {
                observations
                    .entry(&read.key)
                    .or_default()
                    .push((reader, writer));
            }
        }
    }
    for (key, obs) in &observations {
        for (a, writer_a) in obs {
            for (b, writer_b) in obs {
                if a.id == b.id || !a.precedes_in_real_time(b) {
                    continue;
                }
                if writer_b != writer_a && provably_newer(key, writer_b, writer_a) {
                    return Err(ConsistencyError::NonMonotonicReads {
                        earlier: a.id,
                        later: b.id,
                        key: (*key).clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Convenience: runs both [`check_external_consistency`] and
/// [`check_read_only_snapshots`].
///
/// # Errors
///
/// Returns the first violation found by either check.
pub fn check_all(history: &History) -> Result<(), ConsistencyError> {
    check_external_consistency(history)?;
    check_read_only_snapshots(history)
}

/// `true` if the history contains at least one read-only transaction — a
/// sanity guard used by tests that are only meaningful with read-only
/// traffic.
pub fn has_read_only_traffic(history: &History) -> bool {
    history
        .transactions()
        .iter()
        .any(|t| t.kind == TxnKind::ReadOnly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{TxnKind, TxnRecordBuilder};
    use sss_storage::Value;
    use sss_vclock::NodeId;
    use std::time::{Duration, Instant};

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    fn base_history() -> (Instant, History) {
        let t0 = Instant::now();
        let w1 = TxnRecordBuilder::new(txn(1), TxnKind::Update)
            .started(t0)
            .finished(t0 + Duration::from_millis(1))
            .write("x", Value::from_u64(1))
            .write("y", Value::from_u64(1))
            .build();
        let w2 = TxnRecordBuilder::new(txn(2), TxnKind::Update)
            .started(t0 + Duration::from_millis(2))
            .finished(t0 + Duration::from_millis(3))
            .write("x", Value::from_u64(2))
            .write("y", Value::from_u64(2))
            .build();
        let history: History = [w1, w2].into_iter().collect();
        (t0, history)
    }

    #[test]
    fn consistent_reader_passes_all_checks() {
        let (t0, mut history) = base_history();
        history.push(
            TxnRecordBuilder::new(txn(3), TxnKind::ReadOnly)
                .started(t0 + Duration::from_millis(4))
                .finished(t0 + Duration::from_millis(5))
                .read("x", Some(Value::from_u64(2)), Some(txn(2)))
                .read("y", Some(Value::from_u64(2)), Some(txn(2)))
                .build(),
        );
        assert!(check_all(&history).is_ok());
        assert!(has_read_only_traffic(&history));
    }

    #[test]
    fn fractured_read_is_detected() {
        let (t0, mut history) = base_history();
        // The reader overlaps w2, so external consistency alone cannot rule
        // out the observation; snapshot atomicity does.
        history.push(
            TxnRecordBuilder::new(txn(3), TxnKind::ReadOnly)
                .started(t0 + Duration::from_micros(2500))
                .finished(t0 + Duration::from_millis(5))
                .read("x", Some(Value::from_u64(2)), Some(txn(2)))
                .read("y", Some(Value::from_u64(1)), Some(txn(1)))
                .build(),
        );
        let err = check_read_only_snapshots(&history).unwrap_err();
        match err {
            ConsistencyError::FracturedRead { reader, writer, .. } => {
                assert_eq!(reader, txn(3));
                assert_eq!(writer, txn(2));
            }
            other => panic!("expected fractured read, got {other}"),
        }
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn stale_read_after_completion_is_a_cycle() {
        let (t0, mut history) = base_history();
        history.push(
            TxnRecordBuilder::new(txn(3), TxnKind::ReadOnly)
                .started(t0 + Duration::from_millis(10))
                .finished(t0 + Duration::from_millis(11))
                .read("x", Some(Value::from_u64(1)), Some(txn(1)))
                .build(),
        );
        let err = check_external_consistency(&history).unwrap_err();
        assert!(matches!(err, ConsistencyError::CycleDetected { .. }));
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn non_monotonic_read_only_pair_is_detected() {
        let (t0, mut history) = base_history();
        history.push(
            TxnRecordBuilder::new(txn(3), TxnKind::ReadOnly)
                .started(t0 + Duration::from_millis(4))
                .finished(t0 + Duration::from_millis(5))
                .read("x", Some(Value::from_u64(2)), Some(txn(2)))
                .build(),
        );
        // A later read-only transaction that observes the older version.
        // It also forms an rt/rw cycle, but the snapshot check reports the
        // monotonicity violation without needing the cycle search.
        history.push(
            TxnRecordBuilder::new(txn(4), TxnKind::ReadOnly)
                .started(t0 + Duration::from_millis(6))
                .finished(t0 + Duration::from_millis(7))
                .read("x", Some(Value::from_u64(1)), Some(txn(1)))
                .build(),
        );
        let err = check_read_only_snapshots(&history).unwrap_err();
        assert!(matches!(err, ConsistencyError::NonMonotonicReads { .. }));
        assert!(err.to_string().contains("non-monotonic"));
    }

    #[test]
    fn empty_history_is_trivially_consistent() {
        let history = History::new();
        assert!(check_all(&history).is_ok());
        assert!(!has_read_only_traffic(&history));
    }
}
