//! Registry smoke test: every engine the registry knows about boots a
//! 3-node cluster through the factory, commits one update and one read-only
//! transaction, and SSS's read-only path never aborts (the paper's headline
//! property).

use sss_engine::{EngineKind, NetProfile, TxnOutcome};
use sss_storage::{Key, Value};

#[test]
fn every_engine_kind_builds_and_commits_through_the_factory() {
    for kind in EngineKind::ALL {
        let engine = kind.build(3, 2, NetProfile::Instant);
        assert_eq!(engine.name(), kind.label(), "registry label mismatch");
        assert_eq!(engine.nodes(), 3, "{kind}: wrong cluster size");

        let mut session = engine.session(0);
        let writes = vec![
            (Key::new("smoke-a"), Value::from_u64(1)),
            (Key::new("smoke-b"), Value::from_u64(2)),
        ];
        // A single sequential client: the update may only abort through
        // engine bugs, not contention — but allow bounded retries for
        // engines whose commit path can time out spuriously.
        let mut update_committed = false;
        for _ in 0..16 {
            if session.run_update(&[], &writes).is_committed() {
                update_committed = true;
                break;
            }
        }
        assert!(
            update_committed,
            "{kind}: update transaction never committed"
        );

        let read_keys = vec![Key::new("smoke-a"), Key::new("smoke-b")];
        let outcome = session.run_read_only(&read_keys);
        assert!(
            outcome.is_committed(),
            "{kind}: read-only transaction aborted in a quiescent cluster"
        );
    }
}

#[test]
fn sss_read_only_transactions_never_abort_through_the_registry() {
    let engine = EngineKind::Sss.build(3, 2, NetProfile::Instant);
    let mut writer = engine.session(0);
    assert!(writer
        .run_update(&[], &[(Key::new("ro"), Value::from_u64(0))])
        .is_committed());

    // Abort-freedom is unconditional for SSS read-only transactions: check
    // it from every node, interleaved with writes.
    for round in 0..10u64 {
        assert!(writer
            .run_update(&[], &[(Key::new("ro"), Value::from_u64(round))])
            .is_committed());
        for node in 0..engine.nodes() {
            let mut reader = engine.session(node);
            let outcome = reader.run_read_only(&[Key::new("ro")]);
            assert!(
                matches!(outcome, TxnOutcome::Committed { .. }),
                "SSS read-only aborted on node {node} in round {round}"
            );
        }
    }
}

#[test]
fn engines_build_under_every_net_profile() {
    // Only SSS consumes the profile today, but the factory must accept any
    // combination without panicking.
    let profiles = [
        NetProfile::Instant,
        NetProfile::Uniform {
            base: std::time::Duration::from_micros(10),
            jitter: std::time::Duration::from_micros(5),
        },
    ];
    for profile in profiles {
        let engine = EngineKind::Sss.build(2, 1, profile);
        let mut session = engine.session(0);
        assert!(session
            .run_update(&[], &[(Key::new("p"), Value::from_u64(1))])
            .is_committed());
        assert!(session.run_read_only(&[Key::new("p")]).is_committed());
    }
}
