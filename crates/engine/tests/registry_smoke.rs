//! Registry smoke test: every engine the registry knows about boots a
//! 3-node cluster through the factory, commits one update and one read-only
//! transaction, and SSS's read-only path never aborts (the paper's headline
//! property).

use sss_engine::{EngineKind, EngineTuning, NetProfile, TxnOutcome};
use sss_storage::{Key, Value};

#[test]
fn every_engine_kind_builds_and_commits_through_the_factory() {
    for kind in EngineKind::ALL {
        let engine = kind.build(3, 2, NetProfile::Instant);
        assert_eq!(engine.name(), kind.label(), "registry label mismatch");
        assert_eq!(engine.nodes(), 3, "{kind}: wrong cluster size");

        let mut session = engine.session(0);
        let writes = vec![
            (Key::new("smoke-a"), Value::from_u64(1)),
            (Key::new("smoke-b"), Value::from_u64(2)),
        ];
        // A single sequential client: the update may only abort through
        // engine bugs, not contention — but allow bounded retries for
        // engines whose commit path can time out spuriously.
        let mut update_committed = false;
        for _ in 0..16 {
            if session.run_update(&[], &writes).is_committed() {
                update_committed = true;
                break;
            }
        }
        assert!(
            update_committed,
            "{kind}: update transaction never committed"
        );

        let read_keys = vec![Key::new("smoke-a"), Key::new("smoke-b")];
        let outcome = session.run_read_only(&read_keys);
        assert!(
            outcome.is_committed(),
            "{kind}: read-only transaction aborted in a quiescent cluster"
        );
    }
}

#[test]
fn sss_read_only_transactions_never_abort_through_the_registry() {
    let engine = EngineKind::Sss.build(3, 2, NetProfile::Instant);
    let mut writer = engine.session(0);
    assert!(writer
        .run_update(&[], &[(Key::new("ro"), Value::from_u64(0))])
        .is_committed());

    // Abort-freedom is unconditional for SSS read-only transactions: check
    // it from every node, interleaved with writes.
    for round in 0..10u64 {
        assert!(writer
            .run_update(&[], &[(Key::new("ro"), Value::from_u64(round))])
            .is_committed());
        for node in 0..engine.nodes() {
            let mut reader = engine.session(node);
            let outcome = reader.run_read_only(&[Key::new("ro")]);
            assert!(
                matches!(outcome, TxnOutcome::Committed { .. }),
                "SSS read-only aborted on node {node} in round {round}"
            );
        }
    }
}

#[test]
fn every_engine_honours_the_storage_shard_tuning() {
    for kind in EngineKind::ALL {
        for shards in [1usize, 4] {
            let engine = kind.build_tuned(
                2,
                1,
                NetProfile::Instant,
                EngineTuning::with_storage_shards(shards),
                None,
            );
            let mut session = engine.session(0);
            assert!(
                session
                    .run_update(&[], &[(Key::new("t"), Value::from_u64(7))])
                    .is_committed(),
                "{kind} with {shards} shard(s) failed to commit"
            );
            assert!(session.run_read_only(&[Key::new("t")]).is_committed());
            let stats = engine
                .storage_stats()
                .unwrap_or_else(|| panic!("{kind} must expose storage stats"));
            // The arity is rounded up to a power of two and visible in the
            // per-shard breakdown of whichever store the engine runs (the
            // cluster aggregate sums node shards element-wise by index).
            let arity = shards.next_power_of_two();
            if let Some(mv) = &stats.mv {
                assert_eq!(mv.per_shard.len(), arity, "{kind}: mv arity");
                assert!(mv.installed_versions > 0);
            }
            if let Some(sv) = &stats.sv {
                assert_eq!(sv.per_shard.len(), arity, "{kind}: sv arity");
                assert!(sv.writes > 0);
            }
            assert!(
                engine.mailbox_totals().is_some(),
                "{kind} must expose mailbox totals"
            );
        }
    }
}

#[test]
fn engines_build_under_every_net_profile() {
    // Only SSS consumes the profile today, but the factory must accept any
    // combination without panicking.
    let profiles = [
        NetProfile::Instant,
        NetProfile::Uniform {
            base: std::time::Duration::from_micros(10),
            jitter: std::time::Duration::from_micros(5),
        },
    ];
    for profile in profiles {
        let engine = EngineKind::Sss.build(2, 1, profile);
        let mut session = engine.session(0);
        assert!(session
            .run_update(&[], &[(Key::new("p"), Value::from_u64(1))])
            .is_committed());
        assert!(session.run_read_only(&[Key::new("p")]).is_committed());
    }
}
