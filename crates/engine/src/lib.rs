//! # The SSS engine layer
//!
//! Every system evaluated by the paper — SSS itself (§III) and the three
//! competitors (§V: 2PC-baseline, Walter-style PSI, ROCOCO-style) — plugs in
//! behind this crate. It owns:
//!
//! * the **trait surface** an engine exposes to the rest of the workspace:
//!   [`TransactionEngine`], [`EngineSession`] and [`TxnOutcome`];
//! * the **registry**: [`EngineKind`] enumerates the engines and
//!   [`EngineKind::build`] constructs any of them behind a
//!   `Box<dyn TransactionEngine>`, parameterized only by node count,
//!   replication degree and a [`NetProfile`];
//!   [`EngineKind::build_faulted`] / [`EngineKind::build_with_injector`]
//!   additionally place the engine under an `sss-faults` [`FaultPlan`];
//! * the **trait bindings** that hook each engine's adapter (which lives in
//!   the crate owning that engine: `sss-core` ships the SSS adapter,
//!   `sss-baselines` ships the 2PC/Walter/ROCOCO adapters) onto the trait.
//!
//! ## Layering
//!
//! The adapter state and transaction-execution logic live *with the engine*
//! (`sss_core::adapter`, `sss_baselines::adapters`); this crate sits above
//! both and contributes only the trait impls and the factory. That keeps the
//! dependency graph acyclic — the engine crates know nothing about the
//! registry — while still giving every consumer (`sss-workload`'s driver,
//! `sss-bench`'s figure sweeps, the examples and the integration tests) a
//! single construction path:
//!
//! ```rust
//! use sss_engine::{EngineKind, NetProfile};
//!
//! let engine = EngineKind::Sss.build(3, 2, NetProfile::Instant);
//! let mut session = engine.session(0);
//! let outcome = session.run_update(&[], &[("k".into(), b"v".to_vec().into())]);
//! assert!(outcome.is_committed());
//! ```

mod bindings;
mod profile;
mod registry;
mod traits;

pub use profile::NetProfile;
pub use registry::{EngineKind, EngineTuning, ParseEngineKindError};
pub use traits::{EngineSession, TransactionEngine, TxnOutcome};

pub use sss_core::DEFAULT_CONFIRM_EPOCH;
pub use sss_faults::{FaultInjector, FaultPlan};
pub use sss_net::{MailboxStats, DEFAULT_DELIVERY_BATCH, MESSAGE_KIND_SLOTS};
pub use sss_obs::{
    chrome_trace_json, Histogram, MetricsRegistry, MetricsSnapshot, NodeLiveness, ObsHub, Phase,
    TraceSpan, WatchdogConfig, WatchdogCore, WatchdogVerdict,
};
pub use sss_sim::SimRuntime;
pub use sss_storage::StorageStats;
pub use sss_vclock::runtime::SchedulerHandle;
