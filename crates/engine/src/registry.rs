//! The engine registry: one construction path for every engine.

use std::str::FromStr;
use std::sync::Arc;

use sss_baselines::adapters::{RococoEngine, TwoPcEngine, WalterEngine};
use sss_baselines::rococo::RococoConfig;
use sss_baselines::twopc::TwoPcConfig;
use sss_baselines::walter::WalterConfig;
use sss_core::adapter::SssEngine;
use sss_core::SssConfig;
use sss_faults::{FaultInjector, FaultPlan};
use sss_sim::SimRuntime;
use sss_vclock::runtime::SchedulerHandle;

use crate::profile::NetProfile;
use crate::traits::TransactionEngine;

/// Engine-independent tuning knobs threaded through the registry into each
/// engine's own configuration type.
///
/// Every field defaults to "engine decides": `EngineTuning::default()`
/// reproduces exactly what [`EngineKind::build`] constructs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTuning {
    /// Shard arity of every node's storage structures (stores and lock
    /// tables); `None` keeps each engine's default
    /// (`sss_storage::DEFAULT_SHARDS`). Rounded up to a power of two.
    pub storage_shards: Option<usize>,
    /// Messages a node worker drains from its mailbox per wakeup; `None`
    /// keeps each engine's default (`sss_net::DEFAULT_DELIVERY_BATCH`).
    /// Clamped to at least 1; batch size 1 reproduces
    /// one-message-per-wakeup delivery.
    pub delivery_batch: Option<usize>,
    /// Epoch window of SSS's grouped external-commit confirmation: up to
    /// this many update transactions share one `ConfirmExternal` round.
    /// `Some(w)` with `w <= 1` disables grouping (per-transaction rounds);
    /// `None` keeps the engine's default
    /// (`sss_core::DEFAULT_CONFIRM_EPOCH`). Ignored by the baselines.
    pub confirm_epoch: Option<usize>,
    /// Whether SSS piggybacks `ReleaseExternal`/`Remove` traffic on grouped
    /// confirmation rounds; `None` keeps the engine's default (enabled).
    /// Ignored by the baselines.
    pub piggyback: Option<bool>,
    /// Whether the registry attaches an observability hub
    /// ([`sss_obs::ObsHub`]) to the engine: per-transaction phase tracing,
    /// per-phase latency histograms and per-node trace rings. Off by
    /// default — tracing-off engines pay one branch per instrumentation
    /// site. Retrieve the hub through
    /// [`TransactionEngine::observability`](crate::TransactionEngine::observability).
    pub observability: bool,
}

impl EngineTuning {
    /// Tuning that only overrides the storage shard arity.
    pub fn with_storage_shards(shards: usize) -> Self {
        EngineTuning {
            storage_shards: Some(shards),
            ..EngineTuning::default()
        }
    }

    /// Tuning that only overrides the per-wakeup delivery batch size.
    pub fn with_delivery_batch(batch: usize) -> Self {
        EngineTuning {
            delivery_batch: Some(batch),
            ..EngineTuning::default()
        }
    }

    /// Sets the per-wakeup delivery batch size, keeping other knobs.
    pub fn delivery_batch(mut self, batch: usize) -> Self {
        self.delivery_batch = Some(batch);
        self
    }

    /// Sets SSS's grouped-confirmation epoch window (`<= 1` disables
    /// grouping), keeping other knobs.
    pub fn confirm_epoch(mut self, window: usize) -> Self {
        self.confirm_epoch = Some(window);
        self
    }

    /// Enables or disables SSS's release/remove piggybacking, keeping other
    /// knobs.
    pub fn piggyback(mut self, enabled: bool) -> Self {
        self.piggyback = Some(enabled);
        self
    }

    /// Enables or disables phase tracing / observability, keeping other
    /// knobs.
    pub fn observability(mut self, enabled: bool) -> Self {
        self.observability = enabled;
        self
    }
}

/// Which engine an experiment runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The SSS protocol (this paper).
    Sss,
    /// The 2PC-baseline.
    TwoPc,
    /// The Walter-style PSI engine.
    Walter,
    /// The ROCOCO-style engine.
    Rococo,
}

impl EngineKind {
    /// Every engine the registry can build, in the paper's presentation
    /// order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Sss,
        EngineKind::TwoPc,
        EngineKind::Walter,
        EngineKind::Rococo,
    ];

    /// Display name used in tables (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Sss => "SSS",
            EngineKind::TwoPc => "2PC",
            EngineKind::Walter => "Walter",
            EngineKind::Rococo => "ROCOCO",
        }
    }

    /// Builds this engine on a cluster of `nodes` nodes.
    ///
    /// `replication` is the number of replicas per key; the ROCOCO engine
    /// ignores it (the paper's comparison always runs ROCOCO without
    /// replication). `net_profile` selects the message-delay model; only
    /// message-passing engines consume it (see [`NetProfile`]).
    ///
    /// This factory is the only way the rest of the workspace constructs an
    /// engine — the workload driver, the figure sweeps, the examples and
    /// the integration tests all go through it, so adding an engine means
    /// adding a variant here and an adapter in the crate that owns it.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or the engine fails to boot (worker spawn
    /// failure).
    pub fn build(
        &self,
        nodes: usize,
        replication: usize,
        net_profile: NetProfile,
    ) -> Box<dyn TransactionEngine> {
        self.build_with_injector(nodes, replication, net_profile, None)
    }

    /// [`EngineKind::build`] under a [`FaultPlan`]: the plan is armed
    /// immediately, so its scheduled windows are measured from the moment
    /// the engine boots.
    ///
    /// Every engine runs on the `sss-net` transport, so the plan's faults
    /// (delays, reordering, duplication, partitions, pauses) apply to SSS
    /// and to all three baselines alike.
    pub fn build_faulted(
        &self,
        nodes: usize,
        replication: usize,
        net_profile: NetProfile,
        faults: FaultPlan,
    ) -> Box<dyn TransactionEngine> {
        let injector = FaultInjector::new(faults);
        let engine = self.build_with_injector(nodes, replication, net_profile, Some(&injector));
        injector.arm();
        engine
    }

    /// [`EngineKind::build`] under a caller-owned [`FaultInjector`].
    ///
    /// The injector is **not** armed: the caller keeps the handle and arms
    /// it once the warm-up (e.g. key-space population) is done, so the
    /// plan's scheduled windows cover the measured phase. The injector is
    /// interposed on the engine's transport and attached to its per-node
    /// pause gates, for the baselines just like for SSS.
    pub fn build_with_injector(
        &self,
        nodes: usize,
        replication: usize,
        net_profile: NetProfile,
        injector: Option<&Arc<FaultInjector>>,
    ) -> Box<dyn TransactionEngine> {
        self.build_tuned(
            nodes,
            replication,
            net_profile,
            EngineTuning::default(),
            injector,
        )
    }

    /// [`EngineKind::build_with_injector`] with explicit [`EngineTuning`]:
    /// the registry threads the engine-independent knobs (currently the
    /// storage shard arity) into each engine's own configuration type, so
    /// harnesses can sweep them without knowing any engine's config struct.
    pub fn build_tuned(
        &self,
        nodes: usize,
        replication: usize,
        net_profile: NetProfile,
        tuning: EngineTuning,
        injector: Option<&Arc<FaultInjector>>,
    ) -> Box<dyn TransactionEngine> {
        self.build_tuned_on(nodes, replication, net_profile, tuning, injector, None)
    }

    /// Builds this engine under a deterministic-simulation scheduler: one
    /// call creates the simulator (seeded with `seed`) and the engine wired
    /// to it. Drive work through [`SimRuntime::block_on`]; the engine's
    /// message delivery, worker execution and protocol timeouts all move in
    /// virtual time.
    pub fn build_sim(
        &self,
        nodes: usize,
        replication: usize,
        net_profile: NetProfile,
        seed: u64,
    ) -> (Arc<SimRuntime>, Box<dyn TransactionEngine>) {
        let sim = SimRuntime::new(seed);
        let handle = sim.handle();
        let engine = self.build_tuned_on(
            nodes,
            replication,
            net_profile,
            EngineTuning::default(),
            None,
            Some(&handle),
        );
        (sim, engine)
    }

    /// [`EngineKind::build_tuned`] with an optional simulation scheduler:
    /// when given, the engine's transport delivers messages as virtual-time
    /// events, its node workers run as cooperative simulation tasks, and
    /// any fault injector's pause windows are scheduled on the virtual
    /// clock.
    pub fn build_tuned_on(
        &self,
        nodes: usize,
        replication: usize,
        net_profile: NetProfile,
        tuning: EngineTuning,
        injector: Option<&Arc<FaultInjector>>,
        scheduler: Option<&SchedulerHandle>,
    ) -> Box<dyn TransactionEngine> {
        if let (Some(injector), Some(scheduler)) = (injector, scheduler) {
            injector.set_scheduler(Arc::clone(scheduler));
        }
        let interposer =
            |i: &&Arc<FaultInjector>| Arc::clone(*i) as Arc<dyn sss_net::FaultInterposer>;
        // One hub per engine instance: every session and node of this
        // engine records into it, and harnesses retrieve it back through
        // `TransactionEngine::observability`.
        let hub = tuning.observability.then(|| sss_obs::ObsHub::new(nodes));
        match self {
            EngineKind::Sss => {
                let mut config = SssConfig::new(nodes)
                    .replication(replication)
                    .latency(net_profile.latency_model());
                if let Some(shards) = tuning.storage_shards {
                    config = config.storage_shards(shards);
                }
                if let Some(batch) = tuning.delivery_batch {
                    config = config.delivery_batch(batch);
                }
                if let Some(window) = tuning.confirm_epoch {
                    config = config.confirm_epoch_max(window);
                }
                if let Some(enabled) = tuning.piggyback {
                    config = config.piggyback(enabled);
                }
                if let Some(hub) = hub {
                    config = config.observability(hub);
                }
                if let Some(injector) = injector {
                    config = config.fault_injector(Arc::clone(injector));
                }
                if let Some(scheduler) = scheduler {
                    config = config.scheduler(Arc::clone(scheduler));
                }
                Box::new(SssEngine::with_config(config))
            }
            EngineKind::TwoPc => {
                let mut config = TwoPcConfig::new(nodes).replication(replication);
                if let Some(shards) = tuning.storage_shards {
                    config = config.storage_shards(shards);
                }
                if let Some(batch) = tuning.delivery_batch {
                    config = config.delivery_batch(batch);
                }
                if let Some(hub) = hub {
                    config = config.observability(hub);
                }
                if let Some(scheduler) = scheduler {
                    config = config.scheduler(Arc::clone(scheduler));
                }
                let engine = TwoPcEngine::with_config(config, injector.as_ref().map(interposer));
                if let Some(injector) = injector {
                    injector.attach_pause_controls(engine.pause_controls());
                }
                Box::new(engine)
            }
            EngineKind::Walter => {
                let mut config = WalterConfig::new(nodes).replication(replication);
                if let Some(shards) = tuning.storage_shards {
                    config = config.storage_shards(shards);
                }
                if let Some(batch) = tuning.delivery_batch {
                    config = config.delivery_batch(batch);
                }
                if let Some(hub) = hub {
                    config = config.observability(hub);
                }
                if let Some(scheduler) = scheduler {
                    config = config.scheduler(Arc::clone(scheduler));
                }
                let engine = WalterEngine::with_config(config, injector.as_ref().map(interposer));
                if let Some(injector) = injector {
                    injector.attach_pause_controls(engine.pause_controls());
                }
                Box::new(engine)
            }
            EngineKind::Rococo => {
                let mut config = RococoConfig::new(nodes);
                if let Some(shards) = tuning.storage_shards {
                    config = config.storage_shards(shards);
                }
                if let Some(batch) = tuning.delivery_batch {
                    config = config.delivery_batch(batch);
                }
                if let Some(hub) = hub {
                    config = config.observability(hub);
                }
                if let Some(scheduler) = scheduler {
                    config = config.scheduler(Arc::clone(scheduler));
                }
                let engine = RococoEngine::with_config(config, injector.as_ref().map(interposer));
                if let Some(injector) = injector {
                    injector.attach_pause_controls(engine.pause_controls());
                }
                Box::new(engine)
            }
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown engine name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineKindError {
    input: String,
}

impl std::fmt::Display for ParseEngineKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown engine {:?} (expected one of: sss, 2pc, walter, rococo)",
            self.input
        )
    }
}

impl std::error::Error for ParseEngineKindError {}

impl FromStr for EngineKind {
    type Err = ParseEngineKindError;

    /// Parses the names used by the paper's legends, case-insensitively
    /// ("sss", "2pc" or "twopc", "walter", "rococo").
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sss" => Ok(EngineKind::Sss),
            "2pc" | "twopc" | "2pc-baseline" => Ok(EngineKind::TwoPc),
            "walter" => Ok(EngineKind::Walter),
            "rococo" => Ok(EngineKind::Rococo),
            _ => Err(ParseEngineKindError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_labels() {
        assert_eq!(EngineKind::Sss.label(), "SSS");
        assert_eq!(EngineKind::TwoPc.label(), "2PC");
        assert_eq!(EngineKind::Walter.label(), "Walter");
        assert_eq!(EngineKind::Rococo.label(), "ROCOCO");
        assert_eq!(EngineKind::ALL.len(), 4);
    }

    #[test]
    fn engine_names_parse() {
        assert_eq!("sss".parse(), Ok(EngineKind::Sss));
        assert_eq!("2PC".parse(), Ok(EngineKind::TwoPc));
        assert_eq!("Walter".parse(), Ok(EngineKind::Walter));
        assert_eq!("ROCOCO".parse(), Ok(EngineKind::Rococo));
        assert!("spanner".parse::<EngineKind>().is_err());
    }
}
