//! The engine registry: one construction path for every engine.

use std::str::FromStr;

use sss_baselines::adapters::{RococoEngine, TwoPcEngine, WalterEngine};
use sss_core::adapter::SssEngine;
use sss_core::SssConfig;

use crate::profile::NetProfile;
use crate::traits::TransactionEngine;

/// Which engine an experiment runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The SSS protocol (this paper).
    Sss,
    /// The 2PC-baseline.
    TwoPc,
    /// The Walter-style PSI engine.
    Walter,
    /// The ROCOCO-style engine.
    Rococo,
}

impl EngineKind {
    /// Every engine the registry can build, in the paper's presentation
    /// order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Sss,
        EngineKind::TwoPc,
        EngineKind::Walter,
        EngineKind::Rococo,
    ];

    /// Display name used in tables (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Sss => "SSS",
            EngineKind::TwoPc => "2PC",
            EngineKind::Walter => "Walter",
            EngineKind::Rococo => "ROCOCO",
        }
    }

    /// Builds this engine on a cluster of `nodes` nodes.
    ///
    /// `replication` is the number of replicas per key; the ROCOCO engine
    /// ignores it (the paper's comparison always runs ROCOCO without
    /// replication). `net_profile` selects the message-delay model; only
    /// message-passing engines consume it (see [`NetProfile`]).
    ///
    /// This factory is the only way the rest of the workspace constructs an
    /// engine — the workload driver, the figure sweeps, the examples and
    /// the integration tests all go through it, so adding an engine means
    /// adding a variant here and an adapter in the crate that owns it.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or the engine fails to boot (worker spawn
    /// failure).
    pub fn build(
        &self,
        nodes: usize,
        replication: usize,
        net_profile: NetProfile,
    ) -> Box<dyn TransactionEngine> {
        match self {
            EngineKind::Sss => Box::new(SssEngine::with_config(
                SssConfig::new(nodes)
                    .replication(replication)
                    .latency(net_profile.latency_model()),
            )),
            EngineKind::TwoPc => Box::new(TwoPcEngine::start(nodes, replication)),
            EngineKind::Walter => Box::new(WalterEngine::start(nodes, replication)),
            EngineKind::Rococo => Box::new(RococoEngine::start(nodes)),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown engine name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineKindError {
    input: String,
}

impl std::fmt::Display for ParseEngineKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown engine {:?} (expected one of: sss, 2pc, walter, rococo)",
            self.input
        )
    }
}

impl std::error::Error for ParseEngineKindError {}

impl FromStr for EngineKind {
    type Err = ParseEngineKindError;

    /// Parses the names used by the paper's legends, case-insensitively
    /// ("sss", "2pc" or "twopc", "walter", "rococo").
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sss" => Ok(EngineKind::Sss),
            "2pc" | "twopc" | "2pc-baseline" => Ok(EngineKind::TwoPc),
            "walter" => Ok(EngineKind::Walter),
            "rococo" => Ok(EngineKind::Rococo),
            _ => Err(ParseEngineKindError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_labels() {
        assert_eq!(EngineKind::Sss.label(), "SSS");
        assert_eq!(EngineKind::TwoPc.label(), "2PC");
        assert_eq!(EngineKind::Walter.label(), "Walter");
        assert_eq!(EngineKind::Rococo.label(), "ROCOCO");
        assert_eq!(EngineKind::ALL.len(), 4);
    }

    #[test]
    fn engine_names_parse() {
        assert_eq!("sss".parse(), Ok(EngineKind::Sss));
        assert_eq!("2PC".parse(), Ok(EngineKind::TwoPc));
        assert_eq!("Walter".parse(), Ok(EngineKind::Walter));
        assert_eq!("ROCOCO".parse(), Ok(EngineKind::Rococo));
        assert!("spanner".parse::<EngineKind>().is_err());
    }
}
