//! The trait surface every engine exposes to drivers and tests.

use std::sync::Arc;
use std::time::Duration;

use sss_storage::{Key, Value};

/// Outcome of one transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The transaction committed.
    Committed {
        /// Latency from begin to the client-visible (external) completion.
        latency: Duration,
        /// For engines with a delayed client response (SSS), the part of the
        /// latency spent before the internal commit; equal to `latency` for
        /// engines without the distinction.
        internal_latency: Duration,
    },
    /// The transaction aborted due to concurrency and may be retried.
    Aborted,
}

impl TxnOutcome {
    /// `true` if the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed { .. })
    }

    /// Builds an outcome from the adapter convention used by the engine
    /// crates: `Some((latency, internal_latency))` for a commit, `None` for
    /// an abort.
    pub fn from_timings(timings: Option<(Duration, Duration)>) -> Self {
        match timings {
            Some((latency, internal_latency)) => TxnOutcome::Committed {
                latency,
                internal_latency,
            },
            None => TxnOutcome::Aborted,
        }
    }
}

/// A per-client handle bound to one node of the system under test.
///
/// Implementations execute whole transactions so that every engine keeps its
/// native client API (the driver does not need to micro-manage reads and
/// writes).
pub trait EngineSession: Send {
    /// Executes one update transaction that reads every key in `read_keys`
    /// and writes `writes`.
    fn run_update(&mut self, read_keys: &[Key], writes: &[(Key, Value)]) -> TxnOutcome;

    /// Executes one read-only transaction over `read_keys`.
    fn run_read_only(&mut self, read_keys: &[Key]) -> TxnOutcome;

    /// Like [`EngineSession::run_update`], but also returns the value each
    /// read observed (parallel to `read_keys`), so a history recorder can
    /// attribute observations to writers. Engines that cannot report read
    /// values fall back to unattributed (`None`) observations — histories
    /// stay checkable, just with less evidence.
    fn run_update_observed(
        &mut self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> (TxnOutcome, Vec<Option<Value>>) {
        let outcome = self.run_update(read_keys, writes);
        (outcome, vec![None; read_keys.len()])
    }

    /// Like [`EngineSession::run_read_only`], but also returns the observed
    /// values (parallel to `read_keys`).
    fn run_read_only_observed(&mut self, read_keys: &[Key]) -> (TxnOutcome, Vec<Option<Value>>) {
        let outcome = self.run_read_only(read_keys);
        (outcome, vec![None; read_keys.len()])
    }
}

impl<S: EngineSession + ?Sized> EngineSession for Box<S> {
    fn run_update(&mut self, read_keys: &[Key], writes: &[(Key, Value)]) -> TxnOutcome {
        (**self).run_update(read_keys, writes)
    }

    fn run_read_only(&mut self, read_keys: &[Key]) -> TxnOutcome {
        (**self).run_read_only(read_keys)
    }

    fn run_update_observed(
        &mut self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> (TxnOutcome, Vec<Option<Value>>) {
        (**self).run_update_observed(read_keys, writes)
    }

    fn run_read_only_observed(&mut self, read_keys: &[Key]) -> (TxnOutcome, Vec<Option<Value>>) {
        (**self).run_read_only_observed(read_keys)
    }
}

/// A transactional key-value store that can be benchmarked by the driver.
pub trait TransactionEngine: Send + Sync {
    /// Human-readable engine name used in reports ("SSS", "2PC", ...).
    fn name(&self) -> &str;

    /// Number of nodes the engine is running.
    fn nodes(&self) -> usize;

    /// Opens a client session colocated with `node`.
    fn session(&self, node: usize) -> Box<dyn EngineSession>;

    /// Per-node liveness diagnostics (mailbox depths, queue entries, pause
    /// state), if the engine exposes them. Stuck-run detectors print this
    /// instead of hanging silently; `None` means the engine has no
    /// introspection surface.
    fn diagnostics(&self) -> Option<String> {
        None
    }

    /// Per-node liveness classification (alive / paused / crashed), indexed
    /// by node, if the engine exposes it. Watchdogs use this to distinguish
    /// "the fault plan took a node down" from a genuine livelock in stall
    /// reports; `None` means the engine cannot tell.
    fn node_liveness(&self) -> Option<Vec<sss_obs::NodeLiveness>> {
        None
    }

    /// Storage-layer counters summed over the engine's nodes (per-shard
    /// contention breakdowns included), if the engine exposes them. The
    /// counters are monotonic: benchmark harnesses snapshot them at window
    /// boundaries and diff (`StorageStats::diff`) for per-window numbers.
    fn storage_stats(&self) -> Option<sss_storage::StorageStats> {
        None
    }

    /// Mailbox traffic counters summed over the engine's nodes, if the
    /// engine exposes them. Monotonic; diff snapshots for per-window
    /// message accounting.
    fn mailbox_totals(&self) -> Option<sss_net::MailboxStats> {
        None
    }

    /// Labels of the per-kind message counters in
    /// [`sss_net::MailboxStats::per_kind`], indexed by counter slot, if the
    /// engine classifies its traffic. `None` means the per-kind slots are
    /// unattributed and should be ignored.
    fn message_kind_labels(&self) -> Option<&'static [&'static str]> {
        None
    }

    /// The observability hub the engine was built with, if tracing is on:
    /// per-phase latency histograms, trace rings and the metrics registry
    /// (see [`sss_obs::ObsHub`]). `None` when the engine was built without
    /// observability or does not support it.
    fn observability(&self) -> Option<Arc<sss_obs::ObsHub>> {
        None
    }
}

impl<E: TransactionEngine + ?Sized> TransactionEngine for Box<E> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn nodes(&self) -> usize {
        (**self).nodes()
    }

    fn session(&self, node: usize) -> Box<dyn EngineSession> {
        (**self).session(node)
    }

    fn diagnostics(&self) -> Option<String> {
        (**self).diagnostics()
    }

    fn node_liveness(&self) -> Option<Vec<sss_obs::NodeLiveness>> {
        (**self).node_liveness()
    }

    fn storage_stats(&self) -> Option<sss_storage::StorageStats> {
        (**self).storage_stats()
    }

    fn mailbox_totals(&self) -> Option<sss_net::MailboxStats> {
        (**self).mailbox_totals()
    }

    fn message_kind_labels(&self) -> Option<&'static [&'static str]> {
        (**self).message_kind_labels()
    }

    fn observability(&self) -> Option<Arc<sss_obs::ObsHub>> {
        (**self).observability()
    }
}

impl<E: TransactionEngine + Send + Sync + ?Sized> TransactionEngine for Arc<E> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn nodes(&self) -> usize {
        (**self).nodes()
    }

    fn session(&self, node: usize) -> Box<dyn EngineSession> {
        (**self).session(node)
    }

    fn diagnostics(&self) -> Option<String> {
        (**self).diagnostics()
    }

    fn node_liveness(&self) -> Option<Vec<sss_obs::NodeLiveness>> {
        (**self).node_liveness()
    }

    fn storage_stats(&self) -> Option<sss_storage::StorageStats> {
        (**self).storage_stats()
    }

    fn mailbox_totals(&self) -> Option<sss_net::MailboxStats> {
        (**self).mailbox_totals()
    }

    fn message_kind_labels(&self) -> Option<&'static [&'static str]> {
        (**self).message_kind_labels()
    }

    fn observability(&self) -> Option<Arc<sss_obs::ObsHub>> {
        (**self).observability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        let committed = TxnOutcome::Committed {
            latency: Duration::from_millis(1),
            internal_latency: Duration::from_micros(700),
        };
        assert!(committed.is_committed());
        assert!(!TxnOutcome::Aborted.is_committed());
    }

    #[test]
    fn outcome_from_adapter_timings() {
        assert_eq!(TxnOutcome::from_timings(None), TxnOutcome::Aborted);
        assert_eq!(
            TxnOutcome::from_timings(Some((Duration::from_millis(2), Duration::from_millis(1)))),
            TxnOutcome::Committed {
                latency: Duration::from_millis(2),
                internal_latency: Duration::from_millis(1),
            }
        );
    }
}
