//! Network profiles applied by the registry when it builds an engine.

use std::time::Duration;

use sss_net::LatencyModel;

/// One-way message-delay profile of the cluster an engine is built on.
///
/// Only SSS consumes the *latency* part today: it injects the profile's
/// delay into every message. The baseline engines (2PC, Walter, ROCOCO)
/// run on the same `sss-net` transport but accept the profile for
/// interface uniformity without applying its latency — the paper's
/// comparison likewise runs every engine on the same (fast) interconnect.
///
/// The profile describes the network's *steady-state* delay; adversarial
/// behaviour (delay spikes, reordering, duplication, partitions, pauses)
/// is layered on top by an `sss-faults` fault plan via
/// [`EngineKind::build_faulted`](crate::EngineKind::build_faulted) — each
/// message's total delay is the profile sample plus the fault plan's extra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetProfile {
    /// Messages are delivered immediately (the benchmark default, so that
    /// relative engine performance is dominated by protocol behaviour).
    #[default]
    Instant,
    /// The paper's test bed: ~20µs one-way delay with small jitter.
    CloudlabLike,
    /// A uniform delay of `base` plus up to `jitter`.
    Uniform {
        /// Minimum one-way delay applied to every message.
        base: Duration,
        /// Maximum additional uniformly distributed delay.
        jitter: Duration,
    },
}

impl NetProfile {
    /// The latency model implementing this profile.
    pub fn latency_model(&self) -> LatencyModel {
        match self {
            NetProfile::Instant => LatencyModel::ZERO,
            NetProfile::CloudlabLike => LatencyModel::cloudlab_like(),
            NetProfile::Uniform { base, jitter } => LatencyModel::new(*base, *jitter),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_map_to_latency_models() {
        assert!(NetProfile::Instant.latency_model().is_zero());
        assert!(!NetProfile::CloudlabLike.latency_model().is_zero());
        let custom = NetProfile::Uniform {
            base: Duration::from_micros(5),
            jitter: Duration::ZERO,
        };
        assert_eq!(custom.latency_model().base, Duration::from_micros(5));
        assert_eq!(NetProfile::default(), NetProfile::Instant);
    }
}
