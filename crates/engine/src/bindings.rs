//! Trait bindings: hooks each engine's adapter (owned by the engine's own
//! crate) onto the [`TransactionEngine`] / [`EngineSession`] traits.
//!
//! The bindings are deliberately mechanical — every substantive decision
//! (how a transaction executes, what counts as the internal latency) lives
//! in the adapter next to its engine. Implementing the traits *here* rather
//! than in the engine crates keeps the dependency graph acyclic: the engine
//! crates do not know about the engine layer, and this crate can therefore
//! host the [`EngineKind`](crate::EngineKind) factory that constructs all
//! of them.

use sss_baselines::adapters::{
    RococoEngine, RococoEngineSession, TwoPcEngine, TwoPcEngineSession, WalterEngine,
    WalterEngineSession,
};
use sss_core::adapter::{SssEngine, SssEngineSession};

use crate::traits::{EngineSession, TransactionEngine, TxnOutcome};

macro_rules! bind_engine {
    ($engine:ty, $session:ty, $name:literal $(, diagnostics: $diag:expr)? $(, liveness: $liveness:expr)? $(, kinds: $kinds:expr)?) => {
        impl TransactionEngine for $engine {
            fn name(&self) -> &str {
                $name
            }

            fn nodes(&self) -> usize {
                self.node_count()
            }

            fn session(&self, node: usize) -> Box<dyn EngineSession> {
                Box::new(self.open_session(node))
            }

            fn storage_stats(&self) -> Option<sss_storage::StorageStats> {
                Some(self.cluster().storage_stats())
            }

            fn mailbox_totals(&self) -> Option<sss_net::MailboxStats> {
                Some(self.cluster().mailbox_totals())
            }

            fn observability(&self) -> Option<std::sync::Arc<sss_obs::ObsHub>> {
                self.cluster().observability()
            }

            $(
                fn diagnostics(&self) -> Option<String> {
                    #[allow(clippy::redundant_closure_call)]
                    Some(($diag)(self))
                }
            )?

            $(
                fn node_liveness(&self) -> Option<Vec<sss_obs::NodeLiveness>> {
                    #[allow(clippy::redundant_closure_call)]
                    Some(($liveness)(self))
                }
            )?

            $(
                fn message_kind_labels(&self) -> Option<&'static [&'static str]> {
                    Some($kinds)
                }
            )?
        }

        impl EngineSession for $session {
            fn run_update(
                &mut self,
                read_keys: &[sss_storage::Key],
                writes: &[(sss_storage::Key, sss_storage::Value)],
            ) -> TxnOutcome {
                TxnOutcome::from_timings(<$session>::run_update(self, read_keys, writes))
            }

            fn run_read_only(&mut self, read_keys: &[sss_storage::Key]) -> TxnOutcome {
                TxnOutcome::from_timings(<$session>::run_read_only(self, read_keys))
            }

            fn run_update_observed(
                &mut self,
                read_keys: &[sss_storage::Key],
                writes: &[(sss_storage::Key, sss_storage::Value)],
            ) -> (TxnOutcome, Vec<Option<sss_storage::Value>>) {
                let (timings, observed) =
                    <$session>::run_update_observed(self, read_keys, writes);
                (TxnOutcome::from_timings(timings), observed)
            }

            fn run_read_only_observed(
                &mut self,
                read_keys: &[sss_storage::Key],
            ) -> (TxnOutcome, Vec<Option<sss_storage::Value>>) {
                let (timings, observed) = <$session>::run_read_only_observed(self, read_keys);
                (TxnOutcome::from_timings(timings), observed)
            }
        }
    };
}

bind_engine!(
    SssEngine,
    SssEngineSession,
    "SSS",
    diagnostics: |engine: &SssEngine| engine.cluster().diagnostics(),
    liveness: |engine: &SssEngine| engine.cluster().node_liveness(),
    kinds: &sss_core::SssMessage::KIND_LABELS
);
bind_engine!(
    TwoPcEngine,
    TwoPcEngineSession,
    "2PC",
    kinds: &sss_baselines::twopc::MESSAGE_KIND_LABELS
);
bind_engine!(
    WalterEngine,
    WalterEngineSession,
    "Walter",
    kinds: &sss_baselines::walter::MESSAGE_KIND_LABELS
);
bind_engine!(
    RococoEngine,
    RococoEngineSession,
    "ROCOCO",
    kinds: &sss_baselines::rococo::MESSAGE_KIND_LABELS
);

#[cfg(test)]
mod tests {
    use super::*;
    use sss_storage::{Key, Value};

    #[test]
    fn bindings_forward_to_the_adapters() {
        let engine = SssEngine::start(2, 1);
        let dynamic: &dyn TransactionEngine = &engine;
        assert_eq!(dynamic.name(), "SSS");
        assert_eq!(dynamic.nodes(), 2);
        let mut session = dynamic.session(0);
        let outcome = session.run_update(&[], &[(Key::new("k"), Value::from_u64(1))]);
        assert!(outcome.is_committed());
        assert!(session.run_read_only(&[Key::new("k")]).is_committed());
    }

    #[test]
    fn observed_reads_report_the_values_seen() {
        let engine = SssEngine::start(2, 1);
        let dynamic: &dyn TransactionEngine = &engine;
        let mut session = dynamic.session(0);
        session.run_update(&[], &[(Key::new("k"), Value::from_u64(7))]);
        let (outcome, observed) = session.run_read_only_observed(&[Key::new("k")]);
        assert!(outcome.is_committed());
        assert_eq!(observed, vec![Some(Value::from_u64(7))]);
        let (outcome, observed) =
            session.run_update_observed(&[Key::new("k")], &[(Key::new("k"), Value::from_u64(8))]);
        assert!(outcome.is_committed());
        assert_eq!(observed, vec![Some(Value::from_u64(7))]);
    }

    #[test]
    fn sss_exposes_diagnostics() {
        let engine = SssEngine::start(2, 1);
        let dynamic: &dyn TransactionEngine = &engine;
        let report = dynamic.diagnostics().expect("SSS has diagnostics");
        assert!(report.contains("node 0"), "unexpected report: {report}");
        assert!(report.contains("mailbox depth="));
    }
}
