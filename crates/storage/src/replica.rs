//! Key placement: the `replicas(k)` lookup function.
//!
//! The paper assumes "the existence of a local look-up function that matches
//! keys with nodes" and supports "a general (partial) replication scheme
//! where keys are allowed to be maintained by any node of the system without
//! predefined partitioning schemes" (§I, §II). We reproduce that with a
//! deterministic hash-based placement: every node computes the same replica
//! set for a key without coordination, and any replication degree from 1
//! (no replication, used for the ROCOCO comparison) to `n` (full
//! replication) is supported.

use std::hash::{Hash, Hasher};

use sss_vclock::NodeId;

use crate::key::Key;

/// Deterministic key → replica-set mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaMap {
    nodes: usize,
    degree: usize,
}

impl ReplicaMap {
    /// Creates a placement over `nodes` nodes with `degree` replicas per key.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero, `degree` is zero, or `degree > nodes`.
    pub fn new(nodes: usize, degree: usize) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        assert!(degree > 0, "replication degree must be at least 1");
        assert!(
            degree <= nodes,
            "replication degree ({degree}) cannot exceed the node count ({nodes})"
        );
        ReplicaMap { nodes, degree }
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Replication degree (replicas per key).
    pub fn degree(&self) -> usize {
        self.degree
    }

    fn primary_index(&self, key: &Key) -> usize {
        // std's SipHash with default keys is deterministic for a given
        // input, which is all we need for a consistent in-process placement.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.as_str().hash(&mut hasher);
        (hasher.finish() % self.nodes as u64) as usize
    }

    /// The primary replica of `key` (first node of its replica set).
    pub fn primary(&self, key: &Key) -> NodeId {
        NodeId(self.primary_index(key))
    }

    /// The full replica set of `key`: `degree` consecutive nodes starting at
    /// the primary (wrapping around the ring).
    pub fn replicas(&self, key: &Key) -> Vec<NodeId> {
        let start = self.primary_index(key);
        (0..self.degree)
            .map(|i| NodeId((start + i) % self.nodes))
            .collect()
    }

    /// `true` if `node` stores `key`.
    pub fn is_replica(&self, node: NodeId, key: &Key) -> bool {
        let start = self.primary_index(key);
        let offset = (node.index() + self.nodes - start) % self.nodes;
        offset < self.degree
    }

    /// Union of the replica sets of `keys`, deduplicated and sorted.
    pub fn replicas_of_all<'a>(&self, keys: impl IntoIterator<Item = &'a Key>) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = keys.into_iter().flat_map(|k| self.replicas(k)).collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_set_has_requested_degree_and_is_deterministic() {
        let map = ReplicaMap::new(5, 2);
        for i in 0..100 {
            let key = Key::new(format!("key{i}"));
            let a = map.replicas(&key);
            let b = map.replicas(&key);
            assert_eq!(a, b);
            assert_eq!(a.len(), 2);
            assert_ne!(a[0], a[1]);
            assert_eq!(a[0], map.primary(&key));
            for node in &a {
                assert!(map.is_replica(*node, &key));
            }
        }
    }

    #[test]
    fn is_replica_rejects_non_members() {
        let map = ReplicaMap::new(4, 1);
        let key = Key::new("solo");
        let replicas = map.replicas(&key);
        assert_eq!(replicas.len(), 1);
        for n in 0..4 {
            assert_eq!(
                map.is_replica(NodeId(n), &key),
                replicas.contains(&NodeId(n))
            );
        }
    }

    #[test]
    fn full_replication_places_keys_everywhere() {
        let map = ReplicaMap::new(3, 3);
        let key = Key::new("any");
        let mut replicas = map.replicas(&key);
        replicas.sort();
        assert_eq!(replicas, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn union_of_replica_sets_is_sorted_and_deduplicated() {
        let map = ReplicaMap::new(6, 2);
        let keys: Vec<Key> = (0..20).map(|i| Key::new(format!("k{i}"))).collect();
        let union = map.replicas_of_all(keys.iter());
        let mut sorted = union.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(union, sorted);
        assert!(union.len() <= 6);
    }

    #[test]
    fn keys_spread_across_nodes() {
        let map = ReplicaMap::new(4, 1);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            let key = Key::new(format!("key{i}"));
            counts[map.primary(&key).index()] += 1;
        }
        // Hash placement should not starve any node.
        for c in counts {
            assert!(c > 100, "placement is badly skewed: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn degree_larger_than_cluster_panics() {
        let _ = ReplicaMap::new(2, 3);
    }

    #[test]
    fn accessors() {
        let map = ReplicaMap::new(7, 3);
        assert_eq!(map.nodes(), 7);
        assert_eq!(map.degree(), 3);
    }
}
