//! Shared/exclusive lock table with bounded acquisition.
//!
//! During the 2PC prepare phase "all keys read/written by T and stored by Ni
//! are locked" (paper §III-B); SSS "uses timeout to prevent deadlock during
//! the commit phase's lock acquisition" (§III-E). The paper's evaluation sets
//! the timeout to 1ms on a cluster whose messages take ~20µs.
//!
//! The table is hash-partitioned into fixed-arity shards, each with its own
//! mutex and condition variable: acquisitions on different shards proceed in
//! parallel, and a release only wakes the waiters parked on its own shard
//! (instead of every waiter in the table). Timeout semantics are per
//! acquisition and unchanged by sharding — a request gives up once its
//! deadline passes, re-checking one final time for a release that raced
//! with the timeout.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use sss_vclock::runtime::{self, SchedulerHandle};

use crate::key::Key;
use crate::shard;
use crate::txn_id::TxnId;

/// Wakes parked simulation tasks after a release, when running under a
/// simulation scheduler (no-op otherwise). The threaded path uses per-shard
/// condvars; the simulated path parks tasks on the scheduler instead.
fn wake_sim() {
    if let Some(scheduler) = runtime::current() {
        scheduler.wake();
    }
}

/// The mode of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Shared (read) lock: compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock: incompatible with everything else.
    Exclusive,
}

#[derive(Debug, Default)]
struct LockEntry {
    exclusive: Option<TxnId>,
    shared: HashSet<TxnId>,
}

impl LockEntry {
    fn is_free(&self) -> bool {
        self.exclusive.is_none() && self.shared.is_empty()
    }

    fn can_grant(&self, txn: TxnId, kind: LockKind) -> bool {
        match kind {
            LockKind::Shared => match self.exclusive {
                // A transaction may read a key it already write-locked.
                Some(owner) => owner == txn,
                None => true,
            },
            LockKind::Exclusive => {
                let exclusive_ok = self.exclusive.map(|o| o == txn).unwrap_or(true);
                let shared_ok = self.shared.is_empty()
                    || (self.shared.len() == 1 && self.shared.contains(&txn));
                exclusive_ok && shared_ok
            }
        }
    }

    fn grant(&mut self, txn: TxnId, kind: LockKind) {
        match kind {
            LockKind::Shared => {
                if self.exclusive != Some(txn) {
                    self.shared.insert(txn);
                }
            }
            LockKind::Exclusive => {
                self.shared.remove(&txn);
                self.exclusive = Some(txn);
            }
        }
    }

    fn release(&mut self, txn: TxnId) -> bool {
        let mut changed = false;
        if self.exclusive == Some(txn) {
            self.exclusive = None;
            changed = true;
        }
        changed |= self.shared.remove(&txn);
        changed
    }
}

/// One hash partition of the table: its own entry map, its own mutex, and
/// its own condition variable (so a release wakes only this shard's
/// waiters).
#[derive(Debug, Default)]
struct LockShard {
    entries: Mutex<HashMap<Key, LockEntry>>,
    released: Condvar,
    /// Requests that could not be granted on first check and had to wait
    /// (monotonic) — the per-shard contention signal of [`LockTableStats`].
    contended: AtomicU64,
}

/// Counters describing lock-table behaviour, used by the evaluation harness
/// to report contention.
///
/// All counters are monotonic; use [`LockTableStats::diff`] to derive
/// per-window numbers from two snapshots.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LockTableStats {
    /// Successfully granted lock requests.
    pub granted: u64,
    /// Requests that gave up after the acquisition timeout.
    pub timeouts: u64,
    /// Requests that could not be granted immediately and had to wait,
    /// across all shards.
    pub contended: u64,
    /// Per-shard breakdown of `contended`, indexed by shard.
    pub per_shard_contended: Vec<u64>,
}

impl LockTableStats {
    /// Counter difference `self - earlier` (entry-wise, saturating), for
    /// per-window reporting.
    pub fn diff(&self, earlier: &LockTableStats) -> LockTableStats {
        LockTableStats {
            granted: self.granted.saturating_sub(earlier.granted),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            contended: self.contended.saturating_sub(earlier.contended),
            per_shard_contended: self
                .per_shard_contended
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    c.saturating_sub(earlier.per_shard_contended.get(i).copied().unwrap_or(0))
                })
                .collect(),
        }
    }

    /// Entry-wise sum with `other` (shards matched by index), used to
    /// aggregate the per-node tables of a cluster.
    pub fn merge(&mut self, other: &LockTableStats) {
        self.granted += other.granted;
        self.timeouts += other.timeouts;
        self.contended += other.contended;
        if self.per_shard_contended.len() < other.per_shard_contended.len() {
            self.per_shard_contended
                .resize(other.per_shard_contended.len(), 0);
        }
        for (mine, theirs) in self
            .per_shard_contended
            .iter_mut()
            .zip(other.per_shard_contended.iter())
        {
            *mine += theirs;
        }
    }
}

/// A per-node lock table with shared/exclusive locks and timeout-bounded
/// acquisition, hash-partitioned into fixed-arity shards.
///
/// The table is internally synchronized; callers must **not** hold other
/// node-level locks while blocking on an acquisition (handlers acquire locks
/// first, then touch protocol state).
#[derive(Debug)]
pub struct LockTable {
    shards: Box<[LockShard]>,
    mask: usize,
    granted: AtomicU64,
    timeouts: AtomicU64,
}

impl Default for LockTable {
    fn default() -> Self {
        LockTable::new()
    }
}

impl LockTable {
    /// Creates an empty lock table with [`shard::DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        LockTable::with_shards(shard::DEFAULT_SHARDS)
    }

    /// Creates an empty table with `shards` shards (rounded up to a power
    /// of two, minimum 1). The arity is fixed for the table's lifetime.
    pub fn with_shards(shards: usize) -> Self {
        let arity = shard::arity(shards);
        LockTable {
            shards: (0..arity).map(|_| LockShard::default()).collect(),
            mask: arity - 1,
            granted: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        }
    }

    /// Number of shards the table was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to (stable across runs; see
    /// [`crate::shard`]).
    pub fn shard_of(&self, key: &Key) -> usize {
        shard::index_for(key, self.mask)
    }

    fn shard(&self, key: &Key) -> &LockShard {
        &self.shards[shard::index_for(key, self.mask)]
    }

    /// Tries to acquire `kind` on `key` for `txn`, waiting at most `timeout`.
    ///
    /// Returns `true` on success. Re-acquiring a lock already held by the
    /// same transaction (including reading a key it already write-locked)
    /// always succeeds immediately.
    pub fn acquire(&self, txn: TxnId, key: &Key, kind: LockKind, timeout: Duration) -> bool {
        if let Some(scheduler) = runtime::current() {
            return self.acquire_sim(&scheduler, txn, key, kind, timeout);
        }
        let deadline = Instant::now() + timeout;
        let shard = self.shard(key);
        let mut entries = shard.entries.lock();
        let mut first_check = true;
        loop {
            let entry = entries.entry(key.clone()).or_default();
            if entry.can_grant(txn, kind) {
                entry.grant(txn, kind);
                self.granted.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            if first_check {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                first_check = false;
            }
            let now = Instant::now();
            if now >= deadline {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if shard
                .released
                .wait_until(&mut entries, deadline)
                .timed_out()
            {
                // Re-check once more before giving up: a release may have
                // raced with the timeout.
                let entry = entries.entry(key.clone()).or_default();
                if entry.can_grant(txn, kind) {
                    entry.grant(txn, kind);
                    self.granted.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
    }

    /// [`LockTable::acquire`] under a simulation scheduler: the waiter
    /// parks as a cooperative task with a virtual-clock deadline, and a
    /// release (which calls [`wake_sim`]) makes it runnable again. Timeout
    /// semantics are identical — the deadline is just virtual.
    fn acquire_sim(
        &self,
        scheduler: &SchedulerHandle,
        txn: TxnId,
        key: &Key,
        kind: LockKind,
        timeout: Duration,
    ) -> bool {
        let deadline = scheduler.now() + timeout;
        let shard = self.shard(key);
        let mut first_check = true;
        loop {
            {
                let mut entries = shard.entries.lock();
                let entry = entries.entry(key.clone()).or_default();
                if entry.can_grant(txn, kind) {
                    entry.grant(txn, kind);
                    self.granted.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
            }
            if first_check {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                first_check = false;
            }
            if scheduler.now() >= deadline {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            scheduler.park(Some(deadline));
        }
    }

    /// Acquires a batch of locks, all-or-nothing.
    ///
    /// Keys are locked in sorted order to keep the acquisition pattern
    /// deterministic; on the first failure all locks already granted to
    /// `txn` by this call chain are released and `false` is returned.
    pub fn acquire_many<'a>(
        &self,
        txn: TxnId,
        requests: impl IntoIterator<Item = (&'a Key, LockKind)>,
        timeout: Duration,
    ) -> bool {
        let mut sorted: Vec<(&Key, LockKind)> = requests.into_iter().collect();
        // Exclusive first for identical keys so that a later shared request
        // on the same key (read-and-written key) is granted reentrantly.
        sorted.sort_by(|a, b| {
            a.0.cmp(b.0).then_with(|| match (a.1, b.1) {
                (LockKind::Exclusive, LockKind::Shared) => std::cmp::Ordering::Less,
                (LockKind::Shared, LockKind::Exclusive) => std::cmp::Ordering::Greater,
                _ => std::cmp::Ordering::Equal,
            })
        });
        let deadline = runtime::now() + timeout;
        for (key, kind) in sorted {
            let remaining = deadline.saturating_duration_since(runtime::now());
            if !self.acquire(txn, key, kind, remaining) {
                self.release_all(txn);
                return false;
            }
        }
        true
    }

    /// Releases every lock held by `txn` on `key`.
    pub fn release(&self, txn: TxnId, key: &Key) {
        let shard = self.shard(key);
        let mut entries = shard.entries.lock();
        if let Some(entry) = entries.get_mut(key) {
            if entry.release(txn) {
                if entry.is_free() {
                    entries.remove(key);
                }
                shard.released.notify_all();
                wake_sim();
            }
        }
    }

    /// Releases every lock held by `txn` on the given keys.
    pub fn release_keys<'a>(&self, txn: TxnId, keys: impl IntoIterator<Item = &'a Key>) {
        for key in keys {
            self.release(txn, key);
        }
    }

    /// Releases every lock held by `txn` anywhere in the table.
    pub fn release_all(&self, txn: TxnId) {
        for shard in self.shards.iter() {
            let mut entries = shard.entries.lock();
            let mut any = false;
            entries.retain(|_, entry| {
                if entry.release(txn) {
                    any = true;
                }
                !entry.is_free()
            });
            if any {
                shard.released.notify_all();
                wake_sim();
            }
        }
    }

    /// `true` if `txn` currently holds a lock of `kind` on `key`.
    pub fn holds(&self, txn: TxnId, key: &Key, kind: LockKind) -> bool {
        let entries = self.shard(key).entries.lock();
        entries
            .get(key)
            .map(|e| match kind {
                LockKind::Shared => e.shared.contains(&txn) || e.exclusive == Some(txn),
                LockKind::Exclusive => e.exclusive == Some(txn),
            })
            .unwrap_or(false)
    }

    /// Number of keys with at least one lock held.
    pub fn locked_keys(&self) -> usize {
        self.shards.iter().map(|s| s.entries.lock().len()).sum()
    }

    /// Counters snapshot, including the per-shard contention breakdown.
    pub fn stats(&self) -> LockTableStats {
        let per_shard_contended: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.contended.load(Ordering::Relaxed))
            .collect();
        LockTableStats {
            granted: self.granted.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            contended: per_shard_contended.iter().sum(),
            per_shard_contended,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_vclock::NodeId;
    use std::sync::Arc;

    const TIMEOUT: Duration = Duration::from_millis(20);

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn shared_locks_are_compatible() {
        let table = LockTable::new();
        let k = Key::new("x");
        assert!(table.acquire(txn(1), &k, LockKind::Shared, TIMEOUT));
        assert!(table.acquire(txn(2), &k, LockKind::Shared, TIMEOUT));
        assert!(table.holds(txn(1), &k, LockKind::Shared));
        assert!(table.holds(txn(2), &k, LockKind::Shared));
        assert_eq!(table.stats().granted, 2);
    }

    #[test]
    fn exclusive_conflicts_with_shared_until_released() {
        let table = LockTable::new();
        let k = Key::new("x");
        assert!(table.acquire(txn(1), &k, LockKind::Shared, TIMEOUT));
        assert!(!table.acquire(txn(2), &k, LockKind::Exclusive, Duration::from_millis(2)));
        let stats = table.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.contended, 1, "the blocked request is counted");
        assert_eq!(
            stats.per_shard_contended[table.shard_of(&k)],
            1,
            "contention is attributed to the key's shard"
        );
        table.release(txn(1), &k);
        assert!(table.acquire(txn(2), &k, LockKind::Exclusive, TIMEOUT));
        assert!(table.holds(txn(2), &k, LockKind::Exclusive));
    }

    #[test]
    fn reentrant_shared_on_own_exclusive() {
        let table = LockTable::new();
        let k = Key::new("x");
        assert!(table.acquire(txn(1), &k, LockKind::Exclusive, TIMEOUT));
        assert!(table.acquire(txn(1), &k, LockKind::Shared, TIMEOUT));
        assert!(table.holds(txn(1), &k, LockKind::Exclusive));
        // A single release of the transaction clears both.
        table.release_all(txn(1));
        assert!(!table.holds(txn(1), &k, LockKind::Exclusive));
        assert_eq!(table.locked_keys(), 0);
    }

    #[test]
    fn upgrade_succeeds_only_for_sole_reader() {
        let table = LockTable::new();
        let k = Key::new("x");
        assert!(table.acquire(txn(1), &k, LockKind::Shared, TIMEOUT));
        assert!(table.acquire(txn(1), &k, LockKind::Exclusive, TIMEOUT));
        table.release_all(txn(1));

        assert!(table.acquire(txn(1), &k, LockKind::Shared, TIMEOUT));
        assert!(table.acquire(txn(2), &k, LockKind::Shared, TIMEOUT));
        assert!(!table.acquire(txn(1), &k, LockKind::Exclusive, Duration::from_millis(2)));
    }

    #[test]
    fn acquire_many_is_all_or_nothing() {
        let table = LockTable::new();
        let a = Key::new("a");
        let b = Key::new("b");
        assert!(table.acquire(txn(9), &b, LockKind::Exclusive, TIMEOUT));
        let ok = table.acquire_many(
            txn(1),
            [(&a, LockKind::Exclusive), (&b, LockKind::Shared)],
            Duration::from_millis(2),
        );
        assert!(!ok);
        // The lock on `a` must have been rolled back.
        assert!(!table.holds(txn(1), &a, LockKind::Exclusive));
        assert!(table.acquire(txn(2), &a, LockKind::Exclusive, TIMEOUT));
    }

    #[test]
    fn acquire_many_handles_read_write_overlap() {
        let table = LockTable::new();
        let a = Key::new("a");
        let ok = table.acquire_many(
            txn(1),
            [(&a, LockKind::Shared), (&a, LockKind::Exclusive)],
            TIMEOUT,
        );
        assert!(ok);
        assert!(table.holds(txn(1), &a, LockKind::Exclusive));
    }

    #[test]
    fn waiting_acquirer_is_woken_by_release() {
        let table = Arc::new(LockTable::new());
        let k = Key::new("x");
        assert!(table.acquire(txn(1), &k, LockKind::Exclusive, TIMEOUT));
        let t2 = {
            let table = Arc::clone(&table);
            let k = k.clone();
            std::thread::spawn(move || {
                table.acquire(txn(2), &k, LockKind::Exclusive, Duration::from_millis(500))
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        table.release_all(txn(1));
        assert!(t2.join().unwrap());
    }

    #[test]
    fn release_keys_only_touches_named_keys() {
        let table = LockTable::new();
        let a = Key::new("a");
        let b = Key::new("b");
        assert!(table.acquire(txn(1), &a, LockKind::Shared, TIMEOUT));
        assert!(table.acquire(txn(1), &b, LockKind::Exclusive, TIMEOUT));
        table.release_keys(txn(1), [&a]);
        assert!(!table.holds(txn(1), &a, LockKind::Shared));
        assert!(table.holds(txn(1), &b, LockKind::Exclusive));
    }

    #[test]
    fn single_shard_table_behaves_like_the_unsharded_one() {
        let table = LockTable::with_shards(1);
        assert_eq!(table.shard_count(), 1);
        let a = Key::new("a");
        let b = Key::new("b");
        assert!(table.acquire_many(
            txn(1),
            [(&a, LockKind::Exclusive), (&b, LockKind::Exclusive)],
            TIMEOUT
        ));
        assert_eq!(table.locked_keys(), 2);
        table.release_all(txn(1));
        assert_eq!(table.locked_keys(), 0);
    }

    #[test]
    fn stats_diff_yields_per_window_counters() {
        let table = LockTable::new();
        let k = Key::new("x");
        assert!(table.acquire(txn(1), &k, LockKind::Exclusive, TIMEOUT));
        let before = table.stats();
        assert!(table.acquire(txn(1), &k, LockKind::Exclusive, TIMEOUT));
        let window = table.stats().diff(&before);
        assert_eq!(window.granted, 1);
        assert_eq!(window.timeouts, 0);
    }
}
