//! Multi-version key-value repository.
//!
//! "Multiple versions are kept for each key. Each version stores the value
//! and the commit vector clock of the transaction that produced the version"
//! (paper §II). The version-selection logic of Algorithm 6 walks a key's
//! chain from the most recent version backwards; [`VersionChain`] exposes
//! exactly that traversal.
//!
//! The store is hash-partitioned into a fixed number of shards (see
//! [`MvStore::with_shards`]), each behind its own reader-writer lock, so
//! concurrent handlers touching different keys proceed in parallel. Version
//! chains are held behind `Arc`s: a read clones the `Arc` and drops the
//! shard lock immediately, so chain walks never hold any lock — writers
//! install new versions copy-on-write via [`Arc::make_mut`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sss_vclock::VectorClock;

use crate::key::{Key, Value};
use crate::shard;
use crate::txn_id::TxnId;

/// One committed version of a key.
///
/// The commit vector clock is held behind an [`Arc`]: a transaction that
/// writes several keys installs every version with the *same* shared clock,
/// and handing a version out of the store ([`MvStore::last`]) clones the
/// handle, not the clock — chain walks and snapshot comparisons on the read
/// hot path never copy clock entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// The stored value.
    pub value: Value,
    /// Commit vector clock of the transaction that produced this version,
    /// shared with every other version that transaction installed.
    pub vc: Arc<VectorClock>,
    /// The transaction that produced this version.
    pub writer: TxnId,
}

/// The ordered version history of one key, oldest first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// An empty chain.
    pub fn new() -> Self {
        VersionChain {
            versions: Vec::new(),
        }
    }

    /// Appends a freshly committed version (it becomes `last`).
    pub fn push(&mut self, version: Version) {
        self.versions.push(version);
    }

    /// The most recent version (`k.last` in the paper's pseudocode).
    pub fn last(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// `true` if no version has ever been installed.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Iterates versions from the most recent to the oldest, mirroring the
    /// `ver ← ver.prev` walk of Algorithm 6.
    pub fn iter_newest_first(&self) -> impl Iterator<Item = &Version> {
        self.versions.iter().rev()
    }

    /// Iterates versions oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Version> {
        self.versions.iter()
    }

    /// Returns the most recent version that satisfies `accept`, walking
    /// newest-to-oldest. Returns `None` if no version qualifies.
    pub fn latest_matching<F>(&self, mut accept: F) -> Option<&Version>
    where
        F: FnMut(&Version) -> bool,
    {
        self.iter_newest_first().find(|v| accept(v))
    }

    /// Drops all but the newest `keep` versions. Returns how many versions
    /// were pruned. Used by garbage collection.
    pub fn prune_to(&mut self, keep: usize) -> usize {
        if self.versions.len() <= keep {
            return 0;
        }
        let excess = self.versions.len() - keep;
        self.versions.drain(0..excess);
        excess
    }
}

/// One hash partition of the store: its own key→chain map behind its own
/// contention-counting lock (see [`shard::ContendedRwLock`]), plus the
/// counters the contention report aggregates.
#[derive(Debug, Default)]
struct MvShard {
    chains: shard::ContendedRwLock<HashMap<Key, Arc<VersionChain>>>,
    installed: AtomicU64,
}

impl MvShard {
    fn read(&self) -> parking_lot::RwLockReadGuard<'_, HashMap<Key, Arc<VersionChain>>> {
        self.chains.read()
    }

    fn write(&self) -> parking_lot::RwLockWriteGuard<'_, HashMap<Key, Arc<VersionChain>>> {
        self.chains.write()
    }
}

/// Counters describing one shard of an [`MvStore`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MvShardStats {
    /// Keys currently resident in the shard.
    pub keys: usize,
    /// Versions installed through the shard (monotonic).
    pub installed: u64,
    /// Lock acquisitions that found the shard lock held (monotonic).
    pub contended: u64,
}

/// Aggregated counters of an [`MvStore`], with the per-shard breakdown the
/// benchmark harness reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MvStoreStats {
    /// Versions installed across all shards (monotonic).
    pub installed_versions: u64,
    /// Versions currently retained across all shards.
    pub retained_versions: usize,
    /// Shard-lock acquisitions that had to block, across all shards
    /// (monotonic).
    pub contended: u64,
    /// Per-shard breakdown, indexed by shard.
    pub per_shard: Vec<MvShardStats>,
}

impl MvStoreStats {
    /// Counter difference `self - earlier` (entry-wise, saturating), for
    /// per-window reporting. Gauges (`keys`, `retained_versions`) keep the
    /// later snapshot's value.
    pub fn diff(&self, earlier: &MvStoreStats) -> MvStoreStats {
        MvStoreStats {
            installed_versions: self
                .installed_versions
                .saturating_sub(earlier.installed_versions),
            retained_versions: self.retained_versions,
            contended: self.contended.saturating_sub(earlier.contended),
            per_shard: self
                .per_shard
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let base = earlier.per_shard.get(i).cloned().unwrap_or_default();
                    MvShardStats {
                        keys: s.keys,
                        installed: s.installed.saturating_sub(base.installed),
                        contended: s.contended.saturating_sub(base.contended),
                    }
                })
                .collect(),
        }
    }

    /// Entry-wise sum with `other` (shards are matched by index), used to
    /// aggregate the per-node stores of a cluster.
    pub fn merge(&mut self, other: &MvStoreStats) {
        self.installed_versions += other.installed_versions;
        self.retained_versions += other.retained_versions;
        self.contended += other.contended;
        if self.per_shard.len() < other.per_shard.len() {
            self.per_shard
                .resize(other.per_shard.len(), MvShardStats::default());
        }
        for (mine, theirs) in self.per_shard.iter_mut().zip(other.per_shard.iter()) {
            mine.keys += theirs.keys;
            mine.installed += theirs.installed;
            mine.contended += theirs.contended;
        }
    }
}

/// A node-local multi-version store, hash-partitioned into fixed-arity
/// shards with per-shard reader-writer locks.
///
/// The store is internally synchronized: `apply` and the read accessors all
/// take `&self`, so engines may share it across worker threads without an
/// enclosing lock. Engines that already serialize access (the SSS node
/// state mutex) pay only an uncontended per-shard lock per operation.
#[derive(Debug)]
pub struct MvStore {
    shards: Box<[MvShard]>,
    mask: usize,
}

impl Default for MvStore {
    fn default() -> Self {
        MvStore::new()
    }
}

impl MvStore {
    /// Creates an empty store with [`shard::DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        MvStore::with_shards(shard::DEFAULT_SHARDS)
    }

    /// Creates an empty store with `shards` shards (rounded up to a power
    /// of two, minimum 1). The arity is fixed for the store's lifetime.
    pub fn with_shards(shards: usize) -> Self {
        let arity = shard::arity(shards);
        MvStore {
            shards: (0..arity).map(|_| MvShard::default()).collect(),
            mask: arity - 1,
        }
    }

    /// Number of shards the store was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to (stable across runs; see
    /// [`crate::shard`]).
    pub fn shard_of(&self, key: &Key) -> usize {
        shard::index_for(key, self.mask)
    }

    fn shard(&self, key: &Key) -> &MvShard {
        &self.shards[shard::index_for(key, self.mask)]
    }

    /// Installs a new version of `key` (Algorithm 2, `apply(k, val, vc)`).
    ///
    /// Accepts either an owned [`VectorClock`] or an `Arc<VectorClock>`;
    /// multi-key transactions should install every key with a clone of one
    /// shared `Arc` so the clock is stored once.
    pub fn apply(&self, key: Key, value: Value, vc: impl Into<Arc<VectorClock>>, writer: TxnId) {
        let vc = vc.into();
        let shard = self.shard(&key);
        shard.installed.fetch_add(1, Ordering::Relaxed);
        let mut chains = shard.write();
        let chain = chains.entry(key).or_default();
        Arc::make_mut(chain).push(Version { value, vc, writer });
    }

    /// The version chain of `key`, if any version was ever installed.
    ///
    /// The returned handle is a snapshot: the shard lock is released before
    /// this method returns, so walking the chain (Algorithm 6) never blocks
    /// writers — a concurrent `apply` replaces the shard's `Arc` without
    /// touching the handle already returned.
    pub fn chain(&self, key: &Key) -> Option<Arc<VersionChain>> {
        self.shard(key).read().get(key).cloned()
    }

    /// The most recent version of `key` (`k.last`).
    pub fn last(&self, key: &Key) -> Option<Version> {
        self.shard(key)
            .read()
            .get(key)
            .and_then(|c| c.last().cloned())
    }

    /// Entry `i` of the most recent version's commit vector clock
    /// (`k.last.vid[i]`, used by the validation of Algorithm 1 line 29).
    /// Returns 0 when the key has never been written.
    pub fn last_vc_entry(&self, key: &Key, i: usize) -> u64 {
        self.shard(key)
            .read()
            .get(key)
            .and_then(|c| c.last().map(|v| v.vc.get(i)))
            .unwrap_or(0)
    }

    /// Number of keys with at least one version.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Total number of versions ever installed (monotonic counter).
    pub fn installed_versions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.installed.load(Ordering::Relaxed))
            .sum()
    }

    /// Total number of versions currently retained.
    pub fn retained_versions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(|c| c.len()).sum::<usize>())
            .sum()
    }

    /// Prunes every chain to at most `keep` versions; returns the number of
    /// versions discarded.
    pub fn prune_all(&self, keep: usize) -> usize {
        let mut pruned = 0;
        for shard in self.shards.iter() {
            let mut chains = shard.write();
            for chain in chains.values_mut() {
                if chain.len() > keep {
                    pruned += Arc::make_mut(chain).prune_to(keep);
                }
            }
        }
        pruned
    }

    /// Every key currently present, in unspecified order.
    pub fn keys(&self) -> Vec<Key> {
        self.shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Snapshot of the store's counters, including the per-shard breakdown.
    ///
    /// Each shard is visited once, with its gauges and counters read under
    /// the same guard, so `retained_versions` is always consistent with the
    /// per-shard breakdown in the returned snapshot.
    pub fn stats(&self) -> MvStoreStats {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let mut retained_versions = 0;
        for s in self.shards.iter() {
            let chains = s.read();
            retained_versions += chains.values().map(|c| c.len()).sum::<usize>();
            per_shard.push(MvShardStats {
                keys: chains.len(),
                installed: s.installed.load(Ordering::Relaxed),
                contended: s.chains.contended(),
            });
        }
        MvStoreStats {
            installed_versions: per_shard.iter().map(|s| s.installed).sum(),
            retained_versions,
            contended: per_shard.iter().map(|s| s.contended).sum(),
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_vclock::NodeId;

    fn vc(entries: &[u64]) -> VectorClock {
        VectorClock::from_entries(entries.to_vec())
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn apply_makes_latest_visible() {
        let store = MvStore::new();
        let k = Key::new("x");
        store.apply(k.clone(), Value::from("v1"), vc(&[1, 0]), txn(1));
        store.apply(k.clone(), Value::from("v2"), vc(&[2, 0]), txn(2));
        assert_eq!(store.last(&k).unwrap().value, Value::from("v2"));
        assert_eq!(store.last_vc_entry(&k, 0), 2);
        assert_eq!(store.chain(&k).unwrap().len(), 2);
        assert_eq!(store.key_count(), 1);
        assert_eq!(store.installed_versions(), 2);
    }

    #[test]
    fn missing_key_has_no_versions() {
        let store = MvStore::new();
        let k = Key::new("missing");
        assert!(store.last(&k).is_none());
        assert_eq!(store.last_vc_entry(&k, 0), 0);
        assert!(store.chain(&k).is_none());
    }

    #[test]
    fn newest_first_walk_matches_algorithm_6() {
        let mut chain = VersionChain::new();
        for i in 1..=3 {
            chain.push(Version {
                value: Value::from_u64(i),
                vc: vc(&[i, 0]).into(),
                writer: txn(i),
            });
        }
        let seen: Vec<u64> = chain.iter_newest_first().map(|v| v.vc.get(0)).collect();
        assert_eq!(seen, vec![3, 2, 1]);
        // Select the newest version whose vc[0] <= 2, as a visibility bound
        // walk would.
        let ver = chain.latest_matching(|v| v.vc.get(0) <= 2).unwrap();
        assert_eq!(ver.vc.get(0), 2);
        assert!(chain.latest_matching(|v| v.vc.get(0) > 9).is_none());
    }

    #[test]
    fn pruning_keeps_the_newest_versions() {
        let store = MvStore::new();
        let k = Key::new("x");
        for i in 1..=10 {
            store.apply(k.clone(), Value::from_u64(i), vc(&[i]), txn(i));
        }
        let pruned = store.prune_all(3);
        assert_eq!(pruned, 7);
        assert_eq!(store.retained_versions(), 3);
        let chain = store.chain(&k).unwrap();
        let newest: Vec<u64> = chain.iter().map(|v| v.value.to_u64().unwrap()).collect();
        assert_eq!(newest, vec![8, 9, 10]);
        // Pruning below the retained count is a no-op.
        let mut chain = (*chain).clone();
        assert_eq!(chain.prune_to(5), 0);
    }

    #[test]
    fn keys_iterator_lists_written_keys() {
        let store = MvStore::new();
        store.apply(Key::new("a"), Value::from("1"), vc(&[1]), txn(1));
        store.apply(Key::new("b"), Value::from("2"), vc(&[2]), txn(2));
        let mut keys: Vec<String> = store.keys().iter().map(|k| k.to_string()).collect();
        keys.sort();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn shard_arity_is_fixed_and_routing_stable() {
        let store = MvStore::with_shards(5);
        assert_eq!(store.shard_count(), 8, "arity rounds up to a power of two");
        let k = Key::new("route-me");
        let shard = store.shard_of(&k);
        store.apply(k.clone(), Value::from("v"), vc(&[1]), txn(1));
        let stats = store.stats();
        assert_eq!(stats.per_shard.len(), 8);
        assert_eq!(stats.per_shard[shard].keys, 1, "key must land on its shard");
        assert_eq!(stats.per_shard[shard].installed, 1);
        assert_eq!(stats.installed_versions, 1);
    }

    #[test]
    fn chain_snapshot_survives_concurrent_apply() {
        let store = MvStore::with_shards(1);
        let k = Key::new("x");
        store.apply(k.clone(), Value::from_u64(1), vc(&[1]), txn(1));
        let snapshot = store.chain(&k).unwrap();
        store.apply(k.clone(), Value::from_u64(2), vc(&[2]), txn(2));
        // The handle taken before the second apply still sees one version;
        // a fresh lookup sees both (copy-on-write chains).
        assert_eq!(snapshot.len(), 1);
        assert_eq!(store.chain(&k).unwrap().len(), 2);
    }

    #[test]
    fn stats_diff_subtracts_counters_and_keeps_gauges() {
        let store = MvStore::with_shards(2);
        let k = Key::new("x");
        store.apply(k.clone(), Value::from_u64(1), vc(&[1]), txn(1));
        let before = store.stats();
        store.apply(k.clone(), Value::from_u64(2), vc(&[2]), txn(2));
        let window = store.stats().diff(&before);
        assert_eq!(window.installed_versions, 1);
        assert_eq!(window.retained_versions, 2, "gauge keeps the later value");
    }

    #[test]
    fn stats_merge_sums_nodes() {
        let a = MvStore::with_shards(2);
        let b = MvStore::with_shards(2);
        a.apply(Key::new("x"), Value::from_u64(1), vc(&[1]), txn(1));
        b.apply(Key::new("y"), Value::from_u64(2), vc(&[2]), txn(2));
        let mut total = a.stats();
        total.merge(&b.stats());
        assert_eq!(total.installed_versions, 2);
        assert_eq!(total.retained_versions, 2);
    }
}
