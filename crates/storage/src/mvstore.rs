//! Multi-version key-value repository.
//!
//! "Multiple versions are kept for each key. Each version stores the value
//! and the commit vector clock of the transaction that produced the version"
//! (paper §II). The version-selection logic of Algorithm 6 walks a key's
//! chain from the most recent version backwards; [`VersionChain`] exposes
//! exactly that traversal.

use std::collections::HashMap;

use sss_vclock::VectorClock;

use crate::key::{Key, Value};
use crate::txn_id::TxnId;

/// One committed version of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// The stored value.
    pub value: Value,
    /// Commit vector clock of the transaction that produced this version.
    pub vc: VectorClock,
    /// The transaction that produced this version.
    pub writer: TxnId,
}

/// The ordered version history of one key, oldest first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// An empty chain.
    pub fn new() -> Self {
        VersionChain {
            versions: Vec::new(),
        }
    }

    /// Appends a freshly committed version (it becomes `last`).
    pub fn push(&mut self, version: Version) {
        self.versions.push(version);
    }

    /// The most recent version (`k.last` in the paper's pseudocode).
    pub fn last(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// `true` if no version has ever been installed.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Iterates versions from the most recent to the oldest, mirroring the
    /// `ver ← ver.prev` walk of Algorithm 6.
    pub fn iter_newest_first(&self) -> impl Iterator<Item = &Version> {
        self.versions.iter().rev()
    }

    /// Iterates versions oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Version> {
        self.versions.iter()
    }

    /// Returns the most recent version that satisfies `accept`, walking
    /// newest-to-oldest. Returns `None` if no version qualifies.
    pub fn latest_matching<F>(&self, mut accept: F) -> Option<&Version>
    where
        F: FnMut(&Version) -> bool,
    {
        self.iter_newest_first().find(|v| accept(v))
    }

    /// Drops all but the newest `keep` versions. Returns how many versions
    /// were pruned. Used by garbage collection.
    pub fn prune_to(&mut self, keep: usize) -> usize {
        if self.versions.len() <= keep {
            return 0;
        }
        let excess = self.versions.len() - keep;
        self.versions.drain(0..excess);
        excess
    }
}

/// A node-local multi-version store.
///
/// The store itself is not synchronized: every engine embeds it inside the
/// node state it already protects. This keeps the data structure reusable by
/// SSS and Walter, whose locking disciplines differ.
#[derive(Debug, Default)]
pub struct MvStore {
    chains: HashMap<Key, VersionChain>,
    installed_versions: u64,
}

impl MvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MvStore::default()
    }

    /// Installs a new version of `key` (Algorithm 2, `apply(k, val, vc)`).
    pub fn apply(&mut self, key: Key, value: Value, vc: VectorClock, writer: TxnId) {
        self.installed_versions += 1;
        self.chains
            .entry(key)
            .or_default()
            .push(Version { value, vc, writer });
    }

    /// The version chain of `key`, if any version was ever installed.
    pub fn chain(&self, key: &Key) -> Option<&VersionChain> {
        self.chains.get(key)
    }

    /// The most recent version of `key` (`k.last`).
    pub fn last(&self, key: &Key) -> Option<&Version> {
        self.chains.get(key).and_then(|c| c.last())
    }

    /// Entry `i` of the most recent version's commit vector clock
    /// (`k.last.vid[i]`, used by the validation of Algorithm 1 line 29).
    /// Returns 0 when the key has never been written.
    pub fn last_vc_entry(&self, key: &Key, i: usize) -> u64 {
        self.last(key).map(|v| v.vc.get(i)).unwrap_or(0)
    }

    /// Number of keys with at least one version.
    pub fn key_count(&self) -> usize {
        self.chains.len()
    }

    /// Total number of versions ever installed (monotonic counter).
    pub fn installed_versions(&self) -> u64 {
        self.installed_versions
    }

    /// Total number of versions currently retained.
    pub fn retained_versions(&self) -> usize {
        self.chains.values().map(|c| c.len()).sum()
    }

    /// Prunes every chain to at most `keep` versions; returns the number of
    /// versions discarded.
    pub fn prune_all(&mut self, keep: usize) -> usize {
        self.chains.values_mut().map(|c| c.prune_to(keep)).sum()
    }

    /// Iterates over all keys currently present.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.chains.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_vclock::NodeId;

    fn vc(entries: &[u64]) -> VectorClock {
        VectorClock::from_entries(entries.to_vec())
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn apply_makes_latest_visible() {
        let mut store = MvStore::new();
        let k = Key::new("x");
        store.apply(k.clone(), Value::from("v1"), vc(&[1, 0]), txn(1));
        store.apply(k.clone(), Value::from("v2"), vc(&[2, 0]), txn(2));
        assert_eq!(store.last(&k).unwrap().value, Value::from("v2"));
        assert_eq!(store.last_vc_entry(&k, 0), 2);
        assert_eq!(store.chain(&k).unwrap().len(), 2);
        assert_eq!(store.key_count(), 1);
        assert_eq!(store.installed_versions(), 2);
    }

    #[test]
    fn missing_key_has_no_versions() {
        let store = MvStore::new();
        let k = Key::new("missing");
        assert!(store.last(&k).is_none());
        assert_eq!(store.last_vc_entry(&k, 0), 0);
        assert!(store.chain(&k).is_none());
    }

    #[test]
    fn newest_first_walk_matches_algorithm_6() {
        let mut chain = VersionChain::new();
        for i in 1..=3 {
            chain.push(Version {
                value: Value::from_u64(i),
                vc: vc(&[i, 0]),
                writer: txn(i),
            });
        }
        let seen: Vec<u64> = chain.iter_newest_first().map(|v| v.vc.get(0)).collect();
        assert_eq!(seen, vec![3, 2, 1]);
        // Select the newest version whose vc[0] <= 2, as a visibility bound
        // walk would.
        let ver = chain.latest_matching(|v| v.vc.get(0) <= 2).unwrap();
        assert_eq!(ver.vc.get(0), 2);
        assert!(chain.latest_matching(|v| v.vc.get(0) > 9).is_none());
    }

    #[test]
    fn pruning_keeps_the_newest_versions() {
        let mut store = MvStore::new();
        let k = Key::new("x");
        for i in 1..=10 {
            store.apply(k.clone(), Value::from_u64(i), vc(&[i]), txn(i));
        }
        let pruned = store.prune_all(3);
        assert_eq!(pruned, 7);
        assert_eq!(store.retained_versions(), 3);
        let chain = store.chain(&k).unwrap();
        let newest: Vec<u64> = chain.iter().map(|v| v.value.to_u64().unwrap()).collect();
        assert_eq!(newest, vec![8, 9, 10]);
        // Pruning below the retained count is a no-op.
        let mut chain = chain.clone();
        assert_eq!(chain.prune_to(5), 0);
    }

    #[test]
    fn keys_iterator_lists_written_keys() {
        let mut store = MvStore::new();
        store.apply(Key::new("a"), Value::from("1"), vc(&[1]), txn(1));
        store.apply(Key::new("b"), Value::from("2"), vc(&[2]), txn(2));
        let mut keys: Vec<String> = store.keys().map(|k| k.to_string()).collect();
        keys.sort();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
