//! Bounded, insertion-ordered sets of recently seen protocol identifiers.

use std::collections::{HashSet, VecDeque};
use std::hash::Hash;

use crate::txn_id::TxnId;

/// A bounded insertion-ordered set.
///
/// Protocol nodes use it to remember recently completed, aborted or removed
/// work so that *racing* messages — a high-priority `Decide` overtaking its
/// `Prepare` in the priority mailbox, a duplicate delivery of an
/// already-processed message, a late snapshot-queue insertion after the
/// `Remove` — are suppressed instead of leaking locks or queue entries that
/// nothing will ever clean up. The capacity bound keeps the memory of a
/// long-running node finite; the set evicts oldest-first, and the bound is
/// sized so that any message still plausibly in flight is remembered.
#[derive(Debug)]
pub struct RecentSet<T> {
    order: VecDeque<T>,
    set: HashSet<T>,
    capacity: usize,
}

/// The most common instantiation: a set of transaction identifiers.
pub type RecentTxnSet = RecentSet<TxnId>;

impl<T: Eq + Hash + Clone> RecentSet<T> {
    /// Creates an empty set remembering up to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        RecentSet {
            order: VecDeque::new(),
            set: HashSet::new(),
            capacity,
        }
    }

    /// Remembers `entry`; returns `true` if it was not already remembered.
    pub fn insert(&mut self, entry: T) -> bool {
        if self.set.insert(entry.clone()) {
            self.order.push_back(entry);
            if self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.set.remove(&old);
                }
            }
            true
        } else {
            false
        }
    }

    /// `true` if `entry` is remembered.
    pub fn contains(&self, entry: &T) -> bool {
        self.set.contains(entry)
    }

    /// Forgets `entry` (e.g. once its global external commit is confirmed).
    /// Returns `true` if it was remembered.
    pub fn remove(&mut self, entry: &T) -> bool {
        if self.set.remove(entry) {
            self.order.retain(|t| t != entry);
            true
        } else {
            false
        }
    }

    /// Number of remembered entries.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_vclock::NodeId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut set = RecentTxnSet::new(2);
        assert!(set.insert(txn(1)));
        assert!(set.insert(txn(2)));
        assert!(set.insert(txn(3)));
        assert_eq!(set.len(), 2);
        assert!(!set.contains(&txn(1)));
        assert!(set.contains(&txn(2)));
        assert!(set.contains(&txn(3)));
    }

    #[test]
    fn reinsertion_reports_already_present() {
        let mut set = RecentTxnSet::new(4);
        assert!(set.insert(txn(1)));
        assert!(!set.insert(txn(1)));
        assert_eq!(set.len(), 1);
        assert!(set.remove(&txn(1)));
        assert!(!set.remove(&txn(1)));
        assert!(set.is_empty());
    }

    #[test]
    fn composite_keys_are_supported() {
        let mut set: RecentSet<(TxnId, u8)> = RecentSet::new(2);
        assert!(set.insert((txn(1), 0)));
        assert!(set.insert((txn(1), 1)));
        assert!(!set.insert((txn(1), 0)));
        assert!(set.contains(&(txn(1), 1)));
    }
}
