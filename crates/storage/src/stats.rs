//! Aggregated storage-layer statistics.
//!
//! Engines expose one [`StorageStats`] per cluster (summed over nodes); the
//! benchmark harness snapshots it at the start and end of the measured
//! window and reports the [`StorageStats::diff`] so per-window numbers are
//! unaffected by warm-up traffic or by however many runs already used the
//! process (the counters themselves are monotonic and never reset).

use crate::locks::LockTableStats;
use crate::mvstore::MvStoreStats;
use crate::svstore::SvStoreStats;

/// Combined storage-layer counters of one engine (or one node).
///
/// Each component is optional because engines deploy different substrates:
/// SSS and Walter run an [`MvStore`](crate::MvStore) plus a
/// [`LockTable`](crate::LockTable), the 2PC baseline an
/// [`SvStore`](crate::SvStore) plus a lock table, and ROCOCO only an
/// [`SvStore`](crate::SvStore).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Multi-version store counters, if the engine runs one.
    pub mv: Option<MvStoreStats>,
    /// Single-version store counters, if the engine runs one.
    pub sv: Option<SvStoreStats>,
    /// Lock-table counters, if the engine runs one.
    pub locks: Option<LockTableStats>,
}

impl StorageStats {
    /// Entry-wise sum with `other`, used to aggregate per-node snapshots
    /// into a cluster total. A component present on either side is present
    /// in the result.
    pub fn merge(&mut self, other: &StorageStats) {
        merge_opt(&mut self.mv, &other.mv, MvStoreStats::merge);
        merge_opt(&mut self.sv, &other.sv, SvStoreStats::merge);
        merge_opt(&mut self.locks, &other.locks, LockTableStats::merge);
    }

    /// Counter difference `self - earlier` per component (entry-wise,
    /// saturating), for per-window reporting.
    pub fn diff(&self, earlier: &StorageStats) -> StorageStats {
        StorageStats {
            mv: diff_opt(&self.mv, &earlier.mv, MvStoreStats::diff),
            sv: diff_opt(&self.sv, &earlier.sv, SvStoreStats::diff),
            locks: diff_opt(&self.locks, &earlier.locks, LockTableStats::diff),
        }
    }
}

fn merge_opt<T: Clone>(mine: &mut Option<T>, theirs: &Option<T>, merge: impl Fn(&mut T, &T)) {
    match (mine.as_mut(), theirs) {
        (Some(m), Some(t)) => merge(m, t),
        (None, Some(t)) => *mine = Some(t.clone()),
        _ => {}
    }
}

fn diff_opt<T: Clone + Default>(
    later: &Option<T>,
    earlier: &Option<T>,
    diff: impl Fn(&T, &T) -> T,
) -> Option<T> {
    later
        .as_ref()
        .map(|l| diff(l, earlier.as_ref().unwrap_or(&T::default())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Key, LockKind, LockTable, MvStore, SvStore, TxnId, Value};
    use sss_vclock::{NodeId, VectorClock};
    use std::time::Duration;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn merge_sums_components_and_adopts_missing_ones() {
        let mv = MvStore::with_shards(2);
        mv.apply(
            Key::new("a"),
            Value::from_u64(1),
            VectorClock::from_entries(vec![1]),
            txn(1),
        );
        let sv = SvStore::with_shards(2);
        sv.write(Key::new("b"), Value::from_u64(2), txn(2));
        let locks = LockTable::with_shards(2);
        assert!(locks.acquire(
            txn(3),
            &Key::new("c"),
            LockKind::Shared,
            Duration::from_millis(1)
        ));

        let mut total = StorageStats {
            mv: Some(mv.stats()),
            sv: None,
            locks: Some(locks.stats()),
        };
        let other = StorageStats {
            mv: Some(mv.stats()),
            sv: Some(sv.stats()),
            locks: None,
        };
        total.merge(&other);
        assert_eq!(total.mv.as_ref().unwrap().installed_versions, 2);
        assert_eq!(total.sv.as_ref().unwrap().writes, 1, "sv side adopted");
        assert_eq!(total.locks.as_ref().unwrap().granted, 1);
    }

    #[test]
    fn diff_is_per_component() {
        let sv = SvStore::with_shards(1);
        sv.write(Key::new("a"), Value::from_u64(1), txn(1));
        let before = StorageStats {
            sv: Some(sv.stats()),
            ..Default::default()
        };
        sv.write(Key::new("a"), Value::from_u64(2), txn(2));
        let after = StorageStats {
            sv: Some(sv.stats()),
            ..Default::default()
        };
        let window = after.diff(&before);
        assert_eq!(window.sv.unwrap().writes, 1);
        assert!(window.mv.is_none());
    }
}
