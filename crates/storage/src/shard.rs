//! Hash-partitioning shared by the sharded stores.
//!
//! Every sharded structure in this crate ([`MvStore`](crate::MvStore),
//! [`SvStore`](crate::SvStore), [`LockTable`](crate::LockTable)) uses the
//! same fixed-arity scheme: the shard count is rounded up to a power of two
//! at construction time and a key's shard is the low bits of its (seeded,
//! deterministic) hash. Determinism matters: it lets tests assert which
//! shard a key lands on and keeps shard routing identical across runs and
//! across processes.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::key::Key;

/// Default shard arity of the sharded stores — enough to spread the worker
/// threads of one node (4 by default) plus colocated client traffic without
/// wasting memory on single-threaded uses.
pub const DEFAULT_SHARDS: usize = 8;

/// Rounds a requested shard count up to the fixed power-of-two arity
/// actually allocated (minimum 1).
pub(crate) fn arity(requested: usize) -> usize {
    requested.max(1).next_power_of_two()
}

/// The shard a key belongs to, given a power-of-two mask (`arity - 1`).
///
/// Uses `DefaultHasher::new()`, whose keys are fixed, so the mapping is
/// stable across processes — unlike a per-`HashMap` `RandomState`.
pub(crate) fn index_for(key: &Key, mask: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) & mask
}

/// A reader-writer lock that counts contended acquisitions: an acquisition
/// that cannot be granted immediately (`try_*` fails) bumps the counter
/// before blocking. One per shard; the counter feeds the per-shard
/// contention breakdown of the store statistics.
#[derive(Debug, Default)]
pub(crate) struct ContendedRwLock<T> {
    inner: RwLock<T>,
    contended: AtomicU64,
}

impl<T> ContendedRwLock<T> {
    pub(crate) fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.try_read() {
            Some(guard) => guard,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.inner.read()
            }
        }
    }

    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.try_write() {
            Some(guard) => guard,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.inner.write()
            }
        }
    }

    /// Contended acquisitions so far (monotonic).
    pub(crate) fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_rounds_up_to_powers_of_two() {
        assert_eq!(arity(0), 1);
        assert_eq!(arity(1), 1);
        assert_eq!(arity(3), 4);
        assert_eq!(arity(8), 8);
        assert_eq!(arity(9), 16);
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let mask = 7;
        for name in ["a", "b", "hot-key", "user:1234"] {
            let key = Key::new(name);
            let first = index_for(&key, mask);
            assert!(first <= mask);
            assert_eq!(first, index_for(&key, mask), "routing must be stable");
        }
    }
}
