//! Globally unique transaction identifiers.

use serde::{Deserialize, Serialize};
use sss_vclock::NodeId;

/// Identifier of a transaction.
///
/// A transaction begins on the node its client is colocated with (paper §II);
/// the identifier combines that origin node with a per-node sequence number,
/// which makes it unique without any coordination and lets any node route
/// messages (e.g. the forwarded `Remove` of §III-C) back to the
/// transaction's coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId {
    /// Node on which the transaction's client/coordinator runs.
    pub origin: NodeId,
    /// Per-origin-node sequence number.
    pub seq: u64,
}

impl TxnId {
    /// Creates a transaction identifier.
    pub fn new(origin: NodeId, seq: u64) -> Self {
        TxnId { origin, seq }
    }

    /// The coordinator node of this transaction.
    pub fn coordinator(&self) -> NodeId {
        self.origin
    }
}

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}.{}", self.origin.index(), self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_coordinator() {
        let id = TxnId::new(NodeId(3), 42);
        assert_eq!(id.to_string(), "T3.42");
        assert_eq!(id.coordinator(), NodeId(3));
    }

    #[test]
    fn ordering_is_origin_then_sequence() {
        assert!(TxnId::new(NodeId(0), 9) < TxnId::new(NodeId(1), 0));
        assert!(TxnId::new(NodeId(1), 1) < TxnId::new(NodeId(1), 2));
        assert_eq!(TxnId::new(NodeId(1), 1), TxnId::new(NodeId(1), 1));
    }
}
