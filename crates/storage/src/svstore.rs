//! Single-version key-value repository.
//!
//! The 2PC-baseline competitor deploys "no multi-version data repository"
//! (paper §V): every key holds exactly one value plus a monotonically
//! increasing version counter used for commit-time validation. ROCOCO's
//! simplified store reuses the same cell.

use std::collections::HashMap;

use crate::key::{Key, Value};
use crate::txn_id::TxnId;

/// The single stored version of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvCell {
    /// Current value.
    pub value: Value,
    /// Version counter, incremented on every overwrite. Starts at 1 for the
    /// first write; a read of a never-written key observes version 0.
    pub version: u64,
    /// Transaction that produced the current value.
    pub writer: TxnId,
}

/// A node-local single-version store.
#[derive(Debug, Default)]
pub struct SvStore {
    cells: HashMap<Key, SvCell>,
    writes: u64,
}

impl SvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SvStore::default()
    }

    /// Reads the current cell of `key`, if it was ever written.
    pub fn read(&self, key: &Key) -> Option<&SvCell> {
        self.cells.get(key)
    }

    /// Current version counter of `key` (0 if never written).
    pub fn version(&self, key: &Key) -> u64 {
        self.cells.get(key).map(|c| c.version).unwrap_or(0)
    }

    /// Overwrites `key` with `value`, bumping its version counter, and
    /// returns the new version number.
    pub fn write(&mut self, key: Key, value: Value, writer: TxnId) -> u64 {
        self.writes += 1;
        let cell = self.cells.entry(key).or_insert(SvCell {
            value: Value::empty(),
            version: 0,
            writer,
        });
        cell.value = value;
        cell.version += 1;
        cell.writer = writer;
        cell.version
    }

    /// Number of keys ever written.
    pub fn key_count(&self) -> usize {
        self.cells.len()
    }

    /// Total number of writes applied.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_vclock::NodeId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn versions_increase_monotonically() {
        let mut store = SvStore::new();
        let k = Key::new("x");
        assert_eq!(store.version(&k), 0);
        assert_eq!(store.write(k.clone(), Value::from("a"), txn(1)), 1);
        assert_eq!(store.write(k.clone(), Value::from("b"), txn(2)), 2);
        let cell = store.read(&k).unwrap();
        assert_eq!(cell.value, Value::from("b"));
        assert_eq!(cell.version, 2);
        assert_eq!(cell.writer, txn(2));
        assert_eq!(store.write_count(), 2);
        assert_eq!(store.key_count(), 1);
    }

    #[test]
    fn reading_a_missing_key() {
        let store = SvStore::new();
        assert!(store.read(&Key::new("nope")).is_none());
        assert_eq!(store.version(&Key::new("nope")), 0);
    }
}
