//! Single-version key-value repository.
//!
//! The 2PC-baseline competitor deploys "no multi-version data repository"
//! (paper §V): every key holds exactly one value plus a monotonically
//! increasing version counter used for commit-time validation. ROCOCO's
//! simplified store reuses the same cell.
//!
//! Like [`MvStore`](crate::MvStore), the store is hash-partitioned into
//! fixed-arity shards behind per-shard reader-writer locks and internally
//! synchronized, so engines can read and write it concurrently without an
//! enclosing lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::key::{Key, Value};
use crate::shard;
use crate::txn_id::TxnId;

/// The single stored version of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvCell {
    /// Current value.
    pub value: Value,
    /// Version counter, incremented on every overwrite. Starts at 1 for the
    /// first write; a read of a never-written key observes version 0.
    pub version: u64,
    /// Transaction that produced the current value.
    pub writer: TxnId,
}

/// One hash partition of the store, behind a contention-counting lock (see
/// [`shard::ContendedRwLock`]).
#[derive(Debug, Default)]
struct SvShard {
    cells: shard::ContendedRwLock<HashMap<Key, SvCell>>,
    writes: AtomicU64,
}

impl SvShard {
    fn read(&self) -> parking_lot::RwLockReadGuard<'_, HashMap<Key, SvCell>> {
        self.cells.read()
    }

    fn write(&self) -> parking_lot::RwLockWriteGuard<'_, HashMap<Key, SvCell>> {
        self.cells.write()
    }
}

/// Counters describing one shard of an [`SvStore`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SvShardStats {
    /// Keys currently resident in the shard.
    pub keys: usize,
    /// Writes applied through the shard (monotonic).
    pub writes: u64,
    /// Lock acquisitions that found the shard lock held (monotonic).
    pub contended: u64,
}

/// Aggregated counters of an [`SvStore`], with the per-shard breakdown the
/// benchmark harness reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SvStoreStats {
    /// Writes applied across all shards (monotonic).
    pub writes: u64,
    /// Shard-lock acquisitions that had to block, across all shards
    /// (monotonic).
    pub contended: u64,
    /// Per-shard breakdown, indexed by shard.
    pub per_shard: Vec<SvShardStats>,
}

impl SvStoreStats {
    /// Counter difference `self - earlier` (entry-wise, saturating), for
    /// per-window reporting. The `keys` gauge keeps the later value.
    pub fn diff(&self, earlier: &SvStoreStats) -> SvStoreStats {
        SvStoreStats {
            writes: self.writes.saturating_sub(earlier.writes),
            contended: self.contended.saturating_sub(earlier.contended),
            per_shard: self
                .per_shard
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let base = earlier.per_shard.get(i).cloned().unwrap_or_default();
                    SvShardStats {
                        keys: s.keys,
                        writes: s.writes.saturating_sub(base.writes),
                        contended: s.contended.saturating_sub(base.contended),
                    }
                })
                .collect(),
        }
    }

    /// Entry-wise sum with `other` (shards matched by index), used to
    /// aggregate the per-node stores of a cluster.
    pub fn merge(&mut self, other: &SvStoreStats) {
        self.writes += other.writes;
        self.contended += other.contended;
        if self.per_shard.len() < other.per_shard.len() {
            self.per_shard
                .resize(other.per_shard.len(), SvShardStats::default());
        }
        for (mine, theirs) in self.per_shard.iter_mut().zip(other.per_shard.iter()) {
            mine.keys += theirs.keys;
            mine.writes += theirs.writes;
            mine.contended += theirs.contended;
        }
    }
}

/// A node-local single-version store, hash-partitioned into fixed-arity
/// shards with per-shard reader-writer locks.
#[derive(Debug)]
pub struct SvStore {
    shards: Box<[SvShard]>,
    mask: usize,
}

impl Default for SvStore {
    fn default() -> Self {
        SvStore::new()
    }
}

impl SvStore {
    /// Creates an empty store with [`shard::DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        SvStore::with_shards(shard::DEFAULT_SHARDS)
    }

    /// Creates an empty store with `shards` shards (rounded up to a power
    /// of two, minimum 1). The arity is fixed for the store's lifetime.
    pub fn with_shards(shards: usize) -> Self {
        let arity = shard::arity(shards);
        SvStore {
            shards: (0..arity).map(|_| SvShard::default()).collect(),
            mask: arity - 1,
        }
    }

    /// Number of shards the store was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to (stable across runs; see
    /// [`crate::shard`]).
    pub fn shard_of(&self, key: &Key) -> usize {
        shard::index_for(key, self.mask)
    }

    fn shard(&self, key: &Key) -> &SvShard {
        &self.shards[shard::index_for(key, self.mask)]
    }

    /// Reads the current cell of `key`, if it was ever written.
    ///
    /// The value and version counter are read atomically under the shard
    /// lock, so a `(value, version)` pair observed here is always
    /// consistent.
    pub fn read(&self, key: &Key) -> Option<SvCell> {
        self.shard(key).read().get(key).cloned()
    }

    /// Current version counter of `key` (0 if never written).
    pub fn version(&self, key: &Key) -> u64 {
        self.shard(key)
            .read()
            .get(key)
            .map(|c| c.version)
            .unwrap_or(0)
    }

    /// Overwrites `key` with `value`, bumping its version counter, and
    /// returns the new version number.
    pub fn write(&self, key: Key, value: Value, writer: TxnId) -> u64 {
        let shard = self.shard(&key);
        shard.writes.fetch_add(1, Ordering::Relaxed);
        let mut cells = shard.write();
        let cell = cells.entry(key).or_insert(SvCell {
            value: Value::empty(),
            version: 0,
            writer,
        });
        cell.value = value;
        cell.version += 1;
        cell.writer = writer;
        cell.version
    }

    /// Number of keys ever written.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Total number of writes applied.
    pub fn write_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.writes.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot of the store's counters, including the per-shard breakdown.
    pub fn stats(&self) -> SvStoreStats {
        let per_shard: Vec<SvShardStats> = self
            .shards
            .iter()
            .map(|s| SvShardStats {
                keys: s.read().len(),
                writes: s.writes.load(Ordering::Relaxed),
                contended: s.cells.contended(),
            })
            .collect();
        SvStoreStats {
            writes: per_shard.iter().map(|s| s.writes).sum(),
            contended: per_shard.iter().map(|s| s.contended).sum(),
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_vclock::NodeId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn versions_increase_monotonically() {
        let store = SvStore::new();
        let k = Key::new("x");
        assert_eq!(store.version(&k), 0);
        assert_eq!(store.write(k.clone(), Value::from("a"), txn(1)), 1);
        assert_eq!(store.write(k.clone(), Value::from("b"), txn(2)), 2);
        let cell = store.read(&k).unwrap();
        assert_eq!(cell.value, Value::from("b"));
        assert_eq!(cell.version, 2);
        assert_eq!(cell.writer, txn(2));
        assert_eq!(store.write_count(), 2);
        assert_eq!(store.key_count(), 1);
    }

    #[test]
    fn reading_a_missing_key() {
        let store = SvStore::new();
        assert!(store.read(&Key::new("nope")).is_none());
        assert_eq!(store.version(&Key::new("nope")), 0);
    }

    #[test]
    fn writes_land_on_the_routed_shard() {
        let store = SvStore::with_shards(4);
        assert_eq!(store.shard_count(), 4);
        let k = Key::new("routed");
        let shard = store.shard_of(&k);
        store.write(k, Value::from("v"), txn(1));
        let stats = store.stats();
        assert_eq!(stats.per_shard[shard].keys, 1);
        assert_eq!(stats.per_shard[shard].writes, 1);
        assert_eq!(stats.writes, 1);
        let window = store.stats().diff(&stats);
        assert_eq!(window.writes, 0, "diff of equal snapshots is zero");
    }
}
