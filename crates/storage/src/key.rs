//! Keys and values of the key-value model.

use std::borrow::Borrow;
use std::sync::Arc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A shared object identifier.
///
/// Keys are cheap to clone (`Arc<str>` internally) because the protocol
/// copies them into read-sets, write-sets, snapshot-queues and messages.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Key(Arc<str>);

impl Key {
    /// Creates a key from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        Key(Arc::from(name.as_ref()))
    }

    /// The key's textual form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Key {
    fn from(value: &str) -> Self {
        Key::new(value)
    }
}

impl From<String> for Key {
    fn from(value: String) -> Self {
        Key::new(value)
    }
}

impl AsRef<str> for Key {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Key {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// A value stored under a [`Key`].
///
/// Values are opaque byte strings; cloning is cheap ([`Bytes`] internally).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Value(Bytes);

impl Value {
    /// Creates a value from raw bytes.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Value(bytes.into())
    }

    /// An empty value.
    pub fn empty() -> Self {
        Value(Bytes::new())
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the value holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Interprets the value as UTF-8 text, if possible.
    pub fn as_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.0).ok()
    }

    /// Convenience constructor for integer-valued cells (used heavily by the
    /// invariant-checking tests, e.g. bank balances).
    pub fn from_u64(v: u64) -> Self {
        Value(Bytes::copy_from_slice(&v.to_be_bytes()))
    }

    /// Inverse of [`Value::from_u64`]; `None` if the value is not 8 bytes.
    pub fn to_u64(&self) -> Option<u64> {
        let bytes: [u8; 8] = self.0.as_ref().try_into().ok()?;
        Some(u64::from_be_bytes(bytes))
    }
}

impl From<&[u8]> for Value {
    fn from(value: &[u8]) -> Self {
        Value(Bytes::copy_from_slice(value))
    }
}

impl From<Vec<u8>> for Value {
    fn from(value: Vec<u8>) -> Self {
        Value(Bytes::from(value))
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Self {
        Value(Bytes::copy_from_slice(value.as_bytes()))
    }
}

impl From<String> for Value {
    fn from(value: String) -> Self {
        Value(Bytes::from(value.into_bytes()))
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn keys_compare_by_content() {
        assert_eq!(Key::new("x"), Key::from("x"));
        assert_ne!(Key::new("x"), Key::new("y"));
        assert!(Key::new("a") < Key::new("b"));
        assert_eq!(Key::new("abc").to_string(), "abc");
    }

    #[test]
    fn keys_can_be_looked_up_by_str() {
        let mut map = HashMap::new();
        map.insert(Key::new("k1"), 1);
        assert_eq!(map.get("k1"), Some(&1));
    }

    #[test]
    fn value_roundtrips_u64() {
        let v = Value::from_u64(123_456);
        assert_eq!(v.to_u64(), Some(123_456));
        assert_eq!(v.len(), 8);
        assert!(Value::from("abc").to_u64().is_none());
    }

    #[test]
    fn value_utf8_view() {
        assert_eq!(Value::from("hello").as_utf8(), Some("hello"));
        assert_eq!(Value::new(vec![0xff, 0xfe]).as_utf8(), None);
    }

    #[test]
    fn empty_value() {
        assert!(Value::empty().is_empty());
        assert_eq!(Value::default(), Value::empty());
        assert_eq!(Value::empty().as_bytes(), &[] as &[u8]);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(vec![1, 2]).as_ref(), &[1, 2]);
        assert_eq!(Value::from(&b"xy"[..]), Value::from("xy".to_string()));
    }
}
