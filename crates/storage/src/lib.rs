//! Node-local storage substrates shared by SSS and its competitors.
//!
//! The paper's data organization (§II): "Every node Ni maintains shared
//! objects (or keys) adhering to the key-value model. Multiple versions are
//! kept for each key. Each version stores the value and the commit vector
//! clock of the transaction that produced the version. SSS does not make any
//! assumption on the data clustering policy; simply every shared key can be
//! stored in one or more nodes, depending upon the chosen replication
//! degree."
//!
//! This crate provides:
//!
//! * [`Key`], [`Value`], [`TxnId`] — the basic vocabulary types,
//! * [`MvStore`] — the multi-version repository used by SSS and Walter,
//! * [`SvStore`] — the single-version repository used by the 2PC baseline
//!   and ROCOCO,
//! * [`LockTable`] — shared/exclusive locks with bounded (timeout)
//!   acquisition, as used during the 2PC prepare phase,
//! * [`ReplicaMap`] — the key→nodes lookup function assumed by the paper
//!   ("we assume the existence of a local look-up function that matches keys
//!   with nodes").

mod key;
mod locks;
mod mvstore;
mod recent;
mod replica;
mod svstore;
mod txn_id;

pub use key::{Key, Value};
pub use locks::{LockKind, LockTable, LockTableStats};
pub use mvstore::{MvStore, Version, VersionChain};
pub use recent::{RecentSet, RecentTxnSet};
pub use replica::ReplicaMap;
pub use svstore::{SvCell, SvStore};
pub use txn_id::TxnId;

pub use sss_vclock::{NodeId, VectorClock};
