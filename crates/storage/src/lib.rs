//! Node-local storage substrates shared by SSS and its competitors.
//!
//! The paper's data organization (§II): "Every node Ni maintains shared
//! objects (or keys) adhering to the key-value model. Multiple versions are
//! kept for each key. Each version stores the value and the commit vector
//! clock of the transaction that produced the version. SSS does not make any
//! assumption on the data clustering policy; simply every shared key can be
//! stored in one or more nodes, depending upon the chosen replication
//! degree."
//!
//! This crate provides:
//!
//! * [`Key`], [`Value`], [`TxnId`] — the basic vocabulary types,
//! * [`MvStore`] — the multi-version repository used by SSS and Walter,
//! * [`SvStore`] — the single-version repository used by the 2PC baseline
//!   and ROCOCO,
//! * [`LockTable`] — shared/exclusive locks with bounded (timeout)
//!   acquisition, as used during the 2PC prepare phase,
//! * [`ReplicaMap`] — the key→nodes lookup function assumed by the paper
//!   ("we assume the existence of a local look-up function that matches keys
//!   with nodes").
//!
//! # Sharding
//!
//! [`MvStore`], [`SvStore`] and [`LockTable`] are hash-partitioned into a
//! fixed number of shards ([`shard::DEFAULT_SHARDS`] by default,
//! configurable via the `with_shards` constructors), each behind its own
//! lock. The structures are internally synchronized — every operation takes
//! `&self` — so concurrent node workers touching different keys proceed in
//! parallel instead of serializing on one map-wide lock. Version-chain
//! reads additionally take an `Arc` snapshot of the chain and release the
//! shard lock before walking it. Per-shard contention counters are exposed
//! through [`MvStoreStats`], [`SvStoreStats`] and [`LockTableStats`], and
//! [`StorageStats`] aggregates them per engine for the benchmark harness.

#![deny(missing_docs)]

mod key;
mod locks;
mod mvstore;
mod recent;
mod replica;
pub mod shard;
mod stats;
mod svstore;
mod txn_id;

pub use key::{Key, Value};
pub use locks::{LockKind, LockTable, LockTableStats};
pub use mvstore::{MvShardStats, MvStore, MvStoreStats, Version, VersionChain};
pub use recent::{RecentSet, RecentTxnSet};
pub use replica::ReplicaMap;
pub use shard::DEFAULT_SHARDS;
pub use stats::StorageStats;
pub use svstore::{SvCell, SvShardStats, SvStore, SvStoreStats};
pub use txn_id::TxnId;

pub use sss_vclock::{NodeId, VectorClock};
