//! Multi-threaded smoke tests of the sharded storage layer: shard routing,
//! cross-thread visibility, and lock-table timeout semantics under
//! sharding.

use std::sync::Arc;
use std::time::Duration;

use sss_storage::{Key, LockKind, LockTable, MvStore, NodeId, SvStore, TxnId, Value, VectorClock};

fn txn(node: usize, seq: u64) -> TxnId {
    TxnId::new(NodeId(node), seq)
}

#[test]
fn concurrent_mvstore_writers_land_on_their_shards() {
    let store = Arc::new(MvStore::with_shards(8));
    let keys: Vec<Key> = (0..64).map(|i| Key::new(format!("k{i}"))).collect();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let store = Arc::clone(&store);
            let keys = keys.clone();
            std::thread::spawn(move || {
                for (i, key) in keys.iter().enumerate() {
                    let seq = (t * 1000 + i) as u64;
                    store.apply(
                        key.clone(),
                        Value::from_u64(seq),
                        VectorClock::from_entries(vec![seq]),
                        txn(t, seq),
                    );
                }
            })
        })
        .collect();
    for handle in threads {
        handle.join().unwrap();
    }

    // Every write is retained (4 versions per key, one per thread), and
    // every key is resident on exactly the shard the router names.
    assert_eq!(store.installed_versions(), 4 * 64);
    assert_eq!(store.key_count(), 64);
    let stats = store.stats();
    assert_eq!(stats.per_shard.len(), 8);
    for key in &keys {
        let shard = store.shard_of(key);
        assert!(
            stats.per_shard[shard].keys > 0,
            "shard {shard} must hold {key}"
        );
        assert_eq!(store.chain(key).unwrap().len(), 4);
    }
    // Shard key totals add up to the store total: no key landed anywhere
    // it should not be.
    let shard_keys: usize = stats.per_shard.iter().map(|s| s.keys).sum();
    assert_eq!(shard_keys, 64);
}

#[test]
fn concurrent_svstore_writers_do_not_lose_writes() {
    let store = Arc::new(SvStore::with_shards(4));
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..256u64 {
                    let key = Key::new(format!("k{}", i % 32));
                    store.write(key, Value::from_u64(i), txn(t, i));
                }
            })
        })
        .collect();
    for handle in threads {
        handle.join().unwrap();
    }
    assert_eq!(store.write_count(), 4 * 256);
    assert_eq!(store.key_count(), 32);
    // Per-key version counters saw every write exactly once: versions sum
    // to the write total.
    let version_sum: u64 = (0..32)
        .map(|i| store.version(&Key::new(format!("k{i}"))))
        .sum();
    assert_eq!(version_sum, 4 * 256);
    let stats = store.stats();
    let shard = store.shard_of(&Key::new("k0"));
    assert!(stats.per_shard[shard].writes > 0);
}

#[test]
fn lock_timeouts_survive_sharding() {
    // A table with more shards than keys still enforces exclusivity and
    // timeout-bounded acquisition exactly like the single-map original.
    let table = Arc::new(LockTable::with_shards(16));
    let hot = Key::new("hot");
    assert!(table.acquire(
        txn(0, 1),
        &hot,
        LockKind::Exclusive,
        Duration::from_millis(5)
    ));

    // A contender on the same key times out within its bound...
    let contender = {
        let table = Arc::clone(&table);
        let hot = hot.clone();
        std::thread::spawn(move || {
            table.acquire(
                txn(1, 2),
                &hot,
                LockKind::Exclusive,
                Duration::from_millis(5),
            )
        })
    };
    assert!(!contender.join().unwrap(), "conflicting grant");
    assert_eq!(table.stats().timeouts, 1);

    // ...while an acquirer of a different key (almost surely a different
    // shard) is untouched by the conflict.
    let cold = Key::new("cold");
    assert!(table.acquire(txn(2, 3), &cold, LockKind::Shared, Duration::from_millis(5)));

    // A waiter blocked on the held key is woken by the release, not by the
    // timeout: release-wakeup must cross the shard's condvar.
    let waiter = {
        let table = Arc::clone(&table);
        let hot = hot.clone();
        std::thread::spawn(move || {
            table.acquire(
                txn(3, 4),
                &hot,
                LockKind::Exclusive,
                Duration::from_millis(500),
            )
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    table.release_all(txn(0, 1));
    assert!(
        waiter.join().unwrap(),
        "waiter must be woken by the release"
    );
    assert!(table.holds(txn(3, 4), &hot, LockKind::Exclusive));
}

#[test]
fn concurrent_acquire_many_never_deadlocks_across_shards() {
    // Threads acquire overlapping key pairs in every order; sorted-order
    // acquisition plus timeouts must guarantee global progress, and every
    // failed batch must roll back completely.
    let table = Arc::new(LockTable::with_shards(4));
    let keys: Vec<Key> = (0..8).map(|i| Key::new(format!("k{i}"))).collect();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let table = Arc::clone(&table);
            let keys = keys.clone();
            std::thread::spawn(move || {
                let mut granted = 0u32;
                for round in 0..200u64 {
                    let id = txn(t, round);
                    let a = &keys[((round + t as u64) % 8) as usize];
                    let b = &keys[((round * 3 + 1) % 8) as usize];
                    let ok = table.acquire_many(
                        id,
                        [(a, LockKind::Exclusive), (b, LockKind::Shared)],
                        Duration::from_millis(2),
                    );
                    if ok {
                        granted += 1;
                        table.release_all(id);
                    } else {
                        // All-or-nothing: a failed batch must leave nothing.
                        assert!(!table.holds(id, a, LockKind::Exclusive));
                        assert!(!table.holds(id, b, LockKind::Shared));
                    }
                }
                granted
            })
        })
        .collect();
    let total: u32 = threads.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "at least some batches must be granted");
    assert_eq!(table.locked_keys(), 0, "all locks must be released");
}

#[test]
fn chain_snapshots_are_stable_under_concurrent_writes() {
    // A reader that grabbed a chain handle must see a frozen version list
    // while a writer keeps appending (the Arc copy-on-write fast path).
    let store = Arc::new(MvStore::with_shards(1));
    let key = Key::new("contended");
    store.apply(
        key.clone(),
        Value::from_u64(0),
        VectorClock::from_entries(vec![0]),
        txn(0, 0),
    );
    let writer = {
        let store = Arc::clone(&store);
        let key = key.clone();
        std::thread::spawn(move || {
            for i in 1..=500u64 {
                store.apply(
                    key.clone(),
                    Value::from_u64(i),
                    VectorClock::from_entries(vec![i]),
                    txn(0, i),
                );
            }
        })
    };
    for _ in 0..200 {
        let snapshot = store.chain(&key).expect("populated");
        let len = snapshot.len();
        // Walk the whole chain; the handle must stay internally consistent
        // (monotonically increasing clock entries, length frozen).
        let seen: Vec<u64> = snapshot.iter().map(|v| v.vc.get(0)).collect();
        assert_eq!(seen.len(), len);
        for pair in seen.windows(2) {
            assert!(pair[0] < pair[1], "chain order corrupted: {seen:?}");
        }
    }
    writer.join().unwrap();
    assert_eq!(store.chain(&key).unwrap().len(), 501);
}
