//! Property-based tests of the storage substrates: version chains keep
//! insertion order, the lock table never grants conflicting locks, and the
//! replica map is a deterministic, well-formed placement.

use std::time::Duration;

use proptest::prelude::*;
use sss_storage::{Key, LockKind, LockTable, MvStore, ReplicaMap, SvStore, TxnId, Value};
use sss_vclock::{NodeId, VectorClock};

fn txn(seq: u64) -> TxnId {
    TxnId::new(NodeId(0), seq)
}

proptest! {
    #[test]
    fn version_chain_preserves_installation_order(values in prop::collection::vec(0u64..1000, 1..40)) {
        let store = MvStore::new();
        let key = Key::new("k");
        for (i, v) in values.iter().enumerate() {
            store.apply(
                key.clone(),
                Value::from_u64(*v),
                VectorClock::from_entries(vec![i as u64 + 1]),
                txn(i as u64),
            );
        }
        let chain = store.chain(&key).expect("chain exists");
        prop_assert_eq!(chain.len(), values.len());
        prop_assert_eq!(chain.last().unwrap().value.to_u64(), Some(*values.last().unwrap()));
        // Newest-first iteration is the exact reverse of installation order.
        let newest_first: Vec<u64> = chain.iter_newest_first().map(|v| v.value.to_u64().unwrap()).collect();
        let mut reversed = values.clone();
        reversed.reverse();
        prop_assert_eq!(newest_first, reversed);
    }

    #[test]
    fn pruning_never_drops_the_latest_version(
        count in 1usize..60,
        keep in 1usize..10,
    ) {
        let store = MvStore::new();
        let key = Key::new("k");
        for i in 0..count {
            store.apply(
                key.clone(),
                Value::from_u64(i as u64),
                VectorClock::from_entries(vec![i as u64 + 1]),
                txn(i as u64),
            );
        }
        store.prune_all(keep);
        let chain = store.chain(&key).expect("chain exists");
        prop_assert!(chain.len() <= keep.max(1));
        prop_assert_eq!(chain.last().unwrap().value.to_u64(), Some(count as u64 - 1));
    }

    #[test]
    fn single_version_store_monotonic_versions(writes in prop::collection::vec(0u64..100, 1..50)) {
        let store = SvStore::new();
        let key = Key::new("cell");
        let mut last_version = 0;
        for (i, w) in writes.iter().enumerate() {
            let version = store.write(key.clone(), Value::from_u64(*w), txn(i as u64));
            prop_assert_eq!(version, last_version + 1);
            last_version = version;
        }
        prop_assert_eq!(store.version(&key), writes.len() as u64);
        prop_assert_eq!(store.read(&key).unwrap().value.to_u64(), Some(*writes.last().unwrap()));
    }

    #[test]
    fn replica_map_is_well_formed(
        nodes in 1usize..12,
        degree_seed in 1usize..12,
        key_index in 0u64..500,
    ) {
        let degree = degree_seed.min(nodes);
        let map = ReplicaMap::new(nodes, degree);
        let key = Key::new(format!("key{key_index}"));
        let replicas = map.replicas(&key);
        prop_assert_eq!(replicas.len(), degree);
        // Replica sets have no duplicates, contain the primary, and agree
        // with `is_replica`.
        let mut dedup = replicas.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), degree);
        prop_assert!(replicas.contains(&map.primary(&key)));
        for n in 0..nodes {
            prop_assert_eq!(map.is_replica(NodeId(n), &key), replicas.contains(&NodeId(n)));
        }
        // Determinism.
        prop_assert_eq!(map.replicas(&key), ReplicaMap::new(nodes, degree).replicas(&key));
    }

    #[test]
    fn lock_table_grants_are_mutually_compatible(
        ops in prop::collection::vec((0u64..6, 0u8..4, prop::bool::ANY), 1..60),
    ) {
        // Sequentially apply acquire/release operations and check the
        // compatibility invariant after every step: at most one exclusive
        // holder per key, and never exclusive + foreign shared.
        let table = LockTable::new();
        let timeout = Duration::from_micros(100);
        let mut held: std::collections::HashMap<(u64, u8), LockKind> = std::collections::HashMap::new();
        for (txn_seq, key_idx, exclusive) in ops {
            let id = txn(txn_seq);
            let key = Key::new(format!("k{key_idx}"));
            let kind = if exclusive { LockKind::Exclusive } else { LockKind::Shared };
            if table.acquire(id, &key, kind, timeout) {
                held.insert((txn_seq, key_idx), kind);
                prop_assert!(table.holds(id, &key, kind));
            }
            // Invariant: if some txn holds exclusive on a key, no other txn
            // holds anything on it.
            for ((a_txn, a_key), a_kind) in &held {
                if *a_kind == LockKind::Exclusive && table.holds(txn(*a_txn), &Key::new(format!("k{a_key}")), LockKind::Exclusive) {
                    for ((b_txn, b_key), b_kind) in &held {
                        if a_key == b_key && a_txn != b_txn {
                            let other_holds = table.holds(
                                txn(*b_txn),
                                &Key::new(format!("k{b_key}")),
                                *b_kind,
                            );
                            prop_assert!(
                                !other_holds,
                                "exclusive lock of T{} on k{} coexists with T{}",
                                a_txn, a_key, b_txn
                            );
                        }
                    }
                }
            }
        }
        // Releasing everything empties the table.
        for (txn_seq, _) in held.keys() {
            table.release_all(txn(*txn_seq));
        }
        prop_assert_eq!(table.locked_keys(), 0);
    }

    #[test]
    fn value_u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(Value::from_u64(v).to_u64(), Some(v));
    }

    #[test]
    fn key_string_roundtrip(name in "[a-z0-9:_-]{1,32}") {
        let key = Key::new(&name);
        prop_assert_eq!(key.as_str(), name.as_str());
        prop_assert_eq!(Key::from(name.clone()), key);
    }
}
