//! Micro-benchmarks of the storage substrates: lock-table acquisition and
//! multi-version chain visibility walks.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sss_storage::{Key, LockKind, LockTable, MvStore, TxnId, Value};
use sss_vclock::{NodeId, VectorClock};

fn txn(seq: u64) -> TxnId {
    TxnId::new(NodeId(0), seq)
}

fn bench_lock_table(c: &mut Criterion) {
    c.bench_function("lock_table/acquire_release_disjoint", |bencher| {
        let table = LockTable::new();
        let keys: Vec<Key> = (0..16).map(|i| Key::new(format!("k{i}"))).collect();
        let mut next = 0u64;
        bencher.iter(|| {
            next += 1;
            let id = txn(next);
            let requests = keys.iter().map(|k| (k, LockKind::Exclusive));
            assert!(table.acquire_many(id, requests, Duration::from_millis(1)));
            table.release_all(id);
        })
    });
}

fn bench_version_chain(c: &mut Criterion) {
    c.bench_function("mvstore/visibility_walk", |bencher| {
        let store = MvStore::new();
        let key = Key::new("hot");
        for i in 1..=64u64 {
            store.apply(
                key.clone(),
                Value::from_u64(i),
                VectorClock::from_entries(vec![i, i / 2]),
                txn(i),
            );
        }
        bencher.iter(|| {
            let chain = store.chain(&key).expect("populated");
            std::hint::black_box(chain.latest_matching(|v| v.vc.get(0) <= 32).cloned())
        })
    });
}

criterion_group!(benches, bench_lock_table, bench_version_chain);
criterion_main!(benches);
