//! Deterministic fault injection for the in-process SSS cluster.
//!
//! The paper (§II) assumes *reliable asynchronous channels*: messages may
//! be delayed arbitrarily, reordered and duplicated, and nodes may stall,
//! but nothing in flight is ever lost. Every guarantee this repository
//! verifies — external consistency of update transactions, abort-free
//! read-only transactions — is claimed under exactly that adversary, yet
//! the benchmark transport is a perfectly behaved network. This crate
//! supplies the missing adversary:
//!
//! * [`FaultPlan`] — pure data describing one run's faults: per-link jitter
//!   bursts, delay spikes, reordering holds, duplication and probabilistic
//!   message loss ([`LinkFault`] over a [`LinkSelector`]), transient
//!   network partitions with scheduled heals ([`PartitionWindow`]), node
//!   pause/resume windows ([`PauseWindow`]), and crash-stop windows with
//!   scheduled restarts ([`CrashWindow`]). Plans are seeded and
//!   comparable, so the same plan replays the same adversary.
//! * [`FaultInjector`] — executes a plan against a running cluster by
//!   implementing the `sss-net` [`FaultInterposer`]
//!   hook (consulted by the transport on every send), by driving the
//!   per-node [`PauseControl`] gates from a
//!   scheduler thread, and by firing the cluster-attached [`CrashHook`]
//!   at crash/restart instants.
//!
//! Message loss and crashes violate the paper's *reliable asynchronous
//! channel* assumption (§II), so they are only safety-preserving when the
//! cluster compensates: plans whose
//! [`FaultPlan::needs_reliable_delivery`] returns `true` require the
//! `sss-net` retransmission layer (acks, seeded-backoff retransmits,
//! receiver dedup) and, for crashes, the node-level recovery protocol.
//! The delay-only faults (jitter, spikes, reordering, duplication,
//! partitions-that-heal, pauses) remain safety-preserving on the bare
//! transport, exactly as before.

mod injector;
mod plan;

pub use injector::{CrashHook, FaultInjector};
pub use plan::{CrashWindow, FaultPlan, LinkFault, LinkSelector, PartitionWindow, PauseWindow};

pub use sss_net::{FaultInterposer, PauseControl, SendPlan};
pub use sss_vclock::NodeId;
