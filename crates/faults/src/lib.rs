//! Deterministic fault injection for the in-process SSS cluster.
//!
//! The paper (§II) assumes *reliable asynchronous channels*: messages may
//! be delayed arbitrarily, reordered and duplicated, and nodes may stall,
//! but nothing in flight is ever lost. Every guarantee this repository
//! verifies — external consistency of update transactions, abort-free
//! read-only transactions — is claimed under exactly that adversary, yet
//! the benchmark transport is a perfectly behaved network. This crate
//! supplies the missing adversary:
//!
//! * [`FaultPlan`] — pure data describing one run's faults: per-link jitter
//!   bursts, delay spikes, reordering holds and duplication
//!   ([`LinkFault`] over a [`LinkSelector`]), transient network partitions
//!   with scheduled heals ([`PartitionWindow`]), and node pause/resume
//!   windows ([`PauseWindow`]). Plans are seeded and comparable, so the
//!   same plan replays the same adversary.
//! * [`FaultInjector`] — executes a plan against a running cluster by
//!   implementing the `sss-net` [`FaultInterposer`]
//!   hook (consulted by the transport on every send) and by driving the
//!   per-node [`PauseControl`] gates from a
//!   scheduler thread.
//!
//! Message *loss* and node *crashes* are deliberately inexpressible: the
//! paper's safety argument needs eventual delivery, so a "partition" holds
//! crossing messages and floods them in at heal time, and a "pause" stops a
//! node's workers without dropping its mailbox. Consequently every fault
//! plan is safety-preserving, and a consistency-checker failure observed
//! under any plan indicates a protocol bug rather than a harness artifact.

mod injector;
mod plan;

pub use injector::FaultInjector;
pub use plan::{FaultPlan, LinkFault, LinkSelector, PartitionWindow, PauseWindow};

pub use sss_net::{FaultInterposer, PauseControl, SendPlan};
pub use sss_vclock::NodeId;
