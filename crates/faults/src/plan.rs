//! Declarative, seeded fault plans.

use std::time::Duration;

/// Which directed links of the cluster a [`LinkFault`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSelector {
    /// Every inter-node link (self-links are never faulted).
    All,
    /// Every link whose sender is the given node.
    From(usize),
    /// Every link whose receiver is the given node.
    To(usize),
    /// Exactly one direction of one link — the building block of
    /// *asymmetric* faults, where `a -> b` is slow but `b -> a` is clean.
    Directed {
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
    },
    /// Both directions between two nodes.
    Between(usize, usize),
}

impl LinkSelector {
    /// `true` if the selector covers the directed link `from -> to`.
    pub fn matches(&self, from: usize, to: usize) -> bool {
        match *self {
            LinkSelector::All => true,
            LinkSelector::From(f) => from == f,
            LinkSelector::To(t) => to == t,
            LinkSelector::Directed { from: f, to: t } => from == f && to == t,
            LinkSelector::Between(a, b) => (from == a && to == b) || (from == b && to == a),
        }
    }
}

/// Per-message probabilistic faults on a set of links.
///
/// All percentages are 0-100 and sampled from the plan's seeded per-link
/// random streams, so the fault decisions for a given message sequence are
/// reproducible. Most faults are delay- or duplication-shaped;
/// [`LinkFault::loss`] drops messages outright and therefore requires the
/// reliable-delivery layer underneath (see `sss-net`'s transport
/// reliability) for the protocol's safety arguments to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFault {
    /// Links this fault applies to.
    pub links: LinkSelector,
    /// Percentage of matching messages that are dropped on the wire (every
    /// copy, including duplicates the same rule would have produced). The
    /// loss draw is sampled *first* from the link's random stream, before
    /// any delay-shaped draws.
    pub loss_percent: u8,
    /// Uniformly distributed extra delay (0..=jitter) added to every
    /// matching message — a jitter burst when combined with a short window.
    pub jitter: Duration,
    /// Percentage of matching messages that receive a delay spike.
    pub spike_percent: u8,
    /// Extra delay of a spiked message.
    pub spike: Duration,
    /// Percentage of matching messages that are held back long enough for
    /// later messages on the same link to overtake them (reordering).
    pub reorder_percent: u8,
    /// How long a reordered message is held back.
    pub reorder_hold: Duration,
    /// Percentage of matching messages that are delivered twice.
    pub duplicate_percent: u8,
    /// Extra delay of the duplicated copy relative to the original.
    pub duplicate_skew: Duration,
}

impl LinkFault {
    /// A fault rule on `links` with no effects; compose with the builder
    /// methods below.
    pub fn on(links: LinkSelector) -> Self {
        LinkFault {
            links,
            loss_percent: 0,
            jitter: Duration::ZERO,
            spike_percent: 0,
            spike: Duration::ZERO,
            reorder_percent: 0,
            reorder_hold: Duration::ZERO,
            duplicate_percent: 0,
            duplicate_skew: Duration::ZERO,
        }
    }

    /// Drops `percent`% of matching messages on the wire.
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    pub fn loss(mut self, percent: u8) -> Self {
        assert!(percent <= 100, "loss percentage must be 0-100");
        self.loss_percent = percent;
        self
    }

    /// Adds uniform jitter of up to `jitter` to every matching message.
    pub fn jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Gives `percent`% of matching messages a delay spike of `spike`.
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    pub fn spike(mut self, percent: u8, spike: Duration) -> Self {
        assert!(percent <= 100, "spike percentage must be 0-100");
        self.spike_percent = percent;
        self.spike = spike;
        self
    }

    /// Holds `percent`% of matching messages back by `hold` so that later
    /// messages overtake them.
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    pub fn reorder(mut self, percent: u8, hold: Duration) -> Self {
        assert!(percent <= 100, "reorder percentage must be 0-100");
        self.reorder_percent = percent;
        self.reorder_hold = hold;
        self
    }

    /// Duplicates `percent`% of matching messages, delivering the copy
    /// `skew` later than the original.
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    pub fn duplicate(mut self, percent: u8, skew: Duration) -> Self {
        assert!(percent <= 100, "duplicate percentage must be 0-100");
        self.duplicate_percent = percent;
        self.duplicate_skew = skew;
        self
    }
}

/// A transient network partition: for the given window the `isolated` nodes
/// cannot exchange messages with the rest of the cluster.
///
/// Because channels are reliable in the system model, a partition does not
/// drop messages — it *holds* them and delivers the backlog when the
/// partition heals, exactly like a severed-then-restored cable with
/// retransmission underneath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// The nodes cut off from the rest of the cluster. Traffic among the
    /// isolated nodes themselves still flows.
    pub isolated: Vec<usize>,
    /// When the partition starts, relative to the plan being armed.
    pub start: Duration,
    /// How long the partition lasts before healing.
    pub duration: Duration,
}

impl PartitionWindow {
    /// `true` if the directed link `from -> to` crosses the partition.
    pub fn severs(&self, from: usize, to: usize) -> bool {
        self.isolated.contains(&from) != self.isolated.contains(&to)
    }

    /// The instant (relative to arming) at which the partition heals.
    pub fn heals_at(&self) -> Duration {
        self.start + self.duration
    }
}

/// A scheduled node pause: for the given window the node's workers stop
/// draining its mailbox (the node is alive and reachable but makes no
/// progress), then resume and drain the backlog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseWindow {
    /// The paused node.
    pub node: usize,
    /// When the pause starts, relative to the plan being armed.
    pub start: Duration,
    /// How long the node stays paused.
    pub duration: Duration,
}

/// A scheduled crash-stop fault: at `start` the node loses its volatile
/// state and every message queued in its mailbox, and stops processing; at
/// `start + duration` it restarts empty and recovers its protocol state from
/// its peers. Unlike a [`PauseWindow`] — which only stalls the node and
/// later drains the backlog — a crash genuinely destroys in-flight work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: usize,
    /// When the crash happens, relative to the plan being armed.
    pub start: Duration,
    /// How long the node stays down before restarting. Must be non-zero;
    /// a run's scheduled crashes always restart (permanent failures are
    /// modelled by crashing past the end of the workload).
    pub duration: Duration,
}

impl CrashWindow {
    /// The instant (relative to arming) at which the node restarts.
    pub fn restarts_at(&self) -> Duration {
        self.start + self.duration
    }
}

/// A complete, seeded description of the faults injected into one run.
///
/// The plan is pure data: it can be cloned, compared, printed and replayed.
/// All probabilistic decisions derive from `seed` through per-link random
/// streams, and all scheduled windows are relative to the instant the plan
/// is armed, so the same plan describes the same adversary on every run.
///
/// Delay-shaped faults (jitter, spikes, reordering, duplication, partitions,
/// pauses) preserve the asynchronous system model of the paper (§II):
/// messages are late but never lost. [`LinkFault::loss`] and [`CrashWindow`]
/// step outside that model — they require the reliable-delivery layer and
/// the restart/recovery protocol to re-establish it. External consistency
/// and read-only abort freedom must survive any plan; a consistency checker
/// failure under faults is a protocol bug, not a harness artifact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed of the per-link random streams.
    pub seed: u64,
    /// Probabilistic per-link faults.
    pub link_faults: Vec<LinkFault>,
    /// Scheduled transient partitions.
    pub partitions: Vec<PartitionWindow>,
    /// Scheduled node pauses.
    pub pauses: Vec<PauseWindow>,
    /// Scheduled crash-stop/restart faults.
    pub crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a probabilistic per-link fault rule.
    pub fn link_fault(mut self, fault: LinkFault) -> Self {
        self.link_faults.push(fault);
        self
    }

    /// Isolates `isolated` from the rest of the cluster for
    /// `[start, start + duration)`.
    pub fn partition(
        mut self,
        isolated: impl IntoIterator<Item = usize>,
        start: Duration,
        duration: Duration,
    ) -> Self {
        self.partitions.push(PartitionWindow {
            isolated: isolated.into_iter().collect(),
            start,
            duration,
        });
        self
    }

    /// Pauses `node` for `[start, start + duration)`.
    pub fn pause(mut self, node: usize, start: Duration, duration: Duration) -> Self {
        self.pauses.push(PauseWindow {
            node,
            start,
            duration,
        });
        self
    }

    /// Crashes `node` at `start`, restarting it `duration` later.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero (scheduled crashes always restart).
    pub fn crash(mut self, node: usize, start: Duration, duration: Duration) -> Self {
        assert!(!duration.is_zero(), "crash windows must restart");
        self.crashes.push(CrashWindow {
            node,
            start,
            duration,
        });
        self
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty()
            && self.partitions.is_empty()
            && self.pauses.is_empty()
            && self.crashes.is_empty()
    }

    /// `true` when the plan can drop or destroy messages (link loss or a
    /// crash that purges a mailbox) — the faults that need the transport's
    /// reliable-delivery layer underneath to preserve the system model.
    pub fn needs_reliable_delivery(&self) -> bool {
        !self.crashes.is_empty() || self.link_faults.iter().any(|f| f.loss_percent > 0)
    }

    /// The latest scheduled event of the plan (partition heal, pause end or
    /// crash restart); zero for purely probabilistic plans. Useful for
    /// sizing workloads so the run outlives every scheduled fault.
    pub fn last_scheduled_event(&self) -> Duration {
        let heal = self
            .partitions
            .iter()
            .map(PartitionWindow::heals_at)
            .max()
            .unwrap_or(Duration::ZERO);
        let resume = self
            .pauses
            .iter()
            .map(|p| p.start + p.duration)
            .max()
            .unwrap_or(Duration::ZERO);
        let restart = self
            .crashes
            .iter()
            .map(CrashWindow::restarts_at)
            .max()
            .unwrap_or(Duration::ZERO);
        heal.max(resume).max(restart)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_match_directed_links() {
        assert!(LinkSelector::All.matches(0, 1));
        assert!(LinkSelector::From(2).matches(2, 0));
        assert!(!LinkSelector::From(2).matches(0, 2));
        assert!(LinkSelector::To(1).matches(3, 1));
        assert!(LinkSelector::Directed { from: 0, to: 1 }.matches(0, 1));
        assert!(!LinkSelector::Directed { from: 0, to: 1 }.matches(1, 0));
        assert!(LinkSelector::Between(0, 1).matches(1, 0));
        assert!(!LinkSelector::Between(0, 1).matches(0, 2));
    }

    #[test]
    fn partitions_sever_only_crossing_links() {
        let p = PartitionWindow {
            isolated: vec![0, 1],
            start: Duration::from_millis(5),
            duration: Duration::from_millis(10),
        };
        assert!(p.severs(0, 2));
        assert!(p.severs(2, 1));
        assert!(!p.severs(0, 1), "traffic among isolated nodes still flows");
        assert!(!p.severs(2, 3), "traffic in the majority side still flows");
        assert_eq!(p.heals_at(), Duration::from_millis(15));
    }

    #[test]
    fn plan_builder_composes_and_reports_schedule() {
        let plan = FaultPlan::new(7)
            .link_fault(
                LinkFault::on(LinkSelector::All)
                    .jitter(Duration::from_micros(50))
                    .duplicate(10, Duration::from_micros(20)),
            )
            .partition([0], Duration::from_millis(10), Duration::from_millis(30))
            .pause(1, Duration::from_millis(20), Duration::from_millis(50));
        assert!(!plan.is_empty());
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.last_scheduled_event(), Duration::from_millis(70));
        assert_eq!(plan, plan.clone());
        assert!(FaultPlan::new(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "0-100")]
    fn invalid_percentages_are_rejected() {
        let _ = LinkFault::on(LinkSelector::All).spike(101, Duration::ZERO);
    }

    #[test]
    fn loss_and_crashes_flag_the_reliability_requirement() {
        assert!(!FaultPlan::new(1).needs_reliable_delivery());
        let delay_only = FaultPlan::new(1)
            .link_fault(LinkFault::on(LinkSelector::All).jitter(Duration::from_micros(10)))
            .pause(0, Duration::ZERO, Duration::from_millis(1));
        assert!(!delay_only.needs_reliable_delivery());
        let lossy =
            FaultPlan::new(1).link_fault(LinkFault::on(LinkSelector::Between(0, 1)).loss(25));
        assert!(lossy.needs_reliable_delivery());
        let crashy = FaultPlan::new(1).crash(2, Duration::from_millis(5), Duration::from_millis(8));
        assert!(crashy.needs_reliable_delivery());
        assert_eq!(
            crashy.last_scheduled_event(),
            Duration::from_millis(13),
            "crash restarts count as scheduled events"
        );
    }

    #[test]
    #[should_panic(expected = "must restart")]
    fn zero_length_crash_windows_are_rejected() {
        let _ = FaultPlan::new(1).crash(0, Duration::ZERO, Duration::ZERO);
    }
}
