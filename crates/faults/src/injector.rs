//! The runtime half of the subsystem: turns a [`FaultPlan`] into transport
//! interposition and scheduled pause/resume actions.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sss_net::{FaultInterposer, NodeId, PauseControl, SendPlan};
use sss_vclock::runtime::SchedulerHandle;

use crate::plan::FaultPlan;

/// How often the pause scheduler re-checks its stop flag while waiting for
/// the next scheduled event.
const SCHEDULER_TICK: Duration = Duration::from_millis(1);

/// Callback the cluster attaches so crash-stop windows reach it: invoked
/// with `(node, true)` when a scheduled crash begins and `(node, false)`
/// when the node restarts. The injector itself only tracks *which* nodes
/// are down; purging mailboxes, wiping volatile protocol state and running
/// recovery is the cluster's job.
pub type CrashHook = Arc<dyn Fn(usize, bool) + Send + Sync>;

/// A scheduled fault action. Variant order is the tie-break for events at
/// the same instant on the same node: recoveries (resume/restart) sort
/// before outages (pause/crash) so back-to-back windows hand over cleanly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum FaultEvent {
    Resume,
    Restart,
    Pause,
    Crash,
}

/// Executes a [`FaultPlan`] against a running cluster.
///
/// The injector plays two roles:
///
/// * as a [`FaultInterposer`] it is consulted by the transport on every
///   send and translates the plan's partitions and per-link faults into
///   [`SendPlan`]s (extra delays and duplicated copies);
/// * once [`FaultInjector::arm`]ed, a scheduler thread walks the plan's
///   pause windows and flips the [`PauseControl`]s the cluster attached.
///
/// Faults are inert until `arm` is called, so a harness can boot a cluster
/// and pre-populate its key space fault-free, then arm the plan for the
/// measured window. [`FaultInjector::disarm`] (also run on drop and by the
/// cluster's shutdown) stops the scheduler and resumes every paused node.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Set exactly once by [`FaultInjector::arm`]; reads on the send hot
    /// path are lock-free after initialization.
    armed_at: std::sync::OnceLock<Instant>,
    links: Mutex<HashMap<(usize, usize), StdRng>>,
    controls: Arc<Mutex<Vec<Arc<PauseControl>>>>,
    /// Cluster-attached callback for crash/restart events; `None` until the
    /// cluster registers one, in which case crash windows only mark the
    /// node in `crashed` (useful for injector-level tests).
    crash_hook: Arc<Mutex<Option<CrashHook>>>,
    /// Nodes currently inside a crash window. `disarm` restarts the
    /// leftovers before it resumes pause gates, so an abandoned scenario
    /// never leaves a node permanently dead.
    crashed: Arc<Mutex<HashSet<usize>>>,
    scheduler: Mutex<Option<std::thread::JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
    /// Simulation scheduler, when the cluster runs under one: pause windows
    /// become virtual-time events instead of a scheduler thread, and the
    /// armed epoch is a virtual instant.
    sim: std::sync::OnceLock<SchedulerHandle>,
    /// Tokens of scheduled (not yet fired) virtual pause/resume events, so
    /// disarm can cancel the remainder of the plan.
    sim_events: Mutex<Vec<u64>>,
}

impl FaultInjector {
    /// Creates an inert injector for `plan`.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultInjector {
            plan,
            armed_at: std::sync::OnceLock::new(),
            links: Mutex::new(HashMap::new()),
            controls: Arc::new(Mutex::new(Vec::new())),
            crash_hook: Arc::new(Mutex::new(None)),
            crashed: Arc::new(Mutex::new(HashSet::new())),
            scheduler: Mutex::new(None),
            stop: Arc::new(AtomicBool::new(false)),
            sim: std::sync::OnceLock::new(),
            sim_events: Mutex::new(Vec::new()),
        })
    }

    /// Runs scheduled pause windows on a simulation scheduler instead of a
    /// real-time scheduler thread. Must be called before
    /// [`FaultInjector::arm`]; write-once, later calls are no-ops.
    pub fn set_scheduler(&self, scheduler: SchedulerHandle) {
        let _ = self.sim.set(scheduler);
    }

    /// The plan this injector executes.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Attaches the per-node pause gates of a booted cluster, indexed by
    /// node. Called by the cluster during start-up; scheduled pauses of
    /// nodes without an attached control are ignored.
    pub fn attach_pause_controls(&self, controls: Vec<Arc<PauseControl>>) {
        *self.controls.lock() = controls;
    }

    /// Attaches the cluster's crash/restart callback. Called by the cluster
    /// during start-up, before [`FaultInjector::arm`]; crash windows fired
    /// without a hook only update the injector's crashed-node set.
    pub fn attach_crash_hook(&self, hook: CrashHook) {
        *self.crash_hook.lock() = Some(hook);
    }

    /// `true` while `node` is inside a scheduled crash window (crashed and
    /// not yet restarted).
    pub fn is_node_crashed(&self, node: usize) -> bool {
        self.crashed.lock().contains(&node)
    }

    /// Fires one scheduled fault action against the attached controls/hook.
    fn fire(
        controls: &Mutex<Vec<Arc<PauseControl>>>,
        crash_hook: &Mutex<Option<CrashHook>>,
        crashed: &Mutex<HashSet<usize>>,
        node: usize,
        event: FaultEvent,
    ) {
        match event {
            FaultEvent::Pause => {
                if let Some(control) = controls.lock().get(node) {
                    control.pause();
                }
            }
            FaultEvent::Resume => {
                if let Some(control) = controls.lock().get(node) {
                    control.resume();
                }
            }
            FaultEvent::Crash => {
                crashed.lock().insert(node);
                // Clone out of the lock: the hook purges mailboxes and may
                // take its time; holding the hook lock would serialize it
                // against disarm.
                let hook = crash_hook.lock().clone();
                if let Some(hook) = hook {
                    hook(node, true);
                }
            }
            FaultEvent::Restart => {
                crashed.lock().remove(&node);
                let hook = crash_hook.lock().clone();
                if let Some(hook) = hook {
                    hook(node, false);
                }
            }
        }
    }

    /// Arms the plan: scheduled windows are measured from this instant and
    /// probabilistic faults start firing. Idempotent — only the first call
    /// sets the epoch.
    pub fn arm(&self) {
        let epoch = match self.sim.get() {
            Some(scheduler) => scheduler.now(),
            None => Instant::now(),
        };
        if self.armed_at.set(epoch).is_err() {
            return;
        }
        if self.plan.pauses.is_empty() && self.plan.crashes.is_empty() {
            return;
        }
        // Coalesce overlapping pause windows per node before flattening to
        // pause/resume events: the gate is a boolean, so the end of an
        // inner window must not resume a node whose outer window is still
        // active.
        let mut per_node: HashMap<usize, Vec<(Duration, Duration)>> = HashMap::new();
        for pause in &self.plan.pauses {
            per_node
                .entry(pause.node)
                .or_default()
                .push((pause.start, pause.start + pause.duration));
        }
        let mut events: Vec<(Duration, usize, FaultEvent)> = Vec::new();
        for (node, mut windows) in per_node {
            windows.sort();
            let mut merged: Vec<(Duration, Duration)> = Vec::new();
            for (start, end) in windows {
                match merged.last_mut() {
                    Some((_, last_end)) if start <= *last_end => {
                        *last_end = (*last_end).max(end);
                    }
                    _ => merged.push((start, end)),
                }
            }
            for (start, end) in merged {
                events.push((start, node, FaultEvent::Pause));
                events.push((end, node, FaultEvent::Resume));
            }
        }
        // Crash windows always restart (the plan builder enforces a
        // non-zero duration), so each contributes exactly one crash and one
        // restart event. Unlike pauses they are not coalesced: overlapping
        // crash windows on one node are a plan-authoring error.
        for crash in &self.plan.crashes {
            events.push((crash.start, crash.node, FaultEvent::Crash));
            events.push((crash.restarts_at(), crash.node, FaultEvent::Restart));
        }
        events.sort_by_key(|(at, node, event)| (*at, *node, *event));
        if let Some(scheduler) = self.sim.get() {
            // Simulated: each action is a virtual-time event; the sort
            // above fixes the order of same-instant events.
            let mut tokens = self.sim_events.lock();
            for (at, node, event) in events {
                let controls = Arc::clone(&self.controls);
                let crash_hook = Arc::clone(&self.crash_hook);
                let crashed = Arc::clone(&self.crashed);
                tokens.push(scheduler.schedule(
                    epoch + at,
                    Box::new(move || {
                        FaultInjector::fire(&controls, &crash_hook, &crashed, node, event);
                    }),
                ));
            }
            return;
        }
        let controls = Arc::clone(&self.controls);
        let crash_hook = Arc::clone(&self.crash_hook);
        let crashed = Arc::clone(&self.crashed);
        let stop = Arc::clone(&self.stop);
        let handle = std::thread::Builder::new()
            .name("sss-fault-scheduler".into())
            .spawn(move || {
                for (at, node, event) in events {
                    loop {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        let elapsed = epoch.elapsed();
                        if elapsed >= at {
                            break;
                        }
                        std::thread::sleep(SCHEDULER_TICK.min(at - elapsed));
                    }
                    FaultInjector::fire(&controls, &crash_hook, &crashed, node, event);
                }
            })
            .expect("failed to spawn fault scheduler");
        *self.scheduler.lock() = Some(handle);
    }

    /// `true` once the plan has been armed.
    pub fn is_armed(&self) -> bool {
        self.armed_at.get().is_some()
    }

    /// Stops the pause scheduler and resumes every attached node.
    /// Idempotent; also invoked on drop and by cluster shutdown, so a
    /// harness abandoned mid-scenario never leaves nodes paused.
    pub fn disarm(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.scheduler.lock().take() {
            let _ = handle.join();
        }
        if let Some(scheduler) = self.sim.get() {
            for token in self.sim_events.lock().drain(..) {
                scheduler.cancel(token);
            }
        }
        // Restart nodes whose restart event was cancelled above (or whose
        // window outlived the scenario) *before* resuming pause gates, so a
        // node never comes back paused-but-alive with a purged mailbox.
        let mut leftover: Vec<usize> = self.crashed.lock().drain().collect();
        if !leftover.is_empty() {
            leftover.sort_unstable();
            let hook = self.crash_hook.lock().clone();
            if let Some(hook) = hook {
                for node in leftover {
                    hook(node, false);
                }
            }
        }
        for control in self.controls.lock().iter() {
            control.resume();
        }
    }

    fn link_rng_seed(&self, from: usize, to: usize) -> u64 {
        self.plan
            .seed
            .wrapping_add(((from as u64) << 32 | to as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl Drop for FaultInjector {
    fn drop(&mut self) {
        self.disarm();
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("armed", &self.is_armed())
            .finish()
    }
}

impl FaultInterposer for FaultInjector {
    fn plan(&self, from: NodeId, to: NodeId, now: Instant) -> SendPlan {
        // A node can always talk to itself, and an unarmed plan is inert.
        if from == to {
            return SendPlan::pass();
        }
        let Some(epoch) = self.armed_at.get().copied() else {
            return SendPlan::pass();
        };
        let elapsed = now.saturating_duration_since(epoch);
        let (from_idx, to_idx) = (from.index(), to.index());

        // Transient partitions hold crossing messages until the heal: the
        // extra delay is exactly the time remaining in the longest active
        // severing window, so the backlog floods in at heal time.
        let mut extra = Duration::ZERO;
        for partition in &self.plan.partitions {
            if elapsed >= partition.start
                && elapsed < partition.heals_at()
                && partition.severs(from_idx, to_idx)
            {
                extra = extra.max(partition.heals_at() - elapsed);
            }
        }

        let mut duplicate = None;
        let matching: Vec<&crate::plan::LinkFault> = self
            .plan
            .link_faults
            .iter()
            .filter(|f| f.links.matches(from_idx, to_idx))
            .collect();
        if matching.is_empty() {
            // Partition-only / pause-only plans never touch the shared
            // per-link RNG map, keeping the send hot path lock-free.
            return SendPlan::delayed(extra);
        }
        let mut links = self.links.lock();
        for fault in matching {
            let rng = links
                .entry((from_idx, to_idx))
                .or_insert_with(|| StdRng::seed_from_u64(self.link_rng_seed(from_idx, to_idx)));
            // The loss draw comes FIRST in each fault's draw order: a lost
            // message consumes exactly one draw from the link's RNG stream
            // and skips the remaining shaping draws, which keeps replay
            // deterministic per seed regardless of what else the rule
            // configures.
            if fault.loss_percent > 0 && rng.gen_range(0..100u8) < fault.loss_percent {
                return SendPlan::lost();
            }
            if !fault.jitter.is_zero() {
                let nanos = rng.gen_range(0..=fault.jitter.as_nanos() as u64);
                extra += Duration::from_nanos(nanos);
            }
            if fault.spike_percent > 0 && rng.gen_range(0..100u8) < fault.spike_percent {
                extra += fault.spike;
            }
            if fault.reorder_percent > 0 && rng.gen_range(0..100u8) < fault.reorder_percent {
                extra += fault.reorder_hold;
            }
            if fault.duplicate_percent > 0 && rng.gen_range(0..100u8) < fault.duplicate_percent {
                duplicate = Some(fault.duplicate_skew);
            }
        }

        let plan = SendPlan::delayed(extra);
        match duplicate {
            // The copy's delay is computed from the *final* extra delay, so
            // the duplicate is guaranteed to trail the original by `skew`
            // even when a later rule added more delay to the original.
            Some(skew) => plan.duplicate(extra + skew),
            None => plan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{LinkFault, LinkSelector};

    fn interpose(injector: &FaultInjector, from: usize, to: usize) -> SendPlan {
        FaultInterposer::plan(injector, NodeId(from), NodeId(to), Instant::now())
    }

    #[test]
    fn unarmed_injector_is_inert() {
        let injector = FaultInjector::new(
            FaultPlan::new(1)
                .link_fault(LinkFault::on(LinkSelector::All).spike(100, Duration::from_millis(5))),
        );
        assert!(!injector.is_armed());
        assert!(interpose(&injector, 0, 1).is_pass());
    }

    #[test]
    fn self_links_are_never_faulted() {
        let injector = FaultInjector::new(
            FaultPlan::new(1)
                .link_fault(LinkFault::on(LinkSelector::All).spike(100, Duration::from_millis(5))),
        );
        injector.arm();
        assert!(interpose(&injector, 2, 2).is_pass());
        assert!(!interpose(&injector, 0, 1).is_pass());
    }

    #[test]
    fn active_partition_holds_messages_until_the_heal() {
        let injector = FaultInjector::new(FaultPlan::new(1).partition(
            [0],
            Duration::ZERO,
            Duration::from_millis(50),
        ));
        injector.arm();
        let held = interpose(&injector, 0, 1);
        let delay = held.deliveries()[0];
        assert!(delay > Duration::from_millis(25), "crossing link is held");
        assert!(delay <= Duration::from_millis(50), "held only to the heal");
        assert!(
            interpose(&injector, 1, 2).is_pass(),
            "non-crossing links are unaffected"
        );
    }

    #[test]
    fn healed_partition_stops_holding() {
        let injector = FaultInjector::new(FaultPlan::new(1).partition(
            [0],
            Duration::ZERO,
            Duration::from_millis(5),
        ));
        injector.arm();
        std::thread::sleep(Duration::from_millis(10));
        assert!(interpose(&injector, 0, 1).is_pass());
    }

    #[test]
    fn duplication_fires_at_the_configured_rate() {
        let injector = FaultInjector::new(FaultPlan::new(9).link_fault(
            LinkFault::on(LinkSelector::All).duplicate(100, Duration::from_micros(10)),
        ));
        injector.arm();
        for _ in 0..10 {
            assert_eq!(interpose(&injector, 0, 1).deliveries().len(), 2);
        }
    }

    #[test]
    fn link_decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::new(1234).link_fault(
            LinkFault::on(LinkSelector::All)
                .jitter(Duration::from_micros(500))
                .spike(30, Duration::from_millis(1))
                .duplicate(20, Duration::from_micros(50)),
        );
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        a.arm();
        b.arm();
        for from in 0..3usize {
            for to in 0..3usize {
                for _ in 0..50 {
                    assert_eq!(interpose(&a, from, to), interpose(&b, from, to));
                }
            }
        }
    }

    #[test]
    fn scheduler_pauses_and_resumes_attached_controls() {
        let injector = FaultInjector::new(FaultPlan::new(1).pause(
            1,
            Duration::from_millis(5),
            Duration::from_millis(20),
        ));
        let controls: Vec<Arc<PauseControl>> =
            (0..2).map(|_| Arc::new(PauseControl::new())).collect();
        injector.attach_pause_controls(controls.clone());
        injector.arm();
        let deadline = Instant::now() + Duration::from_secs(1);
        while !controls[1].is_paused() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(controls[1].is_paused(), "scheduled pause never fired");
        assert!(!controls[0].is_paused(), "only the scheduled node pauses");
        let deadline = Instant::now() + Duration::from_secs(1);
        while controls[1].is_paused() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!controls[1].is_paused(), "scheduled resume never fired");
    }

    #[test]
    fn overlapping_pause_windows_are_coalesced() {
        // Inner window [20, 30) ends while the outer [0, 80) is active; the
        // node must stay paused until the outer window's end.
        let injector = FaultInjector::new(
            FaultPlan::new(1)
                .pause(0, Duration::ZERO, Duration::from_millis(300))
                .pause(0, Duration::from_millis(20), Duration::from_millis(10)),
        );
        let control = Arc::new(PauseControl::new());
        injector.attach_pause_controls(vec![Arc::clone(&control)]);
        injector.arm();
        let deadline = Instant::now() + Duration::from_secs(1);
        while !control.is_paused() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(control.is_paused());
        // Well inside the outer window but past the inner window's end.
        std::thread::sleep(Duration::from_millis(45));
        assert!(
            control.is_paused(),
            "inner window's resume must not cut the outer window short"
        );
        injector.disarm();
    }

    #[test]
    fn loss_draws_are_deterministic_and_drop_the_message() {
        let plan = FaultPlan::new(77).link_fault(
            LinkFault::on(LinkSelector::All)
                .loss(40)
                .jitter(Duration::from_micros(200)),
        );
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        a.arm();
        b.arm();
        let mut lost = 0usize;
        for _ in 0..200 {
            let pa = interpose(&a, 0, 1);
            let pb = interpose(&b, 0, 1);
            assert_eq!(pa, pb, "loss draws must replay per seed");
            if pa.is_lost() {
                assert!(pa.deliveries().is_empty());
                lost += 1;
            }
        }
        assert!(lost > 40 && lost < 160, "≈40% loss rate, got {lost}/200");
    }

    #[test]
    fn full_loss_suppresses_every_delivery() {
        let injector = FaultInjector::new(
            FaultPlan::new(5).link_fault(LinkFault::on(LinkSelector::All).loss(100)),
        );
        injector.arm();
        for _ in 0..20 {
            assert!(interpose(&injector, 0, 1).is_lost());
        }
        assert!(
            interpose(&injector, 1, 1).is_pass(),
            "self-links never lose"
        );
    }

    #[test]
    fn crash_windows_fire_the_hook_and_track_crashed_nodes() {
        let injector = FaultInjector::new(FaultPlan::new(1).crash(
            1,
            Duration::from_millis(5),
            Duration::from_millis(20),
        ));
        let log = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        injector.attach_crash_hook(Arc::new(move |node, down| {
            sink.lock().push((node, down));
        }));
        injector.arm();
        let deadline = Instant::now() + Duration::from_secs(1);
        while !injector.is_node_crashed(1) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(injector.is_node_crashed(1), "scheduled crash never fired");
        assert!(!injector.is_node_crashed(0));
        let deadline = Instant::now() + Duration::from_secs(1);
        while injector.is_node_crashed(1) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            !injector.is_node_crashed(1),
            "scheduled restart never fired"
        );
        assert_eq!(*log.lock(), vec![(1, true), (1, false)]);
    }

    #[test]
    fn disarm_restarts_nodes_still_inside_a_crash_window() {
        let injector =
            FaultInjector::new(FaultPlan::new(1).crash(0, Duration::ZERO, Duration::from_secs(30)));
        let log = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        injector.attach_crash_hook(Arc::new(move |node, down| {
            sink.lock().push((node, down));
        }));
        injector.arm();
        let deadline = Instant::now() + Duration::from_secs(1);
        while !injector.is_node_crashed(0) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(injector.is_node_crashed(0));
        injector.disarm();
        assert!(!injector.is_node_crashed(0), "disarm must restart the node");
        assert_eq!(*log.lock(), vec![(0, true), (0, false)]);
        injector.disarm();
        assert_eq!(log.lock().len(), 2, "second disarm must not re-fire");
    }

    #[test]
    fn disarm_resumes_paused_nodes_and_is_idempotent() {
        let injector =
            FaultInjector::new(FaultPlan::new(1).pause(0, Duration::ZERO, Duration::from_secs(30)));
        let control = Arc::new(PauseControl::new());
        injector.attach_pause_controls(vec![Arc::clone(&control)]);
        injector.arm();
        let deadline = Instant::now() + Duration::from_secs(1);
        while !control.is_paused() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(control.is_paused());
        injector.disarm();
        assert!(!control.is_paused(), "disarm must resume paused nodes");
        injector.disarm();
    }
}
