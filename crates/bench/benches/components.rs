//! Criterion micro-benchmarks of the protocol building blocks: vector
//! clocks, snapshot-queues, the commit queue, the lock table, version-chain
//! reads and workload generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

use sss_core::{CommitQueue, SnapshotQueue};
use sss_storage::{Key, LockKind, LockTable, MvStore, TxnId, Value};
use sss_vclock::{NodeId, VectorClock};
use sss_workload::{WorkloadGenerator, WorkloadSpec};

fn txn(seq: u64) -> TxnId {
    TxnId::new(NodeId(0), seq)
}

fn bench_vector_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_clock");
    for width in [5usize, 20, 100] {
        let a = VectorClock::from_entries((0..width as u64).collect());
        let b = VectorClock::from_entries((0..width as u64).rev().collect());
        group.bench_function(format!("merge_width_{width}"), |bencher| {
            bencher.iter_batched(
                || a.clone(),
                |mut clock| clock.merge(&b),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("dominates_width_{width}"), |bencher| {
            bencher.iter(|| std::hint::black_box(a.dominates(&b)))
        });
    }
    group.finish();
}

fn bench_snapshot_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_queue");
    group.bench_function("insert_and_remove_read", |bencher| {
        bencher.iter_batched(
            SnapshotQueue::new,
            |mut queue| {
                for i in 0..64u64 {
                    queue.insert_read(txn(i), i);
                }
                for i in 0..64u64 {
                    queue.remove(txn(i));
                }
                queue
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("has_read_before", |bencher| {
        let mut queue = SnapshotQueue::new();
        for i in 0..64u64 {
            queue.insert_read(txn(i), i);
        }
        bencher.iter(|| std::hint::black_box(queue.has_read_before(32)))
    });
    group.finish();
}

fn bench_commit_queue(c: &mut Criterion) {
    c.bench_function("commit_queue/put_update_pop", |bencher| {
        bencher.iter_batched(
            || CommitQueue::new(0),
            |mut queue| {
                for i in 0..32u64 {
                    queue.put(txn(i), VectorClock::from_entries(vec![i + 1]));
                }
                for i in 0..32u64 {
                    queue.update(txn(i), VectorClock::from_entries(vec![i + 1]));
                }
                while queue.pop_ready_head().is_some() {}
                queue
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_lock_table(c: &mut Criterion) {
    c.bench_function("lock_table/acquire_release_disjoint", |bencher| {
        let table = LockTable::new();
        let keys: Vec<Key> = (0..16).map(|i| Key::new(format!("k{i}"))).collect();
        let mut next = 0u64;
        bencher.iter(|| {
            next += 1;
            let id = txn(next);
            let requests = keys.iter().map(|k| (k, LockKind::Exclusive));
            assert!(table.acquire_many(id, requests, Duration::from_millis(1)));
            table.release_all(id);
        })
    });
}

fn bench_version_chain(c: &mut Criterion) {
    c.bench_function("mvstore/visibility_walk", |bencher| {
        let mut store = MvStore::new();
        let key = Key::new("hot");
        for i in 1..=64u64 {
            store.apply(
                key.clone(),
                Value::from_u64(i),
                VectorClock::from_entries(vec![i, i / 2]),
                txn(i),
            );
        }
        bencher.iter(|| {
            let chain = store.chain(&key).expect("populated");
            std::hint::black_box(chain.latest_matching(|v| v.vc.get(0) <= 32))
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload/next_txn", |bencher| {
        let spec = WorkloadSpec::new(8).total_keys(5_000).read_only_percent(80);
        let mut generator = WorkloadGenerator::new(&spec, NodeId(0), 0);
        bencher.iter(|| std::hint::black_box(generator.next_txn()))
    });
}

criterion_group!(
    benches,
    bench_vector_clock,
    bench_snapshot_queue,
    bench_commit_queue,
    bench_lock_table,
    bench_version_chain,
    bench_workload_generation
);
criterion_main!(benches);
