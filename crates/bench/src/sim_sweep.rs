//! The seed-sweep tier: the chaos catalog under the deterministic
//! discrete-event simulator (`sss-sim`), swept across hundreds of seeds.
//!
//! Each seed selects both the workload/fault streams and the simulator's
//! task-interleaving RNG, and runs one catalog entry (round-robin over the
//! catalog, so a 200-seed sweep covers every scenario many times with
//! distinct seeds). Every run is executed **twice** and the sweep asserts:
//!
//! * **checker-clean** — the scenario passed all of its expectations,
//!   including the `sss-consistency` verdict on the recorded history, and
//! * **deterministic** — the replay produced a bit-identical
//!   [`ScenarioOutcome::summary`] *and* history fingerprint
//!   ([`ScenarioOutcome::fingerprint`]).
//!
//! Because virtual time advances only at quiescence, a full smoke-scale
//! scenario costs milliseconds instead of seconds, which is what makes a
//! hundreds-of-seeds sweep affordable in CI. Seeds are independent, so the
//! sweep fans out across OS threads — each worker runs its own
//! single-threaded `SimRuntime` instances.
//!
//! The [`replay_corpus`] is the long-lived counterpart: a small set of
//! named (scenario, seed) pairs whose outcome fingerprints are committed to
//! the repository, so any change to protocol message order, scheduling, or
//! history recording that alters an interleaving shows up as a corpus diff
//! rather than as silent drift.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sss_engine::EngineKind;
use sss_workload::scenario::{run_scenario_sim, ScenarioOutcome};
use sss_workload::SpecError;

use crate::scenarios::{scenario_catalog, ScenarioConfig, ScenarioRun};

/// Configuration of one seed sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSweepConfig {
    /// Number of consecutive seeds to sweep.
    pub seeds: u64,
    /// First seed of the sweep.
    pub base_seed: u64,
    /// Only run catalog entries whose scenario name equals this filter.
    pub only: Option<String>,
    /// Worker threads running simulations concurrently (each simulation is
    /// single-threaded; seeds are independent).
    pub threads: usize,
}

impl Default for SimSweepConfig {
    fn default() -> Self {
        SimSweepConfig {
            seeds: 200,
            base_seed: 1,
            only: None,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

impl SimSweepConfig {
    /// Parses `--seeds N`, `--base-seed N`, `--only NAME` and `--threads N`
    /// flags.
    pub fn from_args(args: &[String]) -> Self {
        let default = SimSweepConfig::default();
        SimSweepConfig {
            seeds: crate::cli::parse_u64(args, "--seeds").unwrap_or(default.seeds),
            base_seed: crate::cli::parse_u64(args, "--base-seed").unwrap_or(default.base_seed),
            only: crate::cli::parse_value(args, "--only"),
            threads: crate::cli::parse_u64(args, "--threads")
                .map_or(default.threads, |n| n.max(1) as usize),
        }
    }
}

/// The smoke-scale chaos catalog seeded for `seed`: every SSS scenario plus
/// the baselines' partition-heal entries, with both the workload and fault
/// streams derived from `seed`.
fn catalog_for(seed: u64) -> Vec<ScenarioRun> {
    scenario_catalog(&ScenarioConfig {
        smoke: true,
        seed,
        check_determinism: false,
        only: None,
        engine: None,
        observability: false,
        trace_out: None,
    })
}

/// The verdict of one (seed, catalog entry) pair.
#[derive(Debug)]
pub struct SeedRunResult {
    /// The seed (workload, faults, and simulator interleaving).
    pub seed: u64,
    /// Engine the entry ran against.
    pub engine: EngineKind,
    /// Scenario name.
    pub scenario: String,
    /// The first run's deterministic summary projection.
    pub summary: String,
    /// The first run's history fingerprint.
    pub fingerprint: u64,
    /// `true` when the scenario met all expectations (checker included).
    pub checker_clean: bool,
    /// `true` when the replay reproduced summary and fingerprint exactly.
    pub deterministic: bool,
    /// Expectation violations of the first run, if any.
    pub violations: Vec<String>,
    /// Wall-clock cost of both runs of this seed.
    pub wall: Duration,
}

impl SeedRunResult {
    /// `true` when the seed is both checker-clean and replayable.
    pub fn passed(&self) -> bool {
        self.checker_clean && self.deterministic
    }
}

/// The result of a whole sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-seed verdicts, in seed order.
    pub results: Vec<SeedRunResult>,
    /// Wall-clock duration of the sweep.
    pub wall: Duration,
}

impl SweepReport {
    /// `true` when every seed passed.
    pub fn passed(&self) -> bool {
        self.results.iter().all(SeedRunResult::passed)
    }

    /// The seeds that failed either gate.
    pub fn failures(&self) -> impl Iterator<Item = &SeedRunResult> {
        self.results.iter().filter(|r| !r.passed())
    }

    /// Renders the sweep as an aligned per-scenario report plus failure
    /// details.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        // Aggregate per (scenario, engine) in first-seen order.
        let mut rows: Vec<(String, EngineKind, usize, usize, usize, Duration)> = Vec::new();
        for result in &self.results {
            let row = match rows
                .iter_mut()
                .find(|(name, engine, ..)| name == &result.scenario && *engine == result.engine)
            {
                Some(row) => row,
                None => {
                    rows.push((
                        result.scenario.clone(),
                        result.engine,
                        0,
                        0,
                        0,
                        Duration::ZERO,
                    ));
                    rows.last_mut().expect("just pushed")
                }
            };
            row.2 += 1;
            row.3 += usize::from(result.checker_clean);
            row.4 += usize::from(result.deterministic);
            row.5 = row.5.max(result.wall);
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<26} {:<8} {:>6} {:>6} {:>7} {:>10}",
            "scenario", "engine", "seeds", "clean", "replay", "worst-wall"
        );
        for (name, engine, runs, clean, deterministic, worst) in &rows {
            let _ = writeln!(
                out,
                "{:<26} {:<8} {:>6} {:>6} {:>7} {:>8.0}ms",
                name,
                engine.label(),
                runs,
                clean,
                deterministic,
                worst.as_secs_f64() * 1e3,
            );
        }
        for failure in self.failures() {
            let _ = writeln!(
                out,
                "!! seed {} [{} {}]: checker_clean={} deterministic={}",
                failure.seed,
                failure.engine.label(),
                failure.scenario,
                failure.checker_clean,
                failure.deterministic,
            );
            for violation in &failure.violations {
                let _ = writeln!(out, "     {violation}");
            }
        }
        let _ = writeln!(
            out,
            "swept {} seeds in {:.1}s",
            self.results.len(),
            self.wall.as_secs_f64(),
        );
        out
    }
}

/// Runs one catalog entry under the simulator with `seed`, twice, and
/// reports the checker and replay-determinism verdicts.
fn run_seed(seed: u64, run: &ScenarioRun) -> Result<SeedRunResult, SpecError> {
    let started = Instant::now();
    let outcome = run_scenario_sim(run.engine, &run.scenario, seed)?;
    let replay = run_scenario_sim(run.engine, &run.scenario, seed)?;
    let deterministic =
        replay.summary() == outcome.summary() && replay.fingerprint() == outcome.fingerprint();
    Ok(SeedRunResult {
        seed,
        engine: run.engine,
        scenario: run.scenario.name.clone(),
        summary: outcome.summary(),
        fingerprint: outcome.fingerprint(),
        checker_clean: outcome.passed(),
        deterministic,
        violations: outcome.violations,
        wall: started.elapsed(),
    })
}

/// Runs the sweep: seeds `base_seed .. base_seed + seeds`, each assigned one
/// catalog entry round-robin, each run twice (checker gate + replay gate),
/// fanned out over `threads` workers.
///
/// # Errors
///
/// Returns the [`SpecError`] of the first structurally invalid scenario.
pub fn run_sim_sweep(config: &SimSweepConfig) -> Result<SweepReport, SpecError> {
    let started = Instant::now();
    let mut jobs: Vec<(u64, ScenarioRun)> = Vec::new();
    for i in 0..config.seeds {
        let seed = config.base_seed + i;
        let mut entries = catalog_for(seed);
        let entry = entries.swap_remove(i as usize % entries.len());
        if let Some(name) = &config.only {
            if &entry.scenario.name != name {
                continue;
            }
        }
        entry.scenario.spec.validate()?;
        jobs.push((seed, entry));
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<SeedRunResult>> = Mutex::new(Vec::with_capacity(jobs.len()));
    std::thread::scope(|scope| {
        for _ in 0..config.threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((seed, run)) = jobs.get(i) else {
                    break;
                };
                let result = run_seed(*seed, run).expect("jobs were pre-validated");
                results
                    .lock()
                    .expect("no panics hold the lock")
                    .push(result);
            });
        }
    });
    let mut results = results.into_inner().expect("workers joined");
    results.sort_by_key(|r| r.seed);
    Ok(SweepReport {
        results,
        wall: started.elapsed(),
    })
}

/// One committed replay-regression entry: a named (scenario, seed) pair and
/// the history fingerprint its simulation must reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Stable name of the corpus entry.
    pub name: &'static str,
    /// Engine the scenario runs against.
    pub engine: EngineKind,
    /// Catalog scenario name.
    pub scenario: &'static str,
    /// Seed (workload, faults, simulator interleaving).
    pub seed: u64,
    /// Recorded [`ScenarioOutcome::fingerprint`] of the run.
    pub fingerprint: u64,
}

/// The committed seed-replay corpus.
///
/// The seeds are the ones the sweep and the chaos-smoke CI jobs lean on
/// hardest (the default catalog seed 42, the sweep's base seed 1) plus a
/// spread of arbitrary seeds over the fault-heavy entries, so the corpus
/// pins one exact interleaving of every delivery mechanism: clean runs,
/// partitions, duplicates, reordering, and the model-checker regressions.
///
/// A fingerprint mismatch means the same seed now produces a *different
/// history* — a protocol, scheduler, or recorder change altered an
/// interleaving. That is sometimes intended (e.g. a protocol-round change);
/// re-record with `cargo run -p sss-bench --release --bin sim-sweep --
/// --print-corpus` and commit the new values alongside the change that
/// explains them.
pub fn replay_corpus() -> Vec<CorpusEntry> {
    let entry = |name, engine, scenario, seed, fingerprint| CorpusEntry {
        name,
        engine,
        scenario,
        seed,
        fingerprint,
    };
    vec![
        entry(
            "control-42",
            EngineKind::Sss,
            "control",
            42,
            0xce3922f40faf7443,
        ),
        entry(
            "partition-heal-7",
            EngineKind::Sss,
            "partition-heal",
            7,
            0x2de57b1e4cbe4dcf,
        ),
        entry(
            "duplicate-storm-1001",
            EngineKind::Sss,
            "duplicate-storm",
            1001,
            0xcd17c5311c66700e,
        ),
        entry(
            "reorder-burst-31337",
            EngineKind::Sss,
            "reorder-burst",
            31337,
            0x29ab579e4c375385,
        ),
        entry(
            "chaos-mix-97",
            EngineKind::Sss,
            "chaos-mix",
            97,
            0x0a267b6b8e5f659f,
        ),
        entry(
            "mc-duplicate-prepare-13",
            EngineKind::Sss,
            "mc-duplicate-prepare",
            13,
            0x8b7052c36a6e5a24,
        ),
        entry(
            "twopc-partition-heal-1",
            EngineKind::TwoPc,
            "partition-heal",
            1,
            0xd6545986523d7974,
        ),
        // The fault-survival entries: one pinned interleaving each of the
        // reliable-delivery layer under sustained loss and of the two
        // crash-stop/restart shapes (coordinator node mid-commit, round
        // leader mid-epoch), so retransmit timing, mailbox purge and the
        // recovery round stay bit-reproducible.
        entry(
            "lossy-link-669",
            EngineKind::Sss,
            "lossy-link",
            669,
            0xde97b293c262a599,
        ),
        entry(
            "crash-restart-during-commit-669",
            EngineKind::Sss,
            "crash-restart-during-commit",
            669,
            0x4021c564bac5a1c2,
        ),
        entry(
            "leader-crash-mid-epoch-669",
            EngineKind::Sss,
            "leader-crash-mid-epoch",
            669,
            0x4cb68759bddea4d7,
        ),
    ]
}

/// Replays one corpus entry under the simulator and returns its outcome.
///
/// # Errors
///
/// Returns the [`SpecError`] of a structurally invalid scenario (corpus
/// construction bugs surface here).
pub fn run_corpus_entry(entry: &CorpusEntry) -> Result<ScenarioOutcome, SpecError> {
    let run = catalog_for(entry.seed)
        .into_iter()
        .find(|r| r.engine == entry.engine && r.scenario.name == entry.scenario)
        .unwrap_or_else(|| panic!("corpus entry {} names no catalog scenario", entry.name));
    run_scenario_sim(run.engine, &run.scenario, entry.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parses_flags() {
        let args: Vec<String> = [
            "bin",
            "--seeds",
            "8",
            "--base-seed",
            "100",
            "--threads",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let config = SimSweepConfig::from_args(&args);
        assert_eq!(config.seeds, 8);
        assert_eq!(config.base_seed, 100);
        assert_eq!(config.threads, 2);
        let default = SimSweepConfig::from_args(&["bin".to_string()]);
        assert_eq!(default.seeds, 200);
        assert_eq!(default.base_seed, 1);
    }

    #[test]
    fn corpus_entries_name_catalog_scenarios() {
        for entry in replay_corpus() {
            assert!(
                catalog_for(entry.seed)
                    .iter()
                    .any(|r| r.engine == entry.engine && r.scenario.name == entry.scenario),
                "corpus entry {} names no catalog scenario",
                entry.name
            );
        }
    }

    #[test]
    fn round_robin_covers_the_whole_catalog() {
        let len = catalog_for(1).len() as u64;
        let config = SimSweepConfig {
            seeds: len,
            base_seed: 1,
            only: None,
            threads: 1,
        };
        // Job construction only (no runs): every catalog entry is assigned
        // exactly once across one catalog-length stretch of seeds.
        let mut seen = std::collections::HashSet::new();
        for i in 0..config.seeds {
            let entries = catalog_for(config.base_seed + i);
            let entry = &entries[i as usize % entries.len()];
            seen.insert((entry.engine, entry.scenario.name.clone()));
        }
        assert_eq!(seen.len(), len as usize);
    }
}
