//! Workload-driver adapters for every engine under test.

use std::time::Instant;
#[cfg(test)]
use std::time::Duration;

use sss_baselines::rococo::{RococoCluster, RococoConfig, RococoReadOutcome};
use sss_baselines::twopc::{TwoPcCluster, TwoPcConfig, TwoPcOutcome};
use sss_baselines::walter::{WalterCluster, WalterConfig, WalterOutcome};
use sss_core::{SssCluster, SssConfig};
use sss_storage::{Key, Value};
use sss_workload::{EngineSession, TransactionEngine, TxnOutcome, WorkloadGenerator, WorkloadSpec};

/// Which engine an experiment runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The SSS protocol (this paper).
    Sss,
    /// The 2PC-baseline.
    TwoPc,
    /// The Walter-style PSI engine.
    Walter,
    /// The ROCOCO-style engine.
    Rococo,
}

impl EngineKind {
    /// Display name used in tables (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Sss => "SSS",
            EngineKind::TwoPc => "2PC",
            EngineKind::Walter => "Walter",
            EngineKind::Rococo => "ROCOCO",
        }
    }
}

/// Pre-populates every key of the workload's key space with an initial
/// value, as YCSB does before the measured phase.
pub fn populate<E: TransactionEngine>(engine: &E, spec: &WorkloadSpec) {
    let mut session = engine.session(0);
    let keys: Vec<Key> = WorkloadGenerator::all_keys(spec).collect();
    for chunk in keys.chunks(64) {
        let writes: Vec<(Key, Value)> = chunk
            .iter()
            .map(|k| (k.clone(), Value::from_u64(0)))
            .collect();
        // Population runs before the measured window; an abort here can only
        // come from self-contention, so retry until applied.
        for _ in 0..16 {
            if session.run_update(&[], &writes).is_committed() {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SSS
// ---------------------------------------------------------------------------

/// The SSS engine behind the workload-driver trait.
pub struct SssEngine {
    cluster: SssCluster,
}

impl SssEngine {
    /// Starts an SSS cluster sized for `spec` with `replication` replicas
    /// per key.
    pub fn start(spec: &WorkloadSpec, replication: usize) -> Self {
        let config = SssConfig::new(spec.nodes).replication(replication);
        let cluster = SssCluster::start(config).expect("failed to start SSS cluster");
        SssEngine { cluster }
    }

    /// The underlying cluster (e.g. for protocol statistics).
    pub fn cluster(&self) -> &SssCluster {
        &self.cluster
    }
}

struct SssEngineSession {
    session: sss_core::Session,
}

impl EngineSession for SssEngineSession {
    fn run_update(&mut self, read_keys: &[Key], writes: &[(Key, Value)]) -> TxnOutcome {
        let start = Instant::now();
        let mut txn = self.session.begin_update();
        for key in read_keys {
            if txn.read(key.clone()).is_err() {
                return TxnOutcome::Aborted;
            }
        }
        for (key, value) in writes {
            txn.write(key.clone(), value.clone());
        }
        match txn.commit() {
            Ok(info) => TxnOutcome::Committed {
                latency: start.elapsed(),
                internal_latency: info.internal_latency,
            },
            Err(_) => TxnOutcome::Aborted,
        }
    }

    fn run_read_only(&mut self, read_keys: &[Key]) -> TxnOutcome {
        let start = Instant::now();
        let mut txn = self.session.begin_read_only();
        for key in read_keys {
            if txn.read(key.clone()).is_err() {
                return TxnOutcome::Aborted;
            }
        }
        match txn.commit() {
            Ok(()) => TxnOutcome::Committed {
                latency: start.elapsed(),
                internal_latency: start.elapsed(),
            },
            Err(_) => TxnOutcome::Aborted,
        }
    }
}

impl TransactionEngine for SssEngine {
    fn name(&self) -> &str {
        "SSS"
    }

    fn nodes(&self) -> usize {
        self.cluster.node_count()
    }

    fn session(&self, node: usize) -> Box<dyn EngineSession> {
        Box::new(SssEngineSession {
            session: self.cluster.session(node),
        })
    }
}

// ---------------------------------------------------------------------------
// 2PC-baseline
// ---------------------------------------------------------------------------

/// The 2PC-baseline engine behind the workload-driver trait.
pub struct TwoPcEngine {
    cluster: std::sync::Arc<TwoPcCluster>,
}

impl TwoPcEngine {
    /// Starts a 2PC-baseline cluster sized for `spec`.
    pub fn start(spec: &WorkloadSpec, replication: usize) -> Self {
        let config = TwoPcConfig::new(spec.nodes).replication(replication);
        TwoPcEngine {
            cluster: std::sync::Arc::new(TwoPcCluster::start(config)),
        }
    }
}

struct TwoPcEngineSession {
    cluster: std::sync::Arc<TwoPcCluster>,
    node: usize,
}

impl EngineSession for TwoPcEngineSession {
    fn run_update(&mut self, read_keys: &[Key], writes: &[(Key, Value)]) -> TxnOutcome {
        let start = Instant::now();
        let session = self.cluster.session(self.node);
        match session.execute(read_keys, writes).0 {
            TwoPcOutcome::Committed => TxnOutcome::Committed {
                latency: start.elapsed(),
                internal_latency: start.elapsed(),
            },
            TwoPcOutcome::Aborted => TxnOutcome::Aborted,
        }
    }

    fn run_read_only(&mut self, read_keys: &[Key]) -> TxnOutcome {
        // In the 2PC-baseline read-only transactions validate and may abort.
        self.run_update(read_keys, &[])
    }
}

impl TransactionEngine for TwoPcEngine {
    fn name(&self) -> &str {
        "2PC"
    }

    fn nodes(&self) -> usize {
        self.cluster.node_count()
    }

    fn session(&self, node: usize) -> Box<dyn EngineSession> {
        Box::new(TwoPcEngineSession {
            cluster: std::sync::Arc::clone(&self.cluster),
            node,
        })
    }
}

// ---------------------------------------------------------------------------
// Walter (PSI)
// ---------------------------------------------------------------------------

/// The Walter-style PSI engine behind the workload-driver trait.
pub struct WalterEngine {
    cluster: std::sync::Arc<WalterCluster>,
}

impl WalterEngine {
    /// Starts a Walter cluster sized for `spec`.
    pub fn start(spec: &WorkloadSpec, replication: usize) -> Self {
        let config = WalterConfig::new(spec.nodes).replication(replication);
        WalterEngine {
            cluster: std::sync::Arc::new(WalterCluster::start(config)),
        }
    }
}

struct WalterEngineSession {
    cluster: std::sync::Arc<WalterCluster>,
    node: usize,
}

impl EngineSession for WalterEngineSession {
    fn run_update(&mut self, read_keys: &[Key], writes: &[(Key, Value)]) -> TxnOutcome {
        let start = Instant::now();
        let session = self.cluster.session(self.node);
        match session.update(read_keys, writes).0 {
            WalterOutcome::Committed => TxnOutcome::Committed {
                latency: start.elapsed(),
                internal_latency: start.elapsed(),
            },
            WalterOutcome::Aborted => TxnOutcome::Aborted,
        }
    }

    fn run_read_only(&mut self, read_keys: &[Key]) -> TxnOutcome {
        let start = Instant::now();
        let session = self.cluster.session(self.node);
        match session.read_only(read_keys) {
            Some(_) => TxnOutcome::Committed {
                latency: start.elapsed(),
                internal_latency: start.elapsed(),
            },
            None => TxnOutcome::Aborted,
        }
    }
}

impl TransactionEngine for WalterEngine {
    fn name(&self) -> &str {
        "Walter"
    }

    fn nodes(&self) -> usize {
        self.cluster.node_count()
    }

    fn session(&self, node: usize) -> Box<dyn EngineSession> {
        Box::new(WalterEngineSession {
            cluster: std::sync::Arc::clone(&self.cluster),
            node,
        })
    }
}

// ---------------------------------------------------------------------------
// ROCOCO
// ---------------------------------------------------------------------------

/// The ROCOCO-style engine behind the workload-driver trait.
pub struct RococoEngine {
    cluster: std::sync::Arc<RococoCluster>,
}

impl RococoEngine {
    /// Starts a ROCOCO cluster sized for `spec` (replication is always
    /// disabled, as in the paper's comparison).
    pub fn start(spec: &WorkloadSpec) -> Self {
        RococoEngine {
            cluster: std::sync::Arc::new(RococoCluster::start(RococoConfig::new(spec.nodes))),
        }
    }
}

struct RococoEngineSession {
    cluster: std::sync::Arc<RococoCluster>,
    node: usize,
}

impl EngineSession for RococoEngineSession {
    fn run_update(&mut self, _read_keys: &[Key], writes: &[(Key, Value)]) -> TxnOutcome {
        let start = Instant::now();
        let session = self.cluster.session(self.node);
        if session.update(writes) {
            TxnOutcome::Committed {
                latency: start.elapsed(),
                internal_latency: start.elapsed(),
            }
        } else {
            TxnOutcome::Aborted
        }
    }

    fn run_read_only(&mut self, read_keys: &[Key]) -> TxnOutcome {
        let start = Instant::now();
        let session = self.cluster.session(self.node);
        match session.read_only(read_keys).0 {
            RococoReadOutcome::Committed => TxnOutcome::Committed {
                latency: start.elapsed(),
                internal_latency: start.elapsed(),
            },
            RococoReadOutcome::Aborted => TxnOutcome::Aborted,
        }
    }
}

impl TransactionEngine for RococoEngine {
    fn name(&self) -> &str {
        "ROCOCO"
    }

    fn nodes(&self) -> usize {
        self.cluster.node_count()
    }

    fn session(&self, node: usize) -> Box<dyn EngineSession> {
        Box::new(RococoEngineSession {
            cluster: std::sync::Arc::clone(&self.cluster),
            node,
        })
    }
}

/// Starts the requested engine, pre-populates the key space, runs the
/// workload trials, and returns the averaged report.
pub fn run_engine(
    kind: EngineKind,
    spec: &WorkloadSpec,
    replication: usize,
) -> sss_workload::WorkloadReport {
    match kind {
        EngineKind::Sss => {
            let engine = SssEngine::start(spec, replication);
            populate(&engine, spec);
            sss_workload::run_trials(&engine, spec)
        }
        EngineKind::TwoPc => {
            let engine = TwoPcEngine::start(spec, replication);
            populate(&engine, spec);
            sss_workload::run_trials(&engine, spec)
        }
        EngineKind::Walter => {
            let engine = WalterEngine::start(spec, replication);
            populate(&engine, spec);
            sss_workload::run_trials(&engine, spec)
        }
        EngineKind::Rococo => {
            let engine = RococoEngine::start(spec);
            populate(&engine, spec);
            sss_workload::run_trials(&engine, spec)
        }
    }
}

/// A short smoke-duration used by the unit tests of the harness itself.
#[cfg(test)]
#[cfg(test)]
pub(crate) fn smoke_duration() -> Duration {
    Duration::from_millis(40)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_spec(nodes: usize) -> WorkloadSpec {
        WorkloadSpec::new(nodes)
            .clients_per_node(2)
            .total_keys(64)
            .duration(smoke_duration())
    }

    #[test]
    fn engine_labels() {
        assert_eq!(EngineKind::Sss.label(), "SSS");
        assert_eq!(EngineKind::TwoPc.label(), "2PC");
        assert_eq!(EngineKind::Walter.label(), "Walter");
        assert_eq!(EngineKind::Rococo.label(), "ROCOCO");
    }

    #[test]
    fn sss_adapter_commits_work() {
        let spec = smoke_spec(3);
        let report = run_engine(EngineKind::Sss, &spec, 2);
        assert!(report.committed > 0, "SSS committed nothing");
    }

    #[test]
    fn baseline_adapters_commit_work() {
        let spec = smoke_spec(2);
        for kind in [EngineKind::TwoPc, EngineKind::Walter, EngineKind::Rococo] {
            let report = run_engine(kind, &spec, 1);
            assert!(report.committed > 0, "{} committed nothing", kind.label());
        }
    }
}
