//! The chaos-scenario catalog: named fault plans run against SSS and the
//! baselines, with post-run consistency verification.
//!
//! Each catalog entry pairs an engine with a [`ChaosScenario`] (workload +
//! fault plan + expected-outcome assertions, see `sss_workload::scenario`).
//! Every injected fault is safety-preserving in the paper's system model:
//! delay, reorder, duplicate, partition-with-heal and pause are so
//! natively, while message loss and crash-stop plans auto-enable the
//! reliable-delivery layer plus the restart-recovery protocol (see
//! `sss_core::SssCluster::start`). SSS must keep external consistency
//! through every entry and read-only abort freedom through every
//! crash-free entry (a read parked on a crashing node aborts and retries —
//! [`ScenarioExpectations::sss_under_crash`]); the serializable baselines
//! must keep consistency; Walter (PSI) is run for liveness only.

use std::time::Duration;

use sss_engine::{EngineKind, EngineTuning, FaultInjector, TraceSpan, TransactionEngine};
use sss_workload::scenario::{
    run_scenario, run_scenario_on, ChaosScenario, ScenarioExpectations, ScenarioOutcome,
};
use sss_workload::{FaultPlan, LinkFault, LinkSelector, SpecError, WorkloadSpec};

/// A labelled group of trace spans, ready for
/// [`sss_engine::chrome_trace_json`].
pub type TraceGroup = (String, Vec<TraceSpan>);

/// Configuration of one catalog execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioConfig {
    /// Shrinks cluster size and operation counts so the whole catalog runs
    /// in seconds (the CI smoke configuration).
    pub smoke: bool,
    /// Base seed of the workload streams and fault plans.
    pub seed: u64,
    /// Re-run every SSS scenario a second time and fail unless the outcome
    /// summaries are bit-identical.
    pub check_determinism: bool,
    /// Only run scenarios whose name equals this filter.
    pub only: Option<String>,
    /// Only run scenarios for this engine.
    pub engine: Option<EngineKind>,
    /// Build engines with observability on: phase tracing into per-node
    /// rings, per-phase histograms, and the watchdog's trace dump on a
    /// stuck run. The outcome summaries are bit-identical either way.
    pub observability: bool,
    /// Write every run's drained trace spans as one Chrome-trace JSON file
    /// to this path (implies `observability`).
    pub trace_out: Option<String>,
}

impl ScenarioConfig {
    /// Parses `--smoke`, `--seed N`, `--check-determinism`, `--only NAME`,
    /// `--engine NAME`, `--obs` and `--trace-out PATH` flags.
    pub fn from_args(args: &[String]) -> Self {
        let trace_out = crate::cli::parse_value(args, "--trace-out");
        ScenarioConfig {
            smoke: crate::cli::parse_flag(args, "--smoke"),
            seed: crate::cli::parse_u64(args, "--seed").unwrap_or(42),
            check_determinism: crate::cli::parse_flag(args, "--check-determinism"),
            only: crate::cli::parse_value(args, "--only"),
            engine: crate::cli::parse_value(args, "--engine")
                .map(|name| name.parse().expect("unknown engine name")),
            observability: crate::cli::parse_flag(args, "--obs") || trace_out.is_some(),
            trace_out,
        }
    }
}

/// One catalog entry: which engine runs which scenario.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Engine under test.
    pub engine: EngineKind,
    /// The scenario to run.
    pub scenario: ChaosScenario,
}

fn base_spec(smoke: bool, seed: u64) -> WorkloadSpec {
    if smoke {
        WorkloadSpec::new(3)
            .clients_per_node(2)
            .total_keys(64)
            .read_only_percent(50)
            .seed(seed)
    } else {
        WorkloadSpec::new(4)
            .clients_per_node(3)
            .total_keys(256)
            .read_only_percent(50)
            .seed(seed)
    }
}

fn scenario(name: &str, smoke: bool, seed: u64) -> ChaosScenario {
    let ops = if smoke { 120 } else { 300 };
    ChaosScenario::new(name, base_spec(smoke, seed)).ops_per_client(ops)
}

/// The named chaos scenarios run against SSS. Scheduled windows start a few
/// milliseconds in (the fixed-operation workload is still running by then)
/// and are sized well under the engine's protocol timeouts, so faults slow
/// the run without forcing spurious give-ups.
pub fn sss_scenarios(smoke: bool, seed: u64) -> Vec<ChaosScenario> {
    let ms = Duration::from_millis;
    let us = Duration::from_micros;
    vec![
        // A clean control run: catches harness regressions and gives the
        // faulted entries a baseline to compare against.
        scenario("control", smoke, seed),
        // Node 0 is cut off from the rest of the cluster, then the
        // partition heals and the held messages flood in.
        scenario("partition-heal", smoke, seed).faults(FaultPlan::new(seed).partition(
            [0],
            ms(5),
            ms(40),
        )),
        // One direction of one link is slow and jittery; the reverse
        // direction stays clean (the classic asymmetric gray failure).
        scenario("asymmetric-slow-link", smoke, seed).faults(
            FaultPlan::new(seed).link_fault(
                LinkFault::on(LinkSelector::Directed { from: 0, to: 1 })
                    .jitter(us(500))
                    .spike(40, ms(2)),
            ),
        ),
        // Forty percent of all messages are delivered twice: exercises
        // the idempotency of every protocol handler.
        scenario("duplicate-storm", smoke, seed).faults(
            FaultPlan::new(seed)
                .link_fault(LinkFault::on(LinkSelector::All).duplicate(40, us(200))),
        ),
        // A third of all messages are held back long enough for later
        // traffic to overtake them: exercises out-of-order delivery across
        // priority classes and message types.
        scenario("reorder-burst", smoke, seed).faults(
            FaultPlan::new(seed).link_fault(
                LinkFault::on(LinkSelector::All)
                    .jitter(us(300))
                    .reorder(30, ms(1)),
            ),
        ),
        // Nodes stall mid-run while commits are in flight, then resume and
        // drain their backlogs (rolling GC-pause / CPU-starvation model).
        scenario("pause-during-commit", smoke, seed).faults(
            FaultPlan::new(seed)
                .pause(1, ms(3), ms(30))
                .pause(2, ms(40), ms(30)),
        ),
        // Everything at once: jitter, spikes, duplicates, a partition and
        // a pause, overlapping.
        scenario("chaos-mix", smoke, seed).faults(
            FaultPlan::new(seed)
                .link_fault(
                    LinkFault::on(LinkSelector::All)
                        .jitter(us(300))
                        .spike(10, ms(1))
                        .duplicate(15, us(100)),
                )
                .partition([1], ms(10), ms(30))
                .pause(0, ms(45), ms(25)),
        ),
        // A fifth of all wire attempts (retransmissions included) vanish on
        // every link. The plan's loss makes the cluster auto-enable the
        // reliable-delivery layer, whose ack/retransmit machinery must
        // restore effectively-once delivery — and the full SSS guarantee
        // set — over the lossy wire.
        scenario("lossy-link", smoke, seed)
            .faults(FaultPlan::new(seed).link_fault(LinkFault::on(LinkSelector::All).loss(20))),
        // Node 1 crash-stops mid-run (mailbox purged, volatile protocol
        // state wiped) and restarts 40ms later: the restarted node rebuilds
        // its begin snapshot from peers via a StateQuery round, outstanding
        // messages to it are retransmitted, and its colocated clients —
        // briefly gated on `NodeUnavailable` backoff — must finish their
        // fixed operation count after the restart. Reads parked on the
        // crashing node abort and retry (`sss_under_crash`); consistency
        // and all-committed still gate.
        scenario("crash-restart-during-commit", smoke, seed)
            .faults(FaultPlan::new(seed).crash(1, ms(5), ms(40)))
            .expect(ScenarioExpectations::sss_under_crash()),
        // Node 0 — the confirmation-round leader for every transaction its
        // clients coordinate — crashes while grouped confirmation rounds
        // are in flight (link jitter keeps rounds airborne longer), then
        // restarts: queued members' waiters observe the coalescer reset,
        // degrade along the timeout path, and the post-restart committers
        // lead fresh rounds.
        scenario("leader-crash-mid-epoch", smoke, seed)
            .faults(
                FaultPlan::new(seed)
                    .link_fault(LinkFault::on(LinkSelector::All).jitter(us(200)))
                    .crash(0, ms(8), ms(40)),
            )
            .expect(ScenarioExpectations::sss_under_crash()),
        // Regression scenarios seeded from model-checker counterexamples:
        // each targets the fault class an `sss-model` mutation's minimal
        // trace exploits (see `modelcheck_regressions` and the
        // `seeded_scenarios_match_the_checker_classification` test, which
        // re-derives the classification from the live checker).
        modelcheck_regression(sss_model::Mutation::DuplicatePrepare, smoke, seed),
        modelcheck_regression(sss_model::Mutation::AbortOvertakesPrepare, smoke, seed),
    ]
}

/// The catalog name of the regression scenario seeded from `mutation`'s
/// counterexample.
pub fn modelcheck_scenario_name(mutation: sss_model::Mutation) -> &'static str {
    match mutation {
        sss_model::Mutation::DuplicatePrepare => "mc-duplicate-prepare",
        sss_model::Mutation::AbortOvertakesPrepare => "mc-abort-overtakes-prepare",
        sss_model::Mutation::PrematureRelease => "mc-premature-release",
        sss_model::Mutation::DroppedExclusionCeiling => "mc-dropped-ceiling",
    }
}

/// Maps a counterexample's fault class to the chaos-plan knobs that stress
/// the same delivery mechanism on a real cluster. The rates are deliberately
/// high: the checker proved one adversarial delivery suffices, so the
/// scenario saturates that channel instead of hoping to hit it.
pub fn fault_plan_for(fault: sss_model::chaos::FaultKind, seed: u64) -> FaultPlan {
    let ms = Duration::from_millis;
    let us = Duration::from_micros;
    match fault {
        // The trace delivers one envelope twice: duplicate half of all
        // messages so every handler's dedup path is hammered.
        sss_model::chaos::FaultKind::Duplicate => {
            FaultPlan::new(seed).link_fault(LinkFault::on(LinkSelector::All).duplicate(50, us(150)))
        }
        // The trace needs a later send to overtake an earlier one (e.g. a
        // Decide overtaking its Prepare): hold a large fraction of messages
        // long enough for subsequent traffic to pass them.
        sss_model::chaos::FaultKind::Reorder => FaultPlan::new(seed).link_fault(
            LinkFault::on(LinkSelector::All)
                .jitter(us(400))
                .reorder(40, ms(2)),
        ),
        // Plain adversarial delay.
        sss_model::chaos::FaultKind::Delay => FaultPlan::new(seed).link_fault(
            LinkFault::on(LinkSelector::All)
                .jitter(us(500))
                .spike(30, ms(2)),
        ),
    }
}

/// One regression scenario seeded from a model-checker counterexample.
///
/// The checker's BFS found a minimal trace violating an SSS invariant with
/// the mutation applied (`sss-model`, `tests/model_check.rs`); the trace's
/// fault class — re-derived live by the catalog test — picks the fault
/// plan, and the scenario then asserts the *unmutated* production engine
/// holds the full SSS guarantee set under a saturated dose of that fault:
///
/// * `DuplicatePrepare`: an 18-action trace delivering one `Prepare` twice
///   wedges the commit queue (quiescence violation) once the handler's
///   dedup is removed → `Duplicate` faults.
/// * `AbortOvertakesPrepare`: a 21-action trace delivering a `Decide`
///   (abort) before its `Prepare` wedges the prepare path once the abort
///   tombstone is removed → `Reorder` faults.
fn modelcheck_regression(mutation: sss_model::Mutation, smoke: bool, seed: u64) -> ChaosScenario {
    let fault = match mutation {
        sss_model::Mutation::DuplicatePrepare => sss_model::chaos::FaultKind::Duplicate,
        sss_model::Mutation::AbortOvertakesPrepare => sss_model::chaos::FaultKind::Reorder,
        sss_model::Mutation::PrematureRelease => sss_model::chaos::FaultKind::Delay,
        sss_model::Mutation::DroppedExclusionCeiling => sss_model::chaos::FaultKind::Delay,
    };
    scenario(modelcheck_scenario_name(mutation), smoke, seed).faults(fault_plan_for(fault, seed))
}

/// The full catalog: every SSS scenario plus the partition-heal scenario
/// for each baseline engine. The baselines run on the same `sss-net`
/// transport as SSS, so the partition genuinely severs their traffic too;
/// each run goes through population, the fixed-operation loop, history
/// recording and the post-run checker.
pub fn scenario_catalog(config: &ScenarioConfig) -> Vec<ScenarioRun> {
    let mut catalog: Vec<ScenarioRun> = sss_scenarios(config.smoke, config.seed)
        .into_iter()
        .map(|scenario| ScenarioRun {
            engine: EngineKind::Sss,
            scenario,
        })
        .collect();
    for (engine, expect) in [
        (
            EngineKind::TwoPc,
            ScenarioExpectations::serializable_baseline(),
        ),
        (EngineKind::Walter, ScenarioExpectations::weak_baseline()),
        (
            EngineKind::Rococo,
            ScenarioExpectations::serializable_baseline(),
        ),
    ] {
        let faulted = scenario("partition-heal", config.smoke, config.seed)
            .faults(FaultPlan::new(config.seed).partition(
                [0],
                Duration::from_millis(5),
                Duration::from_millis(40),
            ))
            .expect(expect);
        // ROCOCO runs unreplicated, as in the paper's comparison.
        let faulted = if engine == EngineKind::Rococo {
            faulted.replication(1)
        } else {
            faulted
        };
        catalog.push(ScenarioRun {
            engine,
            scenario: faulted,
        });
    }
    catalog
}

/// The result of one catalog entry, including the determinism re-run
/// verdict when requested.
#[derive(Debug)]
pub struct CatalogResult {
    /// The entry that ran.
    pub run: ScenarioRun,
    /// The scenario outcome.
    pub outcome: ScenarioOutcome,
    /// `Some(true)` when a determinism re-run produced a bit-identical
    /// summary, `Some(false)` when it diverged, `None` when not checked.
    pub deterministic: Option<bool>,
}

impl CatalogResult {
    /// `true` when the scenario passed and (if checked) replayed
    /// deterministically.
    pub fn passed(&self) -> bool {
        self.outcome.passed() && self.deterministic != Some(false)
    }
}

/// Runs the whole catalog.
///
/// # Errors
///
/// Returns the [`SpecError`] of the first structurally invalid scenario
/// (catalog construction bugs surface here rather than as bogus runs).
pub fn run_catalog(config: &ScenarioConfig) -> Result<Vec<CatalogResult>, SpecError> {
    Ok(run_catalog_traced(config)?.0)
}

/// [`run_catalog`], additionally returning each run's drained trace spans
/// as labelled groups ready for [`sss_engine::chrome_trace_json`] — one
/// group per catalog entry that ran with observability on (empty when
/// [`ScenarioConfig::observability`] is off).
///
/// # Errors
///
/// Returns the [`SpecError`] of the first structurally invalid scenario.
pub fn run_catalog_traced(
    config: &ScenarioConfig,
) -> Result<(Vec<CatalogResult>, Vec<TraceGroup>), SpecError> {
    let mut results = Vec::new();
    let mut trace_groups = Vec::new();
    let catalog = scenario_catalog(config)
        .into_iter()
        .filter(|run| match &config.only {
            Some(name) => &run.scenario.name == name,
            None => true,
        })
        .filter(|run| match config.engine {
            Some(engine) => run.engine == engine,
            None => true,
        });
    for run in catalog {
        let (outcome, spans) = run_entry(config, &run)?;
        if let Some(spans) = spans {
            if !spans.is_empty() {
                trace_groups.push((
                    format!("{} {}", run.engine.label(), run.scenario.name),
                    spans,
                ));
            }
        }
        // Crash-window scenarios are excluded from the *threaded*
        // determinism re-run: which reads sit parked on the node at the
        // wall-clock instant the crash fires is scheduling-dependent, so
        // the summary's abort counts legitimately vary. The simulator tier
        // (`sim-sweep`) pins those scenarios to bit-exact replays on
        // virtual time instead.
        let deterministic = if config.check_determinism
            && run.engine == EngineKind::Sss
            && run.scenario.faults.crashes.is_empty()
        {
            let (replay, _) = run_entry(config, &run)?;
            Some(replay.summary() == outcome.summary())
        } else {
            None
        };
        results.push(CatalogResult {
            run,
            outcome,
            deterministic,
        });
    }
    Ok((results, trace_groups))
}

/// Runs one catalog entry; with observability on, the engine is built with
/// an obs hub and the trace rings are drained after the run.
fn run_entry(
    config: &ScenarioConfig,
    run: &ScenarioRun,
) -> Result<(ScenarioOutcome, Option<Vec<TraceSpan>>), SpecError> {
    if !config.observability {
        return Ok((run_scenario(run.engine, &run.scenario)?, None));
    }
    let scenario = &run.scenario;
    scenario.spec.validate()?;
    let injector = FaultInjector::new(scenario.faults.clone());
    let engine = run.engine.build_tuned(
        scenario.spec.nodes,
        scenario.replication.min(scenario.spec.nodes),
        scenario.profile,
        EngineTuning::default().observability(true),
        Some(&injector),
    );
    let outcome = run_scenario_on(engine.as_ref(), &injector, scenario);
    injector.disarm();
    let spans = engine.observability().map(|hub| hub.drain_spans());
    Ok((outcome, spans))
}

/// Renders the catalog results as an aligned report.
pub fn render_results(results: &[CatalogResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:<8} {:>10} {:>8} {:>9} {:>8} {:>12} {:>9} {:>8}",
        "scenario",
        "engine",
        "committed",
        "ro-cmt",
        "ro-abort",
        "retries",
        "consistency",
        "elapsed",
        "verdict"
    );
    for result in results {
        let o = &result.outcome;
        let consistency = match &o.consistency {
            None => "unchecked",
            Some(Ok(())) => "ok",
            Some(Err(_)) => "VIOLATED",
        };
        let verdict = if !result.passed() {
            "FAIL"
        } else if result.deterministic == Some(true) {
            "pass+det"
        } else {
            "pass"
        };
        let _ = writeln!(
            out,
            "{:<22} {:<8} {:>10} {:>8} {:>9} {:>8} {:>12} {:>8.1}ms {:>8}",
            o.scenario,
            o.engine,
            o.committed,
            o.committed_read_only,
            o.read_only_aborts,
            o.update_retries,
            consistency,
            o.elapsed.as_secs_f64() * 1e3,
            verdict,
        );
        for violation in &o.violations {
            let _ = writeln!(out, "    !! {violation}");
        }
        if let Some(diagnostics) = &o.diagnostics {
            for line in diagnostics.lines() {
                let _ = writeln!(out, "    | {line}");
            }
        }
        if let Some(dump) = &o.trace_dump {
            let _ = writeln!(
                out,
                "    | trace dump captured at stall ({} bytes of Chrome-trace JSON)",
                dump.len()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_required_scenarios() {
        let config = ScenarioConfig {
            smoke: true,
            seed: 1,
            check_determinism: false,
            only: None,
            engine: None,
            observability: false,
            trace_out: None,
        };
        let catalog = scenario_catalog(&config);
        let sss_named: Vec<&str> = catalog
            .iter()
            .filter(|r| r.engine == EngineKind::Sss)
            .map(|r| r.scenario.name.as_str())
            .collect();
        assert!(
            sss_named.len() >= 5,
            "need at least 5 named SSS scenarios, got {sss_named:?}"
        );
        for engine in [EngineKind::TwoPc, EngineKind::Walter, EngineKind::Rococo] {
            assert!(
                catalog
                    .iter()
                    .any(|r| r.engine == engine && r.scenario.name == "partition-heal"),
                "{engine} is missing its partition-heal run"
            );
        }
        // The catalog now includes the loss and crash-stop fault classes.
        for required in [
            "lossy-link",
            "crash-restart-during-commit",
            "leader-crash-mid-epoch",
        ] {
            assert!(
                sss_named.contains(&required),
                "SSS catalog is missing its {required} run"
            );
        }
        // Every SSS entry asserts the full guarantee set; crash-stop plans
        // relax only the abort-free-reads headline (a read parked on the
        // crashing node aborts and retries), never consistency or liveness.
        for run in catalog.iter().filter(|r| r.engine == EngineKind::Sss) {
            let expected = if !run.scenario.faults.crashes.is_empty() {
                ScenarioExpectations::sss_under_crash()
            } else {
                ScenarioExpectations::sss()
            };
            assert_eq!(
                run.scenario.expect, expected,
                "scenario {}",
                run.scenario.name
            );
        }
    }

    /// The seeded regression scenarios stay honest: re-run the checker on
    /// each source mutation and assert its counterexample still classifies
    /// into the fault class whose knobs the scenario uses. If a model change
    /// shifts the minimal trace to a different mechanism, this fails and the
    /// scenario must be re-seeded.
    #[test]
    fn seeded_scenarios_match_the_checker_classification() {
        use sss_model::{bfs_check, ChaosHints, CheckConfig, Mutation, SssModel};
        for (mutation, expected) in [
            (
                Mutation::DuplicatePrepare,
                sss_model::chaos::FaultKind::Duplicate,
            ),
            (
                Mutation::AbortOvertakesPrepare,
                sss_model::chaos::FaultKind::Reorder,
            ),
        ] {
            let model = SssModel::new(sss_model::ModelConfig::mutated(mutation));
            let report = bfs_check(&model, &CheckConfig::default());
            let cx = report
                .violation
                .unwrap_or_else(|| panic!("{mutation:?} must still produce a counterexample"));
            let hints = ChaosHints::from_counterexample(&cx);
            assert_eq!(
                hints.fault,
                expected,
                "{mutation:?} reclassified; re-seed {}",
                modelcheck_scenario_name(mutation)
            );
            let named = sss_scenarios(true, 1)
                .into_iter()
                .find(|s| s.name == modelcheck_scenario_name(mutation))
                .expect("seeded scenario is in the catalog");
            assert_eq!(named.expect, ScenarioExpectations::sss());
            assert_eq!(named.faults, fault_plan_for(expected, 1));
        }
    }

    #[test]
    fn config_parses_flags() {
        let args: Vec<String> = ["bin", "--smoke", "--seed", "7", "--check-determinism"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let config = ScenarioConfig::from_args(&args);
        assert!(config.smoke);
        assert!(config.check_determinism);
        assert_eq!(config.seed, 7);
        let default = ScenarioConfig::from_args(&["bin".to_string()]);
        assert!(!default.smoke);
        assert_eq!(default.seed, 42);
    }
}
