//! Benchmark harness reproducing the SSS evaluation (paper §V).
//!
//! The harness has two layers:
//!
//! * [`harness`] builds engines exclusively through the `sss-engine`
//!   registry ([`EngineKind::build`](sss_engine::EngineKind::build)) and
//!   drives them with the `sss-workload` closed-loop driver, so that one
//!   code path benchmarks every engine under identical conditions — the
//!   same methodology as the paper, which re-implemented every competitor
//!   on the same software infrastructure. This crate defines **no** engine
//!   adapters of its own; those live with the engines (`sss-core`,
//!   `sss-baselines`) behind the `sss-engine` trait surface.
//! * [`figures`] encodes each figure of the evaluation section as a
//!   parameter sweep returning printable rows. The `fig3` … `fig8` binaries
//!   are thin wrappers around these functions; `cargo bench` runs
//!   reduced-scale versions of the same sweeps (component micro-benchmarks
//!   live in the crates owning the components).
//!
//! Absolute numbers differ from the paper (the paper uses a 20-node
//! InfiniBand cluster; this repository runs an in-process cluster on one
//! machine), but the harness preserves the comparisons the paper draws:
//! which engine wins in which regime, and how the gaps move as the read-only
//! share, the node count, the locality and the read-set size change.

//! A third layer runs *chaos scenarios*: [`scenarios`] holds a catalog of
//! named fault plans (partition-heal, asymmetric-slow-link,
//! duplicate-storm, reorder-burst, pause-during-commit, chaos-mix) built on
//! `sss-faults` and executed through `sss-workload`'s scenario runner, with
//! every recorded history verified by the `sss-consistency` checker. The
//! `scenarios` binary prints the catalog report; [`cli`] owns the argument
//! parsing shared by every binary.
//!
//! The same catalog also runs under the deterministic discrete-event
//! simulator: [`sim_sweep`] sweeps it across hundreds of seeds on virtual
//! time (the `sim-sweep` binary and the release-tier `sim_sweep` test
//! suite), gating every seed on a checker-clean history and a bit-identical
//! replay, and holds the committed seed-replay regression corpus.

pub mod cli;
pub mod figures;
pub mod harness;
pub mod scenarios;
pub mod sim_sweep;
pub mod throughput;

pub use harness::{run_engine, run_engine_with_profile};
pub use sim_sweep::{run_sim_sweep, SimSweepConfig, SweepReport};
pub use sss_engine::{EngineKind, EngineTuning, NetProfile};
pub use throughput::{run_throughput, ThroughputConfig, ThroughputReport};

pub use cli::{figure_main, FigureSelection};
pub use figures::{
    fig3_throughput, fig4a_max_throughput, fig4b_latency, fig5_breakdown, fig6_rococo,
    fig7_locality, fig8_read_only_size, BenchScale, FigureRow, FigureTable,
};
