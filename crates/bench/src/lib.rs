//! Benchmark harness reproducing the SSS evaluation (paper §V).
//!
//! The harness has two layers:
//!
//! * [`adapters`] wraps every engine (SSS, 2PC-baseline, Walter, ROCOCO)
//!   behind the `sss-workload` [`TransactionEngine`](sss_workload::TransactionEngine)
//!   trait so that one closed-loop driver benchmarks them all under
//!   identical conditions — the same methodology as the paper, which
//!   re-implemented every competitor on the same software infrastructure.
//! * [`figures`] encodes each figure of the evaluation section as a
//!   parameter sweep returning printable rows. The `fig3` … `fig8` binaries
//!   are thin wrappers around these functions; `cargo bench` runs
//!   reduced-scale versions of the same sweeps plus component
//!   micro-benchmarks.
//!
//! Absolute numbers differ from the paper (the paper uses a 20-node
//! InfiniBand cluster; this repository runs an in-process cluster on one
//! machine), but the harness preserves the comparisons the paper draws:
//! which engine wins in which regime, and how the gaps move as the read-only
//! share, the node count, the locality and the read-set size change.

pub mod adapters;
pub mod figures;

pub use adapters::{EngineKind, RococoEngine, SssEngine, TwoPcEngine, WalterEngine};
pub use figures::{
    fig3_throughput, fig4a_max_throughput, fig4b_latency, fig5_breakdown, fig6_rococo,
    fig7_locality, fig8_read_only_size, BenchScale, FigureRow, FigureTable,
};
