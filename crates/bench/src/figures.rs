//! One harness function per figure of the evaluation section.
//!
//! Each function returns a [`FigureTable`] whose rows mirror the data series
//! of the corresponding plot in the paper. The binaries under `src/bin/`
//! print these tables; `EXPERIMENTS.md` records the measured output next to
//! the paper's reported trends.

use std::time::Duration;

use sss_engine::EngineKind;
use sss_workload::{KeySelection, WorkloadReport, WorkloadSpec};

use crate::harness::run_engine;

/// How large an experiment to run.
///
/// `Paper` uses the paper's parameters (up to 20 nodes, 10 clients per node,
/// 5k/10k keys); `Quick` shrinks node counts, client counts and durations so
/// the full suite completes in minutes on a laptop while preserving the
/// relative comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Laptop-friendly scale (default for `cargo bench` and the binaries).
    Quick,
    /// The paper's configuration.
    Paper,
}

impl BenchScale {
    /// Node counts swept by the throughput figures.
    pub fn node_counts(&self) -> Vec<usize> {
        match self {
            BenchScale::Quick => vec![2, 4, 6, 8],
            BenchScale::Paper => vec![5, 10, 15, 20],
        }
    }

    /// Clients per node.
    pub fn clients_per_node(&self) -> usize {
        match self {
            BenchScale::Quick => 3,
            BenchScale::Paper => 10,
        }
    }

    /// Key-space sizes (the paper uses 5k and 10k).
    pub fn key_counts(&self) -> Vec<usize> {
        match self {
            BenchScale::Quick => vec![512, 1024],
            BenchScale::Paper => vec![5_000, 10_000],
        }
    }

    /// Duration of each measured trial.
    pub fn duration(&self) -> Duration {
        match self {
            BenchScale::Quick => Duration::from_millis(300),
            BenchScale::Paper => Duration::from_secs(5),
        }
    }

    /// Trials averaged per data point (the paper uses 5).
    pub fn trials(&self) -> usize {
        match self {
            BenchScale::Quick => 1,
            BenchScale::Paper => 5,
        }
    }

    /// Parses `--paper-scale` style flags from command-line arguments.
    pub fn from_args(args: &[String]) -> Self {
        if args.iter().any(|a| a == "--paper-scale") {
            BenchScale::Paper
        } else {
            BenchScale::Quick
        }
    }
}

/// One data point of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRow {
    /// Data-series label (e.g. "SSS-5K").
    pub series: String,
    /// X-axis value (node count, clients per node, read-set size...).
    pub x: f64,
    /// Primary measurement (throughput in kTx/s or latency in ms, as in the
    /// corresponding figure).
    pub y: f64,
    /// Abort rate observed while producing the point.
    pub abort_rate: f64,
    /// Mean update-transaction latency (ms).
    pub update_latency_ms: f64,
    /// Mean time spent between internal and external commit (ms); zero for
    /// engines without the distinction.
    pub pre_commit_wait_ms: f64,
}

impl FigureRow {
    fn from_report(series: String, x: f64, y: f64, report: &WorkloadReport) -> Self {
        FigureRow {
            series,
            x,
            y,
            abort_rate: report.abort_rate(),
            update_latency_ms: report.update_latency.mean.as_secs_f64() * 1e3,
            pre_commit_wait_ms: report.mean_pre_commit_wait().as_secs_f64() * 1e3,
        }
    }
}

/// A complete figure: a titled collection of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTable {
    /// Figure identifier ("Figure 3(a)", ...).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The data points.
    pub rows: Vec<FigureRow>,
}

impl FigureTable {
    /// Renders the table as aligned text, one row per data point.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!(
            "{:<14} {:>10} {:>12} {:>10} {:>14} {:>16}\n",
            "series",
            self.x_label.as_str(),
            self.y_label.as_str(),
            "abort%",
            "upd-lat(ms)",
            "precommit(ms)"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>10.1} {:>12.2} {:>9.1}% {:>14.3} {:>16.3}\n",
                row.series,
                row.x,
                row.y,
                row.abort_rate * 100.0,
                row.update_latency_ms,
                row.pre_commit_wait_ms,
            ));
        }
        out
    }

    /// Rows of one series, in x order.
    pub fn series(&self, name: &str) -> Vec<&FigureRow> {
        let mut rows: Vec<&FigureRow> = self.rows.iter().filter(|r| r.series == name).collect();
        rows.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("x is never NaN"));
        rows
    }
}

fn base_spec(scale: BenchScale, nodes: usize, keys: usize, read_only_percent: u8) -> WorkloadSpec {
    WorkloadSpec::new(nodes)
        .clients_per_node(scale.clients_per_node())
        .total_keys(keys)
        .read_only_percent(read_only_percent)
        .duration(scale.duration())
        .trials(scale.trials())
}

/// Figure 3: throughput of SSS, 2PC-baseline and Walter while varying the
/// node count, for a given read-only percentage and both key-space sizes
/// (replication degree 2).
pub fn fig3_throughput(scale: BenchScale, read_only_percent: u8) -> FigureTable {
    let mut rows = Vec::new();
    for keys in scale.key_counts() {
        for nodes in scale.node_counts() {
            for kind in [EngineKind::TwoPc, EngineKind::Walter, EngineKind::Sss] {
                let spec = base_spec(scale, nodes, keys, read_only_percent);
                let report = run_engine(kind, &spec, 2.min(nodes));
                let series = format!("{}-{}K", kind.label(), keys_label(keys));
                rows.push(FigureRow::from_report(
                    series,
                    nodes as f64,
                    report.throughput_ktps(),
                    &report,
                ));
            }
        }
    }
    FigureTable {
        title: format!("Figure 3 — throughput, {read_only_percent}% read-only, replication 2"),
        x_label: "nodes".into(),
        y_label: "kTx/s".into(),
        rows,
    }
}

/// Figure 4(a): maximum attainable throughput of SSS and 2PC-baseline with
/// 50% read-only transactions and the smaller key space. The client count is
/// increased per engine until throughput stops improving.
pub fn fig4a_max_throughput(scale: BenchScale) -> FigureTable {
    let client_sweep: &[usize] = match scale {
        BenchScale::Quick => &[2, 4, 8],
        BenchScale::Paper => &[5, 10, 20, 30],
    };
    let keys = scale.key_counts()[0];
    let mut rows = Vec::new();
    for nodes in scale.node_counts() {
        for kind in [EngineKind::Sss, EngineKind::TwoPc] {
            let mut best: Option<WorkloadReport> = None;
            for clients in client_sweep {
                let spec = base_spec(scale, nodes, keys, 50).clients_per_node(*clients);
                let report = run_engine(kind, &spec, 2.min(nodes));
                if best
                    .as_ref()
                    .map(|b| report.throughput() > b.throughput())
                    .unwrap_or(true)
                {
                    best = Some(report);
                }
            }
            let report = best.expect("at least one client count swept");
            rows.push(FigureRow::from_report(
                kind.label().to_string(),
                nodes as f64,
                report.throughput_ktps(),
                &report,
            ));
        }
    }
    FigureTable {
        title: "Figure 4(a) — maximum attainable throughput, 50% read-only, 5k keys".into(),
        x_label: "nodes".into(),
        y_label: "kTx/s".into(),
        rows,
    }
}

/// Figure 4(b): external-commit latency of SSS and 2PC-baseline while
/// varying the number of clients per node (largest node count, 50%
/// read-only, smaller key space).
pub fn fig4b_latency(scale: BenchScale) -> FigureTable {
    let clients: &[usize] = match scale {
        BenchScale::Quick => &[1, 3, 5],
        BenchScale::Paper => &[1, 3, 5, 10],
    };
    let nodes = *scale.node_counts().last().expect("non-empty node sweep");
    let keys = scale.key_counts()[0];
    let mut rows = Vec::new();
    for per_node in clients {
        for kind in [EngineKind::Sss, EngineKind::TwoPc] {
            let spec = base_spec(scale, nodes, keys, 50).clients_per_node(*per_node);
            let report = run_engine(kind, &spec, 2.min(nodes));
            rows.push(FigureRow::from_report(
                kind.label().to_string(),
                *per_node as f64,
                report.update_latency.mean.as_secs_f64() * 1e3,
                &report,
            ));
        }
    }
    FigureTable {
        title: format!("Figure 4(b) — external commit latency, {nodes} nodes, 50% read-only"),
        x_label: "clients/node".into(),
        y_label: "latency ms".into(),
        rows,
    }
}

/// Figure 5: breakdown of the SSS update-transaction latency into the
/// internal-commit part and the pre-commit (snapshot-queue) wait, varying
/// the clients per node.
pub fn fig5_breakdown(scale: BenchScale) -> FigureTable {
    let clients: &[usize] = match scale {
        BenchScale::Quick => &[1, 3, 5],
        BenchScale::Paper => &[1, 3, 5, 10],
    };
    let nodes = *scale.node_counts().last().expect("non-empty node sweep");
    let keys = scale.key_counts()[0];
    let mut rows = Vec::new();
    for per_node in clients {
        let spec = base_spec(scale, nodes, keys, 50).clients_per_node(*per_node);
        let report = run_engine(EngineKind::Sss, &spec, 2.min(nodes));
        rows.push(FigureRow::from_report(
            "SSS-total".into(),
            *per_node as f64,
            report.update_latency.mean.as_secs_f64() * 1e3,
            &report,
        ));
        rows.push(FigureRow::from_report(
            "SSS-internal".into(),
            *per_node as f64,
            report.internal_latency.mean.as_secs_f64() * 1e3,
            &report,
        ));
    }
    FigureTable {
        title: format!("Figure 5 — SSS latency breakdown (internal vs pre-commit), {nodes} nodes"),
        x_label: "clients/node".into(),
        y_label: "latency ms".into(),
        rows,
    }
}

/// Figure 6: SSS vs ROCOCO vs 2PC-baseline with replication disabled, 5k
/// keys, for a given read-only percentage.
pub fn fig6_rococo(scale: BenchScale, read_only_percent: u8) -> FigureTable {
    let keys = scale.key_counts()[0];
    let mut rows = Vec::new();
    for nodes in scale.node_counts() {
        for kind in [EngineKind::Sss, EngineKind::TwoPc, EngineKind::Rococo] {
            let spec = base_spec(scale, nodes, keys, read_only_percent);
            let report = run_engine(kind, &spec, 1);
            rows.push(FigureRow::from_report(
                format!("{}-{}K", kind.label(), keys_label(keys)),
                nodes as f64,
                report.throughput_ktps(),
                &report,
            ));
        }
    }
    FigureTable {
        title: format!(
            "Figure 6 — SSS vs ROCOCO vs 2PC, no replication, {read_only_percent}% read-only"
        ),
        x_label: "nodes".into(),
        y_label: "kTx/s".into(),
        rows,
    }
}

/// Figure 7: throughput with 80% read-only transactions and 50% key-access
/// locality, both key-space sizes.
pub fn fig7_locality(scale: BenchScale) -> FigureTable {
    let mut rows = Vec::new();
    for keys in scale.key_counts() {
        for nodes in scale.node_counts() {
            for kind in [EngineKind::TwoPc, EngineKind::Walter, EngineKind::Sss] {
                let spec = base_spec(scale, nodes, keys, 80).key_selection(KeySelection::Local {
                    local_fraction_percent: 50,
                });
                let report = run_engine(kind, &spec, 2.min(nodes));
                rows.push(FigureRow::from_report(
                    format!("{}-{}K", kind.label(), keys_label(keys)),
                    nodes as f64,
                    report.throughput_ktps(),
                    &report,
                ));
            }
        }
    }
    FigureTable {
        title: "Figure 7 — throughput, 80% read-only, 50% locality".into(),
        x_label: "nodes".into(),
        y_label: "kTx/s".into(),
        rows,
    }
}

/// Figure 8: speedup of SSS over ROCOCO and 2PC-baseline while growing the
/// number of keys accessed by read-only transactions (80% read-only,
/// replication disabled).
pub fn fig8_read_only_size(scale: BenchScale) -> FigureTable {
    let sizes: &[usize] = &[2, 4, 8, 16];
    let nodes = match scale {
        BenchScale::Quick => 4,
        BenchScale::Paper => 15,
    };
    let mut rows = Vec::new();
    for keys in scale.key_counts() {
        for size in sizes {
            let spec =
                |_: EngineKind| base_spec(scale, nodes, keys, 80).read_only_access_count(*size);
            let sss = run_engine(EngineKind::Sss, &spec(EngineKind::Sss), 1);
            let rococo = run_engine(EngineKind::Rococo, &spec(EngineKind::Rococo), 1);
            let twopc = run_engine(EngineKind::TwoPc, &spec(EngineKind::TwoPc), 1);
            let speedup = |other: &WorkloadReport| {
                if other.throughput() > 0.0 {
                    sss.throughput() / other.throughput()
                } else {
                    0.0
                }
            };
            rows.push(FigureRow::from_report(
                format!("SSS/ROCOCO-{}K", keys_label(keys)),
                *size as f64,
                speedup(&rococo),
                &sss,
            ));
            rows.push(FigureRow::from_report(
                format!("SSS/2PC-{}K", keys_label(keys)),
                *size as f64,
                speedup(&twopc),
                &sss,
            ));
        }
    }
    FigureTable {
        title: format!("Figure 8 — SSS speedup vs read-only size, {nodes} nodes, 80% read-only"),
        x_label: "keys/read-only".into(),
        y_label: "speedup".into(),
        rows,
    }
}

fn keys_label(keys: usize) -> String {
    if keys >= 1000 {
        format!("{}", keys / 1000)
    } else {
        format!("0.{}", keys / 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters() {
        assert_eq!(BenchScale::Quick.node_counts(), vec![2, 4, 6, 8]);
        assert_eq!(BenchScale::Paper.node_counts(), vec![5, 10, 15, 20]);
        assert_eq!(BenchScale::Paper.clients_per_node(), 10);
        assert_eq!(BenchScale::Paper.trials(), 5);
        assert_eq!(
            BenchScale::from_args(&["--paper-scale".to_string()]),
            BenchScale::Paper
        );
        assert_eq!(BenchScale::from_args(&[]), BenchScale::Quick);
    }

    #[test]
    fn figure_table_rendering_and_series_selection() {
        let table = FigureTable {
            title: "demo".into(),
            x_label: "nodes".into(),
            y_label: "kTx/s".into(),
            rows: vec![
                FigureRow {
                    series: "SSS-5K".into(),
                    x: 10.0,
                    y: 40.0,
                    abort_rate: 0.05,
                    update_latency_ms: 1.0,
                    pre_commit_wait_ms: 0.3,
                },
                FigureRow {
                    series: "SSS-5K".into(),
                    x: 5.0,
                    y: 20.0,
                    abort_rate: 0.02,
                    update_latency_ms: 0.9,
                    pre_commit_wait_ms: 0.2,
                },
                FigureRow {
                    series: "2PC-5K".into(),
                    x: 5.0,
                    y: 10.0,
                    abort_rate: 0.2,
                    update_latency_ms: 2.0,
                    pre_commit_wait_ms: 0.0,
                },
            ],
        };
        let rendered = table.render();
        assert!(rendered.contains("demo"));
        assert!(rendered.contains("SSS-5K"));
        let series = table.series("SSS-5K");
        assert_eq!(series.len(), 2);
        assert!(series[0].x < series[1].x);
    }

    #[test]
    fn keys_label_formats_thousands() {
        assert_eq!(keys_label(5_000), "5");
        assert_eq!(keys_label(10_000), "10");
        assert_eq!(keys_label(512), "0.5");
    }
}
