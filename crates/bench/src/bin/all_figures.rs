//! Runs every figure of the evaluation in sequence and prints the tables.
//!
//! Usage: `cargo run -p sss-bench --release --bin all_figures [--paper-scale]`

use sss_bench::cli::{figure_main, FigureSelection};

fn main() {
    figure_main(FigureSelection::All);
}
