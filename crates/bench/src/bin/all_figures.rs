//! Runs every figure of the evaluation in sequence and prints the tables.
//!
//! Usage: `cargo run -p sss-bench --release --bin all_figures [--paper-scale]`

use sss_bench::{
    fig3_throughput, fig4a_max_throughput, fig4b_latency, fig5_breakdown, fig6_rococo,
    fig7_locality, fig8_read_only_size, BenchScale,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = BenchScale::from_args(&args);
    for read_only in [20u8, 50, 80] {
        println!("{}", fig3_throughput(scale, read_only).render());
    }
    println!("{}", fig4a_max_throughput(scale).render());
    println!("{}", fig4b_latency(scale).render());
    println!("{}", fig5_breakdown(scale).render());
    for read_only in [20u8, 80] {
        println!("{}", fig6_rococo(scale, read_only).render());
    }
    println!("{}", fig7_locality(scale).render());
    println!("{}", fig8_read_only_size(scale).render());
}
