//! Closed-loop throughput/latency harness over the engine registry.
//!
//! Sweeps (engine × storage-shard-count × delivery-batch-size ×
//! confirm-epoch-window) cells, prints a summary table and writes the
//! machine-readable `BENCH_throughput.json` (schema `sss-throughput/v4`,
//! including the per-protocol-phase latency breakdown). See the README's
//! "Benchmark methodology" section. The epoch dimension only varies SSS
//! (the baselines have no confirmation rounds to group); non-SSS engines
//! run a single cell per (shards, batch) combination.
//!
//! ```sh
//! cargo run --release -p sss-bench --bin throughput
//! cargo run --release -p sss-bench --bin throughput -- \
//!     --engines sss,2pc --nodes 4 --shards 1,8 --batch 1,16 \
//!     --epoch 1,32 --read-only 10
//! cargo run --release -p sss-bench --bin throughput -- --smoke   # CI
//! ```
//!
//! Options (defaults in parentheses): `--engines sss,2pc,walter,rococo` —
//! comma-separated registry names; `--shards 8` — shard counts swept per
//! engine; `--batch 1,16` — per-wakeup delivery batch sizes swept per cell;
//! `--epoch 32` — SSS grouped-confirmation epoch windows swept per cell
//! (1 disables grouping); `--nodes 4`, `--replication 2`, `--clients 8`
//! (per node), `--keys 1024`, `--read-only 10` (percent),
//! `--warmup-ms 300`, `--measure-ms 1500`, `--ops N` (fixed total measured
//! operations instead of a timed window), `--seed 42`,
//! `--out BENCH_throughput.json`, `--smoke` (tiny fixed-ops preset for CI),
//! `--no-obs` (disable observability: no per-phase breakdown, lowest
//! overhead), `--trace-out PATH` (drain every cell's trace rings into a
//! Chrome-trace JSON file; open in `chrome://tracing` or Perfetto).

use std::time::Duration;

use sss_bench::cli::{parse_flag, parse_u64, parse_value};
use sss_bench::throughput::{render_json, render_table, run_throughput, ThroughputConfig};
use sss_bench::EngineKind;
use sss_engine::chrome_trace_json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = if parse_flag(&args, "--smoke") {
        ThroughputConfig::smoke()
    } else {
        ThroughputConfig::default()
    };

    if let Some(engines) = parse_value(&args, "--engines") {
        config.engines = engines
            .split(',')
            .map(|name| {
                name.parse::<EngineKind>()
                    .unwrap_or_else(|e| panic!("--engines: {e}"))
            })
            .collect();
    }
    if let Some(shards) = parse_value(&args, "--shards") {
        config.shard_counts = shards
            .split(',')
            .map(|s| {
                s.parse::<usize>()
                    .unwrap_or_else(|_| panic!("--shards expects numbers, got {s:?}"))
            })
            .collect();
    }
    if let Some(batches) = parse_value(&args, "--batch") {
        config.batch_sizes = batches
            .split(',')
            .map(|s| {
                s.parse::<usize>()
                    .unwrap_or_else(|_| panic!("--batch expects numbers, got {s:?}"))
            })
            .collect();
    }
    if let Some(epochs) = parse_value(&args, "--epoch") {
        config.epoch_windows = epochs
            .split(',')
            .map(|s| {
                s.parse::<usize>()
                    .unwrap_or_else(|_| panic!("--epoch expects numbers, got {s:?}"))
            })
            .collect();
    }
    if let Some(nodes) = parse_u64(&args, "--nodes") {
        config.nodes = nodes as usize;
    }
    if let Some(replication) = parse_u64(&args, "--replication") {
        config.replication = replication as usize;
    }
    if let Some(clients) = parse_u64(&args, "--clients") {
        config.clients_per_node = clients as usize;
    }
    if let Some(keys) = parse_u64(&args, "--keys") {
        config.total_keys = keys as usize;
    }
    if let Some(ro) = parse_u64(&args, "--read-only") {
        assert!(ro <= 100, "--read-only must be 0-100");
        config.read_only_percent = ro as u8;
    }
    if let Some(warmup) = parse_u64(&args, "--warmup-ms") {
        config.warmup = Duration::from_millis(warmup);
    }
    if let Some(measure) = parse_u64(&args, "--measure-ms") {
        config.measure = Duration::from_millis(measure);
    }
    if let Some(ops) = parse_u64(&args, "--ops") {
        config.fixed_ops = Some(ops);
    }
    if let Some(trials) = parse_u64(&args, "--trials") {
        config.trials = trials as usize;
    }
    if let Some(seed) = parse_u64(&args, "--seed") {
        config.seed = seed;
    }
    if parse_flag(&args, "--no-obs") {
        config.observability = false;
    } else if parse_flag(&args, "--obs") {
        config.observability = true;
    }
    let trace_out = parse_value(&args, "--trace-out");
    if trace_out.is_some() {
        assert!(
            config.observability,
            "--trace-out needs observability; drop --no-obs"
        );
        config.collect_spans = true;
    }
    let out_path =
        parse_value(&args, "--out").unwrap_or_else(|| "BENCH_throughput.json".to_string());

    eprintln!(
        "throughput: {} engines x {} shard counts, {} nodes, {} clients/node, {} keys, {}% read-only",
        config.engines.len(),
        config.shard_counts.len(),
        config.nodes,
        config.clients_per_node,
        config.total_keys,
        config.read_only_percent,
    );
    let report = run_throughput(&config);
    print!("{}", render_table(&report));
    let json = render_json(&report);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("failed to write {out_path}: {e}"));
    eprintln!("wrote {out_path} ({} bytes)", json.len());
    if let Some(path) = &trace_out {
        let trace = chrome_trace_json(&report.trace_groups());
        std::fs::write(path, &trace).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        eprintln!("wrote {path} ({} bytes)", trace.len());
    }
}
