//! Reproduces Figure 5: breakdown of the SSS update-transaction latency into
//! internal commit and pre-commit (snapshot-queue) wait.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig5 [--paper-scale]`

use sss_bench::{fig5_breakdown, BenchScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    println!("{}", fig5_breakdown(BenchScale::from_args(&args)).render());
}
