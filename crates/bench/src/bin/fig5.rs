//! Reproduces Figure 5: breakdown of the SSS update-transaction latency into
//! internal commit and pre-commit (snapshot-queue) wait.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig5 [--paper-scale]`

use sss_bench::cli::{figure_main, FigureSelection};

fn main() {
    figure_main(FigureSelection::Fig5);
}
