//! Reproduces Figure 7: throughput with 80% read-only transactions and 50%
//! key-access locality.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig7 [--paper-scale]`

use sss_bench::cli::{figure_main, FigureSelection};

fn main() {
    figure_main(FigureSelection::Fig7);
}
