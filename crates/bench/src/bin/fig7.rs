//! Reproduces Figure 7: throughput with 80% read-only transactions and 50%
//! key-access locality.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig7 [--paper-scale]`

use sss_bench::{fig7_locality, BenchScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    println!("{}", fig7_locality(BenchScale::from_args(&args)).render());
}
