//! Reproduces Figure 3: throughput of SSS, 2PC-baseline and Walter while
//! varying the node count, for 20%, 50% and 80% read-only transactions.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig3 [--paper-scale]`

use sss_bench::{fig3_throughput, BenchScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = BenchScale::from_args(&args);
    for read_only in [20u8, 50, 80] {
        let table = fig3_throughput(scale, read_only);
        println!("{}", table.render());
    }
}
