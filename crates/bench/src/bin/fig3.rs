//! Reproduces Figure 3: throughput of SSS, 2PC-baseline and Walter while
//! varying the node count, for 20%, 50% and 80% read-only transactions.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig3 [--paper-scale]`

use sss_bench::cli::{figure_main, FigureSelection};

fn main() {
    figure_main(FigureSelection::Fig3);
}
