//! Reproduces Figure 4(b): external-commit latency of SSS vs the
//! 2PC-baseline while varying the clients per node.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig4b [--paper-scale]`

use sss_bench::cli::{figure_main, FigureSelection};

fn main() {
    figure_main(FigureSelection::Fig4b);
}
