//! Reproduces Figure 4(b): external-commit latency of SSS vs the
//! 2PC-baseline while varying the clients per node.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig4b [--paper-scale]`

use sss_bench::{fig4b_latency, BenchScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    println!("{}", fig4b_latency(BenchScale::from_args(&args)).render());
}
