//! Runs the chaos-scenario catalog: named fault plans (partition-heal,
//! asymmetric-slow-link, duplicate-storm, reorder-burst,
//! pause-during-commit, chaos-mix, …) against SSS and the baselines, with
//! the `sss-consistency` checker verifying every recorded history.
//!
//! Usage: `cargo run -p sss-bench --release --bin scenarios
//!         [--smoke] [--seed N] [--check-determinism] [--obs]
//!         [--trace-out PATH]`
//!
//! * `--smoke` — small cluster and short runs (the CI configuration).
//! * `--seed N` — base seed of the workload and fault streams (default 42).
//! * `--check-determinism` — re-run every SSS scenario and require a
//!   bit-identical outcome summary.
//! * `--obs` — build engines with observability on (phase tracing and the
//!   watchdog's trace dump on a stuck run); summaries stay bit-identical.
//! * `--trace-out PATH` — write every run's trace spans as one Chrome-trace
//!   JSON file (open in `chrome://tracing` or Perfetto); implies `--obs`.
//!
//! Exits non-zero if any scenario fails its expectations.

use sss_bench::scenarios::{render_results, run_catalog_traced, ScenarioConfig};
use sss_engine::chrome_trace_json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = ScenarioConfig::from_args(&args);
    let (results, trace_groups) = run_catalog_traced(&config).unwrap_or_else(|error| {
        eprintln!("invalid scenario in catalog: {error}");
        std::process::exit(2);
    });
    print!("{}", render_results(&results));
    if let Some(path) = &config.trace_out {
        let json = chrome_trace_json(&trace_groups);
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        eprintln!("wrote {path} ({} bytes)", json.len());
    }
    let failures = results.iter().filter(|r| !r.passed()).count();
    if failures > 0 {
        eprintln!("{failures} scenario(s) FAILED");
        std::process::exit(1);
    }
    println!("all {} scenarios passed", results.len());
}
