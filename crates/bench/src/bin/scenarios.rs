//! Runs the chaos-scenario catalog: named fault plans (partition-heal,
//! asymmetric-slow-link, duplicate-storm, reorder-burst,
//! pause-during-commit, chaos-mix, …) against SSS and the baselines, with
//! the `sss-consistency` checker verifying every recorded history.
//!
//! Usage: `cargo run -p sss-bench --release --bin scenarios
//!         [--smoke] [--seed N] [--check-determinism]`
//!
//! * `--smoke` — small cluster and short runs (the CI configuration).
//! * `--seed N` — base seed of the workload and fault streams (default 42).
//! * `--check-determinism` — re-run every SSS scenario and require a
//!   bit-identical outcome summary.
//!
//! Exits non-zero if any scenario fails its expectations.

use sss_bench::scenarios::{render_results, run_catalog, ScenarioConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = ScenarioConfig::from_args(&args);
    let results = run_catalog(&config).unwrap_or_else(|error| {
        eprintln!("invalid scenario in catalog: {error}");
        std::process::exit(2);
    });
    print!("{}", render_results(&results));
    let failures = results.iter().filter(|r| !r.passed()).count();
    if failures > 0 {
        eprintln!("{failures} scenario(s) FAILED");
        std::process::exit(1);
    }
    println!("all {} scenarios passed", results.len());
}
