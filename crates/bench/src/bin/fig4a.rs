//! Reproduces Figure 4(a): maximum attainable throughput of SSS vs the
//! 2PC-baseline (50% read-only, 5k keys).
//!
//! Usage: `cargo run -p sss-bench --release --bin fig4a [--paper-scale]`

use sss_bench::cli::{figure_main, FigureSelection};

fn main() {
    figure_main(FigureSelection::Fig4a);
}
