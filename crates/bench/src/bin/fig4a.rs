//! Reproduces Figure 4(a): maximum attainable throughput of SSS vs the
//! 2PC-baseline (50% read-only, 5k keys).
//!
//! Usage: `cargo run -p sss-bench --release --bin fig4a [--paper-scale]`

use sss_bench::{fig4a_max_throughput, BenchScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    println!(
        "{}",
        fig4a_max_throughput(BenchScale::from_args(&args)).render()
    );
}
