//! Reproduces Figure 8: speedup of SSS over ROCOCO and the 2PC-baseline
//! while increasing the number of keys read by read-only transactions.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig8 [--paper-scale]`

use sss_bench::cli::{figure_main, FigureSelection};

fn main() {
    figure_main(FigureSelection::Fig8);
}
