//! Reproduces Figure 8: speedup of SSS over ROCOCO and the 2PC-baseline
//! while increasing the number of keys read by read-only transactions.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig8 [--paper-scale]`

use sss_bench::{fig8_read_only_size, BenchScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    println!(
        "{}",
        fig8_read_only_size(BenchScale::from_args(&args)).render()
    );
}
