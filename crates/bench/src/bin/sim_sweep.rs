//! Seed-sweep of the chaos catalog under the deterministic simulator: each
//! seed runs one catalog entry twice on `sss-sim` virtual time, gating on a
//! checker-clean history and a bit-identical replay (summary + history
//! fingerprint).
//!
//! Usage: `cargo run -p sss-bench --release --bin sim-sweep --
//!         [--seeds N] [--base-seed N] [--only NAME] [--threads N]
//!         [--print-corpus]`
//!
//! * `--seeds N` — number of consecutive seeds to sweep (default 200).
//! * `--base-seed N` — first seed (default 1).
//! * `--only NAME` — only run catalog entries with this scenario name.
//! * `--threads N` — worker threads (default: available parallelism).
//! * `--print-corpus` — instead of sweeping, replay the committed
//!   seed-replay corpus and print each entry's current fingerprint (paste
//!   into `replay_corpus` when intentionally re-recording).
//!
//! Exits non-zero if any seed fails either gate.

use sss_bench::sim_sweep::{replay_corpus, run_corpus_entry, run_sim_sweep, SimSweepConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if sss_bench::cli::parse_flag(&args, "--print-corpus") {
        for entry in replay_corpus() {
            let outcome = run_corpus_entry(&entry).unwrap_or_else(|error| {
                eprintln!("invalid corpus entry {}: {error}", entry.name);
                std::process::exit(2);
            });
            println!(
                "{:<26} seed={:<6} fingerprint=0x{:016x} passed={}",
                entry.name,
                entry.seed,
                outcome.fingerprint(),
                outcome.passed(),
            );
        }
        return;
    }
    let config = SimSweepConfig::from_args(&args);
    let report = run_sim_sweep(&config).unwrap_or_else(|error| {
        eprintln!("invalid scenario in catalog: {error}");
        std::process::exit(2);
    });
    print!("{}", report.render());
    let failures = report.failures().count();
    if failures > 0 {
        eprintln!("{failures} seed(s) FAILED");
        std::process::exit(1);
    }
    println!(
        "all {} seeds checker-clean and replayable",
        report.results.len()
    );
}
