//! Reproduces Figure 6: SSS vs ROCOCO vs 2PC-baseline with replication
//! disabled, for 20% and 80% read-only transactions.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig6 [--paper-scale]`

use sss_bench::cli::{figure_main, FigureSelection};

fn main() {
    figure_main(FigureSelection::Fig6);
}
