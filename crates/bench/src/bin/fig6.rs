//! Reproduces Figure 6: SSS vs ROCOCO vs 2PC-baseline with replication
//! disabled, for 20% and 80% read-only transactions.
//!
//! Usage: `cargo run -p sss-bench --release --bin fig6 [--paper-scale]`

use sss_bench::{fig6_rococo, BenchScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = BenchScale::from_args(&args);
    for read_only in [20u8, 80] {
        println!("{}", fig6_rococo(scale, read_only).render());
    }
}
