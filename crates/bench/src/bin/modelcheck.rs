//! Exhaustive model-check gate: verifies every clean protocol configuration
//! completely and demands a minimal counterexample from every seeded
//! mutation.
//!
//! Usage: `cargo run -p sss-bench --release --bin modelcheck
//!         [--max-states N] [--max-depth N]`
//!
//! * `--max-states N` — unique-state budget per configuration (default
//!   4,000,000; a clean run needs well under 100k).
//! * `--max-depth N` — BFS depth budget (default 256).
//!
//! Exits non-zero if a clean configuration has a violation or fails to
//! exhaust its state space within the budgets, or if any mutation fails to
//! produce a counterexample of at most 40 actions.

use std::time::Instant;

use sss_bench::cli::parse_u64;
use sss_model::{bfs_check, ChaosHints, CheckConfig, ModelConfig, Mutation, SssModel};

const COUNTEREXAMPLE_CAP: usize = 40;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = CheckConfig {
        max_states: parse_u64(&args, "--max-states").unwrap_or(4_000_000) as usize,
        max_depth: parse_u64(&args, "--max-depth").unwrap_or(256) as usize,
    };

    let clean: Vec<(&str, ModelConfig)> = vec![
        ("clean-2n2t", ModelConfig::clean_2n2t()),
        ("conflict-2n2t", ModelConfig::conflict_2n2t()),
        ("clean-3n2t", ModelConfig::clean_3n2t()),
        ("clean-2n3t", ModelConfig::clean_2n3t()),
        ("contended-2n3t", ModelConfig::contended_2n3t()),
        ("singleton-2n2t", ModelConfig::singleton_2n2t()),
        ("dup-budget-2n2t", {
            ModelConfig {
                duplicate_prepare_budget: 1,
                ..ModelConfig::clean_2n2t()
            }
        }),
    ];
    let mutations = [
        Mutation::DuplicatePrepare,
        Mutation::AbortOvertakesPrepare,
        Mutation::PrematureRelease,
        Mutation::DroppedExclusionCeiling,
    ];

    println!(
        "{:<28} {:>10} {:>12} {:>7} {:>9}  verdict",
        "configuration", "states", "transitions", "depth", "elapsed"
    );
    let mut failures = 0;

    for (name, cfg) in clean {
        let start = Instant::now();
        let report = bfs_check(&SssModel::new(cfg), &config);
        let verdict = if report.verified() {
            "verified"
        } else {
            failures += 1;
            if report.violation.is_some() {
                "VIOLATION"
            } else {
                "INCOMPLETE"
            }
        };
        println!(
            "{:<28} {:>10} {:>12} {:>7} {:>7.0}ms  {verdict}",
            name,
            report.unique_states,
            report.transitions,
            report.max_depth_seen,
            start.elapsed().as_secs_f64() * 1e3,
        );
        if let Some(cx) = report.violation {
            print!("{}", cx.render());
        }
    }

    for mutation in mutations {
        let start = Instant::now();
        let report = bfs_check(&SssModel::new(ModelConfig::mutated(mutation)), &config);
        let name = format!("mutation:{mutation:?}");
        match report.violation {
            Some(cx) if cx.actions.len() <= COUNTEREXAMPLE_CAP => {
                let hints = ChaosHints::from_counterexample(&cx);
                println!(
                    "{:<28} {:>10} {:>12} {:>7} {:>7.0}ms  caught ({} actions, {:?}, {})",
                    name,
                    report.unique_states,
                    report.transitions,
                    report.max_depth_seen,
                    start.elapsed().as_secs_f64() * 1e3,
                    cx.actions.len(),
                    hints.fault,
                    cx.invariant,
                );
            }
            Some(cx) => {
                failures += 1;
                println!(
                    "{:<28} {:>10} {:>12} {:>7} {:>7.0}ms  TOO-LONG ({} actions)",
                    name,
                    report.unique_states,
                    report.transitions,
                    report.max_depth_seen,
                    start.elapsed().as_secs_f64() * 1e3,
                    cx.actions.len(),
                );
            }
            None => {
                failures += 1;
                println!(
                    "{:<28} {:>10} {:>12} {:>7} {:>7.0}ms  MISSED (no counterexample)",
                    name,
                    report.unique_states,
                    report.transitions,
                    report.max_depth_seen,
                    start.elapsed().as_secs_f64() * 1e3,
                );
            }
        }
    }

    if failures > 0 {
        eprintln!("{failures} configuration(s) FAILED");
        std::process::exit(1);
    }
    println!("all configurations verified; all mutations caught");
}
