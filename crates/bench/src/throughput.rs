//! Closed-loop throughput/latency measurement over the engine registry.
//!
//! This is the measurement pipeline behind the `throughput` binary: for
//! every requested (engine × storage-shard-count) cell it builds the engine
//! through [`EngineKind::build_tuned`], pre-populates the key space, runs
//! `clients_per_node` closed-loop client threads per node through a
//! **warm-up phase** followed by a **measured window**, and reports ops/s,
//! latency percentiles (p50/p95/p99), the abort rate, and the per-shard
//! contention counters of the storage layer.
//!
//! Methodology notes:
//!
//! * **Closed loop** — each client issues a new transaction only once the
//!   previous one returned (paper §V), so offered load scales with the
//!   client count and latency back-pressure is realistic.
//! * **Warm-up** — populating the key space and JIT-warming the process
//!   distort early samples; nothing is recorded until the warm-up elapses.
//! * **Snapshot-and-diff counters** — storage and mailbox counters are
//!   monotonic and never reset. The harness snapshots them when the
//!   measured window opens and again when it closes and reports the
//!   difference, so per-window numbers are exact regardless of warm-up
//!   traffic or how many cells already ran in the process.
//! * **Fixed-ops mode** — with [`ThroughputConfig::fixed_ops`] set, every
//!   client executes a fixed number of measured transactions instead of
//!   running for a wall-clock window. CI smoke jobs use this to keep run
//!   time bounded and independent of machine speed.
//!
//! * **Batch sweep** — `batch_sizes` sweeps the per-wakeup delivery batch
//!   size of the engine's mailbox workers (`EngineTuning::delivery_batch`),
//!   batch size 1 reproducing one-message-per-wakeup delivery. Per-run
//!   message accounting (messages per committed transaction, messages per
//!   worker wakeup, locally delivered messages) quantifies what batching
//!   and the local delivery fast path save.
//! * **Epoch sweep** — `epoch_windows` sweeps SSS's grouped
//!   external-commit confirmation window (`EngineTuning::confirm_epoch`);
//!   window 1 reproduces the per-transaction confirmation round of the
//!   base protocol. Baseline engines ignore the knob, so only the first
//!   window is run for them. Per-message-kind counts in the report
//!   attribute the round-reduction win per message type.
//! * **Conservation check** — each trial asserts that the mailbox
//!   counters balance exactly across the measured window
//!   (`MailboxStats::conserves`): the backlog gauges of the two snapshots
//!   reconcile any in-window drain of pre-window traffic, so a skewed
//!   count is a harness bug, not noise.
//! * **Per-phase breakdown** — with [`ThroughputConfig::observability`]
//!   on (the default), engines are built with an `sss-obs` hub and the
//!   harness diffs the hub's per-phase latency histograms over the
//!   measured window, reporting where commit latency goes (for SSS:
//!   how much of it is the grouped external-commit confirmation wait).
//!   Latency percentiles are computed from the same log-bucketed
//!   [`Histogram`] the hub uses, merged deterministically across clients
//!   and trials.
//!
//! The report serializes to the machine-readable `BENCH_throughput.json`
//! (schema `sss-throughput/v4`, documented in the repository README) so
//! future changes have a perf trajectory to compare against.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use sss_engine::{
    EngineKind, EngineTuning, Histogram, MailboxStats, NetProfile, Phase, StorageStats, TraceSpan,
    TxnOutcome,
};
use sss_workload::{populate, NodeId, TxnTemplate, WorkloadGenerator, WorkloadSpec};

/// Configuration of one harness invocation (a sweep over engines and shard
/// counts with otherwise identical parameters).
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Engines to measure, in order.
    pub engines: Vec<EngineKind>,
    /// Storage shard counts to sweep per engine, in order.
    pub shard_counts: Vec<usize>,
    /// Per-wakeup delivery batch sizes to sweep per (engine × shard count)
    /// cell, in order. Batch size 1 reproduces one-message-per-wakeup
    /// delivery exactly.
    pub batch_sizes: Vec<usize>,
    /// Grouped-confirmation epoch windows to sweep per cell, in order
    /// (SSS only — baseline engines ignore the knob, so the sweep runs
    /// only the first window for them). Window 1 reproduces the
    /// per-transaction confirmation round of the base protocol.
    pub epoch_windows: Vec<usize>,
    /// Cluster size.
    pub nodes: usize,
    /// Replicas per key.
    pub replication: usize,
    /// Closed-loop client threads per node.
    pub clients_per_node: usize,
    /// Key-space size.
    pub total_keys: usize,
    /// Percentage (0-100) of read-only transactions; low values make the
    /// workload write-heavy, which is what storage sharding targets.
    pub read_only_percent: u8,
    /// Keys read and written by an update transaction.
    pub update_access_count: usize,
    /// Keys read by a read-only transaction.
    pub read_only_access_count: usize,
    /// Warm-up duration before the measured window opens.
    pub warmup: Duration,
    /// Measured-window duration (ignored in fixed-ops mode).
    pub measure: Duration,
    /// When set, each client executes `fixed_ops / total_clients` measured
    /// transactions (at least one) instead of running for `measure`.
    pub fixed_ops: Option<u64>,
    /// Trials per cell: each trial rebuilds the engine (fresh stores, fresh
    /// seed derived from `seed`) and the cell reports the aggregate, which
    /// damps scheduler noise on small or busy machines.
    pub trials: usize,
    /// Base random seed for the per-client generators.
    pub seed: u64,
    /// Build engines with observability on: per-phase latency histograms
    /// (the `per_phase` block of the JSON report) and per-node trace rings.
    /// Off means `per_phase` is reported as `null` and there are no spans
    /// to collect.
    pub observability: bool,
    /// Drain each cell's trace rings into [`ThroughputRun::spans`] so the
    /// binary can dump a Chrome-trace file (`--trace-out`). Requires
    /// `observability`; off by default because spans are only useful when
    /// someone asked for the dump.
    pub collect_spans: bool,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            engines: vec![
                EngineKind::Sss,
                EngineKind::TwoPc,
                EngineKind::Walter,
                EngineKind::Rococo,
            ],
            shard_counts: vec![8],
            batch_sizes: vec![1, sss_engine::DEFAULT_DELIVERY_BATCH],
            epoch_windows: vec![sss_engine::DEFAULT_CONFIRM_EPOCH],
            nodes: 4,
            replication: 2,
            clients_per_node: 8,
            total_keys: 1024,
            read_only_percent: 10,
            update_access_count: 2,
            read_only_access_count: 2,
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(1500),
            fixed_ops: None,
            trials: 3,
            seed: 42,
            observability: true,
            collect_spans: false,
        }
    }
}

impl ThroughputConfig {
    /// A tiny fixed-ops configuration for CI smoke runs: small cluster,
    /// bounded operation count, still covering SSS plus one baseline and a
    /// 1-vs-many shard sweep so the JSON emitter is exercised end to end.
    pub fn smoke() -> Self {
        ThroughputConfig {
            engines: vec![EngineKind::Sss, EngineKind::TwoPc],
            shard_counts: vec![1, 4],
            batch_sizes: vec![sss_engine::DEFAULT_DELIVERY_BATCH],
            nodes: 2,
            replication: 1,
            clients_per_node: 2,
            total_keys: 128,
            warmup: Duration::from_millis(50),
            fixed_ops: Some(80),
            trials: 1,
            ..ThroughputConfig::default()
        }
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec::new(self.nodes)
            .clients_per_node(self.clients_per_node)
            .total_keys(self.total_keys)
            .read_only_percent(self.read_only_percent)
            .update_access_count(self.update_access_count)
            .read_only_access_count(self.read_only_access_count)
            .seed(self.seed)
    }
}

/// Latency percentiles of one measured window, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyQuantiles {
    /// Mean latency.
    pub mean_us: u64,
    /// Median latency.
    pub p50_us: u64,
    /// 95th percentile latency.
    pub p95_us: u64,
    /// 99th percentile latency.
    pub p99_us: u64,
    /// Maximum observed latency.
    pub max_us: u64,
}

impl LatencyQuantiles {
    /// Quantiles from a log-bucketed [`Histogram`] of microsecond samples —
    /// the production path. Mean and max are exact; percentiles are
    /// quantized to the histogram's bucket (within `1/16` relative error),
    /// using the same rank convention as [`LatencyQuantiles::from_samples`].
    pub fn from_histogram(hist: &Histogram) -> Self {
        if hist.is_empty() {
            return LatencyQuantiles::default();
        }
        LatencyQuantiles {
            mean_us: hist.mean() as u64,
            p50_us: hist.value_at_quantile(0.50),
            p95_us: hist.value_at_quantile(0.95),
            p99_us: hist.value_at_quantile(0.99),
            max_us: hist.max(),
        }
    }

    /// Exact quantiles by sorting raw samples — the reference
    /// implementation the histogram path is checked against (the agreement
    /// test pins p50/p95/p99 to within one histogram bucket).
    pub fn from_samples(mut samples: Vec<Duration>) -> Self {
        if samples.is_empty() {
            return LatencyQuantiles::default();
        }
        samples.sort();
        let pick = |q: f64| {
            let idx = ((samples.len() as f64 - 1.0) * q).floor() as usize;
            samples[idx.min(samples.len() - 1)].as_micros() as u64
        };
        let total: Duration = samples.iter().sum();
        LatencyQuantiles {
            mean_us: (total / samples.len() as u32).as_micros() as u64,
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            max_us: samples.last().expect("non-empty").as_micros() as u64,
        }
    }
}

/// The measured result of one (engine × shard count) cell.
#[derive(Debug, Clone)]
pub struct ThroughputRun {
    /// Engine label ("SSS", "2PC", ...).
    pub engine: String,
    /// Storage shard arity the engine was built with.
    pub storage_shards: usize,
    /// Per-wakeup delivery batch size the engine was built with.
    pub delivery_batch: usize,
    /// Grouped-confirmation epoch window the engine was built with (SSS
    /// only; `<= 1` means per-transaction rounds; ignored by baselines).
    pub confirm_epoch: usize,
    /// Committed transactions inside the measured window.
    pub committed: u64,
    /// Aborted attempts inside the measured window.
    pub aborted: u64,
    /// Wall-clock length of the measured window.
    pub window: Duration,
    /// Latency percentiles of committed transactions.
    pub latency: LatencyQuantiles,
    /// Storage-layer counters diffed over the measured window (per-shard
    /// contention included), if the engine exposes them.
    pub storage: Option<StorageStats>,
    /// Mailbox traffic diffed over the measured window, if exposed.
    pub mailbox: Option<MailboxStats>,
    /// Per-message-kind send counts over the window, labelled by the
    /// engine's protocol message names (empty when the engine does not
    /// classify its traffic). Summed across trials like the counters.
    pub message_kinds: Vec<(String, u64)>,
    /// Per-protocol-phase latency histograms (microseconds) diffed over the
    /// measured window and merged across trials; empty when the engine was
    /// built without observability. Only phases the window actually touched
    /// appear.
    pub per_phase: Vec<(Phase, Histogram)>,
    /// Trace spans drained from the engine's rings after the run (the last
    /// ~32k spans per node, warm-up included); empty unless
    /// [`ThroughputConfig::collect_spans`] was set.
    pub spans: Vec<TraceSpan>,
}

impl ThroughputRun {
    /// Committed transactions per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.window.is_zero() {
            0.0
        } else {
            self.committed as f64 / self.window.as_secs_f64()
        }
    }

    /// Mailbox messages enqueued per committed transaction inside the
    /// window (0 when the engine exposes no mailbox stats or nothing
    /// committed). Locally delivered messages are *not* included — they
    /// never enter a queue; see [`ThroughputRun::local_per_txn`].
    pub fn messages_per_txn(&self) -> f64 {
        match (&self.mailbox, self.committed) {
            (Some(mb), committed) if committed > 0 => mb.total_enqueued() as f64 / committed as f64,
            _ => 0.0,
        }
    }

    /// Messages delivered through the transport's local fast path per
    /// committed transaction inside the window.
    pub fn local_per_txn(&self) -> f64 {
        match (&self.mailbox, self.committed) {
            (Some(mb), committed) if committed > 0 => mb.local_delivered as f64 / committed as f64,
            _ => 0.0,
        }
    }

    /// Abort rate over all attempts (0.0 - 1.0).
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }

    /// Total time the window spent in client-scope phases, in microseconds
    /// (the denominator of [`ThroughputRun::phase_share`]). Server-scope
    /// phases (lock hold times measured on the server) are excluded: they
    /// overlap client-observed phases and would double-count.
    pub fn client_phase_total_us(&self) -> u64 {
        self.per_phase
            .iter()
            .filter(|(phase, _)| !phase.is_server_scope())
            .map(|(_, hist)| hist.sum())
            .sum()
    }

    /// Share (0.0 - 1.0) of the summed client-scope phase time spent in
    /// `phase`. `None` when observability was off, the phase never ran, or
    /// `phase` is server-scope (shares are only defined against the
    /// client-observed latency budget).
    pub fn phase_share(&self, phase: Phase) -> Option<f64> {
        if phase.is_server_scope() {
            return None;
        }
        let total = self.client_phase_total_us();
        if total == 0 {
            return None;
        }
        let spent = self.per_phase.iter().find(|(p, _)| *p == phase)?.1.sum();
        Some(spent as f64 / total as f64)
    }

    /// SSS only: the share of commit latency spent waiting for the grouped
    /// external-commit confirmation (the paper's extra round) — the
    /// headline number of the per-phase breakdown. `None` for engines
    /// without a confirmation wait or when observability was off.
    pub fn confirm_wait_share(&self) -> Option<f64> {
        self.phase_share(Phase::ConfirmWait)
    }
}

/// A full harness report: the configuration echo plus one row per cell.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The configuration the sweep ran with.
    pub config: ThroughputConfig,
    /// One measured cell per (engine × shard count), in sweep order.
    pub runs: Vec<ThroughputRun>,
}

impl ThroughputReport {
    /// The collected spans grouped per cell, labelled for
    /// [`sss_engine::chrome_trace_json`]: one process group per run that
    /// recorded spans (requires [`ThroughputConfig::collect_spans`]).
    pub fn trace_groups(&self) -> Vec<(String, Vec<TraceSpan>)> {
        self.runs
            .iter()
            .filter(|run| !run.spans.is_empty())
            .map(|run| {
                (
                    format!(
                        "{} shards={} batch={} epoch={}",
                        run.engine, run.storage_shards, run.delivery_batch, run.confirm_epoch
                    ),
                    run.spans.clone(),
                )
            })
            .collect()
    }
}

const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_DONE: u8 = 2;

/// Runs the whole sweep described by `config`.
pub fn run_throughput(config: &ThroughputConfig) -> ThroughputReport {
    let mut runs = Vec::new();
    let batches = if config.batch_sizes.is_empty() {
        vec![sss_engine::DEFAULT_DELIVERY_BATCH]
    } else {
        config.batch_sizes.clone()
    };
    let epochs = if config.epoch_windows.is_empty() {
        vec![sss_engine::DEFAULT_CONFIRM_EPOCH]
    } else {
        config.epoch_windows.clone()
    };
    for &engine_kind in &config.engines {
        for &shards in &config.shard_counts {
            for &batch in &batches {
                for (i, &epoch) in epochs.iter().enumerate() {
                    // Only SSS consumes the epoch window; rerunning a
                    // baseline per window would duplicate identical cells.
                    if i > 0 && engine_kind != EngineKind::Sss {
                        continue;
                    }
                    runs.push(run_cell(config, engine_kind, shards, batch, epoch));
                }
            }
        }
    }
    ThroughputReport {
        config: config.clone(),
        runs,
    }
}

/// Runs one (engine × shard count × batch size × epoch window) cell:
/// `config.trials` trials, each a fresh engine build + populate + warm-up +
/// measured window, aggregated.
pub fn run_cell(
    config: &ThroughputConfig,
    kind: EngineKind,
    shards: usize,
    batch: usize,
    epoch: usize,
) -> ThroughputRun {
    let trials = config.trials.max(1);
    let mut aggregate: Option<ThroughputRun> = None;
    let mut all_latencies = Histogram::new();
    for trial in 0..trials {
        let mut trial_config = config.clone();
        trial_config.seed = config.seed.wrapping_add(trial as u64);
        let (run, latencies) = run_trial(&trial_config, kind, shards, batch, epoch);
        all_latencies.merge(&latencies);
        aggregate = Some(match aggregate.take() {
            None => run,
            Some(mut total) => {
                total.committed += run.committed;
                total.aborted += run.aborted;
                total.window += run.window;
                match (&mut total.storage, &run.storage) {
                    (Some(mine), Some(theirs)) => {
                        // merge() sums every field — right for counters,
                        // wrong for gauges (retained versions, resident
                        // keys), which would inflate ~trials-fold. Restore
                        // the gauges from the latest trial's snapshot.
                        mine.merge(theirs);
                        adopt_gauges(mine, theirs);
                    }
                    (slot @ None, Some(theirs)) => *slot = Some(theirs.clone()),
                    _ => {}
                }
                match (&mut total.mailbox, &run.mailbox) {
                    (Some(mine), Some(theirs)) => mine.merge(theirs),
                    (slot @ None, Some(theirs)) => *slot = Some(*theirs),
                    _ => {}
                }
                if total.message_kinds.len() == run.message_kinds.len() {
                    for (mine, theirs) in
                        total.message_kinds.iter_mut().zip(run.message_kinds.iter())
                    {
                        mine.1 += theirs.1;
                    }
                } else if total.message_kinds.is_empty() {
                    total.message_kinds = run.message_kinds.clone();
                }
                // Histogram::merge is associative and commutative, so the
                // per-trial phase windows aggregate deterministically.
                for (phase, hist) in &run.per_phase {
                    match total.per_phase.iter_mut().find(|(p, _)| p == phase) {
                        Some((_, mine)) => mine.merge(hist),
                        None => total.per_phase.push((*phase, hist.clone())),
                    }
                }
                total.spans.extend(run.spans.iter().copied());
                total
            }
        });
    }
    let mut run = aggregate.expect("at least one trial");
    run.latency = LatencyQuantiles::from_histogram(&all_latencies);
    run
}

/// Overwrites the gauge fields of a trial-aggregated [`StorageStats`] with
/// the latest trial's values (counter fields stay summed): gauges describe
/// one engine instance at one moment and must not be added across trials.
fn adopt_gauges(total: &mut StorageStats, latest: &StorageStats) {
    if let (Some(mine), Some(theirs)) = (total.mv.as_mut(), latest.mv.as_ref()) {
        mine.retained_versions = theirs.retained_versions;
        for (m, t) in mine.per_shard.iter_mut().zip(theirs.per_shard.iter()) {
            m.keys = t.keys;
        }
    }
    if let (Some(mine), Some(theirs)) = (total.sv.as_mut(), latest.sv.as_ref()) {
        for (m, t) in mine.per_shard.iter_mut().zip(theirs.per_shard.iter()) {
            m.keys = t.keys;
        }
    }
}

/// One trial of one cell; returns the run plus the latency histogram so
/// the caller can compute percentiles over every trial together.
fn run_trial(
    config: &ThroughputConfig,
    kind: EngineKind,
    shards: usize,
    batch: usize,
    epoch: usize,
) -> (ThroughputRun, Histogram) {
    let engine = kind.build_tuned(
        config.nodes,
        config.replication,
        NetProfile::Instant,
        EngineTuning::with_storage_shards(shards)
            .delivery_batch(batch)
            .confirm_epoch(epoch)
            .observability(config.observability),
        None,
    );
    let hub = engine.observability();
    let spec = config.spec();
    spec.validate().expect("throughput spec must be valid");
    populate(engine.as_ref(), &spec);

    let total_clients = config.nodes * config.clients_per_node;
    let ops_per_client = config
        .fixed_ops
        .map(|ops| (ops / total_clients as u64).max(1));
    let phase = AtomicU8::new(PHASE_WARMUP);
    let finished_clients = AtomicUsize::new(0);

    struct Tally {
        committed: u64,
        aborted: u64,
        latencies: Histogram,
    }

    let mut window = Duration::ZERO;
    let mut storage_window = None;
    let mut mailbox_window = None;
    let mut phase_window: Vec<(Phase, Histogram)> = Vec::new();

    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let phase = &phase;
        let finished = &finished_clients;
        let engine_ref = engine.as_ref();
        let spec_ref = &spec;
        let mut handles = Vec::new();
        for node in 0..config.nodes {
            for client in 0..config.clients_per_node {
                handles.push(scope.spawn(move || {
                    let mut generator = WorkloadGenerator::new(spec_ref, NodeId(node), client);
                    let mut session = engine_ref.session(node);
                    let mut tally = Tally {
                        committed: 0,
                        aborted: 0,
                        latencies: Histogram::new(),
                    };
                    let mut measured_ops: u64 = 0;
                    let mut done = false;
                    loop {
                        let current = phase.load(Ordering::Acquire);
                        if current == PHASE_DONE {
                            break;
                        }
                        // In fixed-ops mode a client past its quota idles
                        // until every client is done (keeping the loop
                        // closed would skew the slowest client's window).
                        if done {
                            std::thread::sleep(Duration::from_micros(200));
                            continue;
                        }
                        let template = generator.next_txn();
                        let outcome = match &template {
                            TxnTemplate::ReadOnly { keys } => session.run_read_only(keys),
                            TxnTemplate::Update { keys, values } => {
                                let writes: Vec<_> =
                                    keys.iter().cloned().zip(values.iter().cloned()).collect();
                                session.run_update(keys, &writes)
                            }
                        };
                        if current != PHASE_MEASURE {
                            continue;
                        }
                        match outcome {
                            TxnOutcome::Committed { latency, .. } => {
                                tally.committed += 1;
                                tally.latencies.record(latency.as_micros() as u64);
                            }
                            TxnOutcome::Aborted => tally.aborted += 1,
                        }
                        measured_ops += 1;
                        if let Some(quota) = ops_per_client {
                            if measured_ops >= quota {
                                done = true;
                                finished.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                    }
                    tally
                }));
            }
        }

        // Drive the phases from this thread: warm up, snapshot, measure,
        // snapshot again, diff.
        std::thread::sleep(config.warmup);
        let storage_before = engine_ref.storage_stats();
        let mailbox_before = engine_ref.mailbox_totals();
        let phase_before = hub.as_ref().map(|h| h.phase_snapshot());
        let window_start = Instant::now();
        phase.store(PHASE_MEASURE, Ordering::Release);
        match ops_per_client {
            Some(_) => {
                while finished.load(Ordering::Acquire) < total_clients {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            None => std::thread::sleep(config.measure),
        }
        phase.store(PHASE_DONE, Ordering::Release);
        window = window_start.elapsed();
        storage_window = engine_ref
            .storage_stats()
            .map(|after| after.diff(&storage_before.unwrap_or_default()));
        mailbox_window = engine_ref.mailbox_totals().map(|after| {
            // Snapshots are taken under the mailbox mutex, so a snapshot
            // can never observe more dequeues than enqueues per class (the
            // window *diff* legitimately can: backlog enqueued before the
            // window may drain inside it).
            assert!(
                after.is_coherent(),
                "incoherent mailbox snapshot: {after:?}"
            );
            let before = mailbox_before.unwrap_or_default();
            // Stats-coherence assertion: the two snapshots' backlog gauges
            // must reconcile the window's enqueue/dequeue counters exactly
            // (per class, summed over the cluster's paired per-node
            // snapshots). A violation means a counting window where a
            // dequeue is visible before its enqueue — a harness/stats bug.
            assert!(
                MailboxStats::conserves(&before, &after),
                "mailbox window books must balance: before={before:?} after={after:?}"
            );
            after.diff(&before)
        });
        if let (Some(hub), Some(before)) = (hub.as_ref(), phase_before) {
            // Like the storage/mailbox counters, the phase histograms are
            // monotonic: diff the window and keep only touched phases.
            phase_window = hub
                .phase_snapshot()
                .iter()
                .zip(before.iter())
                .filter_map(|((phase, after), (_, earlier))| {
                    let window = after.diff(earlier);
                    (!window.is_empty()).then_some((*phase, window))
                })
                .collect();
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    let mut committed = 0;
    let mut aborted = 0;
    let mut latencies = Histogram::new();
    for tally in tallies {
        committed += tally.committed;
        aborted += tally.aborted;
        latencies.merge(&tally.latencies);
    }
    let message_kinds = match (engine.message_kind_labels(), &mailbox_window) {
        (Some(labels), Some(mb)) => labels
            .iter()
            .zip(mb.per_kind.iter())
            .map(|(label, count)| (label.to_string(), *count))
            .collect(),
        _ => Vec::new(),
    };
    let spans = match (&hub, config.collect_spans) {
        (Some(hub), true) => hub.drain_spans(),
        _ => Vec::new(),
    };
    let run = ThroughputRun {
        engine: kind.label().to_string(),
        storage_shards: shards,
        delivery_batch: batch,
        confirm_epoch: epoch,
        committed,
        aborted,
        window,
        latency: LatencyQuantiles::default(),
        storage: storage_window,
        mailbox: mailbox_window,
        message_kinds,
        per_phase: phase_window,
        spans,
    };
    (run, latencies)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Renders the human-readable summary table printed by the binary.
pub fn render_table(report: &ThroughputReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>7} {:>6} {:>6} {:>12} {:>9} {:>9} {:>9} {:>9} {:>8} {:>7} {:>10}",
        "engine",
        "shards",
        "batch",
        "epoch",
        "ops/s",
        "p50(us)",
        "p95(us)",
        "p99(us)",
        "aborts",
        "msg/txn",
        "cwait%",
        "contended"
    );
    for run in &report.runs {
        let contended = run
            .storage
            .as_ref()
            .map(|s| {
                s.mv.as_ref().map(|m| m.contended).unwrap_or(0)
                    + s.sv.as_ref().map(|v| v.contended).unwrap_or(0)
                    + s.locks.as_ref().map(|l| l.contended).unwrap_or(0)
            })
            .unwrap_or(0);
        let cwait = run
            .confirm_wait_share()
            .map(|share| format!("{:.1}", share * 100.0))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<8} {:>7} {:>6} {:>6} {:>12.1} {:>9} {:>9} {:>9} {:>8.1}% {:>8.1} {:>7} {:>10}",
            run.engine,
            run.storage_shards,
            run.delivery_batch,
            run.confirm_epoch,
            run.ops_per_sec(),
            run.latency.p50_us,
            run.latency.p95_us,
            run.latency.p99_us,
            run.abort_rate() * 100.0,
            run.messages_per_txn(),
            cwait,
            contended,
        );
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_u64_array(values: impl IntoIterator<Item = u64>) -> String {
    let items: Vec<String> = values.into_iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Serializes the report as the `BENCH_throughput.json` document (schema
/// `sss-throughput/v4`; see the README's benchmark-methodology section).
///
/// v4 adds, per run, the `per_phase` latency breakdown (count, mean,
/// percentiles, total time and the share of the client-scope latency budget
/// per protocol phase; `null` when observability was off) and
/// `confirm_wait_share`, SSS's external-commit confirmation wait as a share
/// of commit latency; the config echo gains `observability`.
pub fn render_json(report: &ThroughputReport) -> String {
    use std::fmt::Write as _;
    let cfg = &report.config;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sss-throughput/v4\",\n");
    let _ = writeln!(out, "  \"config\": {{");
    let engines: Vec<String> = cfg
        .engines
        .iter()
        .map(|e| format!("\"{}\"", json_escape(e.label())))
        .collect();
    let _ = writeln!(out, "    \"engines\": [{}],", engines.join(","));
    let _ = writeln!(
        out,
        "    \"shard_counts\": {},",
        json_u64_array(cfg.shard_counts.iter().map(|&s| s as u64))
    );
    let _ = writeln!(
        out,
        "    \"batch_sizes\": {},",
        json_u64_array(cfg.batch_sizes.iter().map(|&b| b as u64))
    );
    let _ = writeln!(
        out,
        "    \"epoch_windows\": {},",
        json_u64_array(cfg.epoch_windows.iter().map(|&w| w as u64))
    );
    let _ = writeln!(out, "    \"nodes\": {},", cfg.nodes);
    let _ = writeln!(out, "    \"replication\": {},", cfg.replication);
    let _ = writeln!(out, "    \"clients_per_node\": {},", cfg.clients_per_node);
    let _ = writeln!(out, "    \"total_keys\": {},", cfg.total_keys);
    let _ = writeln!(out, "    \"read_only_percent\": {},", cfg.read_only_percent);
    let _ = writeln!(
        out,
        "    \"update_access_count\": {},",
        cfg.update_access_count
    );
    let _ = writeln!(
        out,
        "    \"read_only_access_count\": {},",
        cfg.read_only_access_count
    );
    let _ = writeln!(out, "    \"warmup_ms\": {},", cfg.warmup.as_millis());
    let _ = writeln!(out, "    \"measure_ms\": {},", cfg.measure.as_millis());
    match cfg.fixed_ops {
        Some(ops) => {
            let _ = writeln!(out, "    \"fixed_ops\": {ops},");
        }
        None => {
            let _ = writeln!(out, "    \"fixed_ops\": null,");
        }
    }
    let _ = writeln!(out, "    \"trials\": {},", cfg.trials.max(1));
    let _ = writeln!(out, "    \"observability\": {},", cfg.observability);
    let _ = writeln!(out, "    \"seed\": {}", cfg.seed);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, run) in report.runs.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"engine\": \"{}\",", json_escape(&run.engine));
        let _ = writeln!(out, "      \"storage_shards\": {},", run.storage_shards);
        let _ = writeln!(out, "      \"delivery_batch\": {},", run.delivery_batch);
        let _ = writeln!(out, "      \"confirm_epoch\": {},", run.confirm_epoch);
        let _ = writeln!(out, "      \"ops_per_sec\": {:.3},", run.ops_per_sec());
        let _ = writeln!(out, "      \"committed\": {},", run.committed);
        let _ = writeln!(out, "      \"aborted\": {},", run.aborted);
        let _ = writeln!(out, "      \"abort_rate\": {:.6},", run.abort_rate());
        let _ = writeln!(out, "      \"window_ms\": {},", run.window.as_millis());
        let _ = writeln!(
            out,
            "      \"latency_us\": {{\"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}},",
            run.latency.mean_us,
            run.latency.p50_us,
            run.latency.p95_us,
            run.latency.p99_us,
            run.latency.max_us
        );
        out.push_str("      \"per_phase\": ");
        if run.per_phase.is_empty() {
            out.push_str("null,\n");
        } else {
            let parts: Vec<String> = run
                .per_phase
                .iter()
                .map(|(phase, hist)| {
                    let share = run
                        .phase_share(*phase)
                        .map(|share| format!("{share:.6}"))
                        .unwrap_or_else(|| "null".to_string());
                    format!(
                        "\"{}\": {{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \
                         \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"total_us\": {}, \
                         \"share\": {}}}",
                        phase.label(),
                        hist.count(),
                        hist.mean(),
                        hist.value_at_quantile(0.50),
                        hist.value_at_quantile(0.95),
                        hist.value_at_quantile(0.99),
                        hist.max(),
                        hist.sum(),
                        share
                    )
                })
                .collect();
            let _ = writeln!(out, "{{{}}},", parts.join(", "));
        }
        match run.confirm_wait_share() {
            Some(share) => {
                let _ = writeln!(out, "      \"confirm_wait_share\": {share:.6},");
            }
            None => out.push_str("      \"confirm_wait_share\": null,\n"),
        }
        out.push_str("      \"storage\": ");
        match &run.storage {
            Some(storage) => {
                let mut parts = Vec::new();
                if let Some(mv) = &storage.mv {
                    parts.push(format!(
                        "\"mv\": {{\"installed_versions\": {}, \"retained_versions\": {}, \"contended\": {}, \"per_shard_contended\": {}}}",
                        mv.installed_versions,
                        mv.retained_versions,
                        mv.contended,
                        json_u64_array(mv.per_shard.iter().map(|s| s.contended))
                    ));
                }
                if let Some(sv) = &storage.sv {
                    parts.push(format!(
                        "\"sv\": {{\"writes\": {}, \"contended\": {}, \"per_shard_contended\": {}}}",
                        sv.writes,
                        sv.contended,
                        json_u64_array(sv.per_shard.iter().map(|s| s.contended))
                    ));
                }
                if let Some(locks) = &storage.locks {
                    parts.push(format!(
                        "\"locks\": {{\"granted\": {}, \"timeouts\": {}, \"contended\": {}, \"per_shard_contended\": {}}}",
                        locks.granted,
                        locks.timeouts,
                        locks.contended,
                        json_u64_array(locks.per_shard_contended.iter().copied())
                    ));
                }
                let _ = writeln!(out, "{{{}}},", parts.join(", "));
            }
            None => out.push_str("null,\n"),
        }
        out.push_str("      \"mailbox\": ");
        match &run.mailbox {
            Some(mb) => {
                let per_kind = if run.message_kinds.is_empty() {
                    "null".to_string()
                } else {
                    let parts: Vec<String> = run
                        .message_kinds
                        .iter()
                        .map(|(label, count)| format!("\"{}\": {}", json_escape(label), count))
                        .collect();
                    format!("{{{}}}", parts.join(", "))
                };
                let _ = writeln!(
                    out,
                    "{{\"enqueued\": {}, \"dequeued\": {}, \"queued\": {}, \
                     \"enqueue_ops\": {}, \
                     \"dequeue_ops\": {}, \"local_delivered\": {}, \
                     \"messages_per_txn\": {:.3}, \"local_per_txn\": {:.3}, \
                     \"messages_per_wakeup\": {:.3}, \"per_kind\": {}}}",
                    mb.total_enqueued(),
                    mb.total_dequeued(),
                    mb.total_queued(),
                    mb.enqueue_ops,
                    mb.dequeue_ops,
                    mb.local_delivered,
                    run.messages_per_txn(),
                    run.local_per_txn(),
                    mb.messages_per_wakeup(),
                    per_kind
                );
            }
            None => out.push_str("null\n"),
        }
        let comma = if i + 1 == report.runs.len() { "" } else { "," };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_from_samples() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let q = LatencyQuantiles::from_samples(samples);
        assert_eq!(q.p50_us, 50);
        assert_eq!(q.p95_us, 95);
        assert_eq!(q.p99_us, 99);
        assert_eq!(q.max_us, 100);
        assert_eq!(
            LatencyQuantiles::from_samples(Vec::new()),
            LatencyQuantiles::default()
        );
    }

    #[test]
    fn histogram_quantiles_agree_with_exact_sampling() {
        // The production (histogram) path must agree with the sorted-sample
        // reference implementation to within one histogram bucket at every
        // reported percentile, and exactly at the max.
        let samples: Vec<Duration> = (1..=500)
            .map(|i| Duration::from_micros(i * 13 % 4096 + 1))
            .collect();
        let exact = LatencyQuantiles::from_samples(samples.clone());
        let mut hist = Histogram::new();
        for sample in &samples {
            hist.record(sample.as_micros() as u64);
        }
        let approx = LatencyQuantiles::from_histogram(&hist);
        for (name, a, e) in [
            ("p50", approx.p50_us, exact.p50_us),
            ("p95", approx.p95_us, exact.p95_us),
            ("p99", approx.p99_us, exact.p99_us),
        ] {
            assert!(a <= e, "{name}: histogram {a} above exact {e}");
            assert!(
                e - a <= Histogram::bucket_width(e),
                "{name}: histogram {a} more than one bucket below exact {e}"
            );
        }
        assert_eq!(approx.max_us, exact.max_us, "max is exact");
        assert_eq!(approx.mean_us, exact.mean_us, "mean is exact");
        assert_eq!(
            LatencyQuantiles::from_histogram(&Histogram::new()),
            LatencyQuantiles::default()
        );
    }

    #[test]
    fn fixed_ops_cell_measures_and_diffs_counters() {
        let config = ThroughputConfig {
            engines: vec![EngineKind::TwoPc],
            shard_counts: vec![2],
            nodes: 2,
            replication: 1,
            clients_per_node: 2,
            total_keys: 64,
            warmup: Duration::from_millis(10),
            fixed_ops: Some(16),
            trials: 1,
            ..ThroughputConfig::default()
        };
        let run = run_cell(&config, EngineKind::TwoPc, 2, 8, 1);
        assert_eq!(run.engine, "2PC");
        assert_eq!(run.storage_shards, 2);
        assert_eq!(run.delivery_batch, 8);
        assert_eq!(run.confirm_epoch, 1);
        assert_eq!(run.committed + run.aborted, 16, "4 clients x 4 ops each");
        assert!(run.ops_per_sec() > 0.0);
        let storage = run.storage.expect("2PC exposes storage stats");
        let sv = storage.sv.expect("2PC runs an SvStore");
        assert_eq!(sv.per_shard.len(), 2);
        let mailbox = run.mailbox.expect("2PC exposes mailbox stats");
        assert!(mailbox.total_enqueued() > 0, "window saw traffic");
        assert!(mailbox.dequeue_ops > 0, "workers woke up at least once");
    }

    #[test]
    fn json_document_is_well_formed() {
        let config = ThroughputConfig {
            engines: vec![EngineKind::Rococo],
            shard_counts: vec![1],
            batch_sizes: vec![4],
            nodes: 1,
            replication: 1,
            clients_per_node: 1,
            total_keys: 32,
            warmup: Duration::from_millis(5),
            fixed_ops: Some(4),
            trials: 1,
            ..ThroughputConfig::default()
        };
        let report = run_throughput(&config);
        assert_eq!(report.runs.len(), 1);
        let json = render_json(&report);
        assert!(json.contains("\"schema\": \"sss-throughput/v4\""));
        assert!(json.contains("\"engine\": \"ROCOCO\""));
        assert!(json.contains("\"ops_per_sec\""));
        assert!(json.contains("\"batch_sizes\""));
        assert!(json.contains("\"epoch_windows\""));
        assert!(json.contains("\"delivery_batch\""));
        assert!(json.contains("\"confirm_epoch\""));
        assert!(json.contains("\"messages_per_txn\""));
        assert!(json.contains("\"queued\""));
        // Observability is on by default, so the per-phase block is
        // populated with ROCOCO's dispatch/execute taxonomy; the
        // confirmation wait is an SSS-only phase.
        assert!(json.contains("\"per_phase\": {"));
        assert!(json.contains("\"dispatch\""));
        assert!(json.contains("\"confirm_wait_share\": null"));
        // Cheap structural sanity: balanced braces and brackets.
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
        assert!(!render_table(&report).is_empty());
    }

    #[test]
    fn sss_epoch_sweep_attributes_messages_per_kind() {
        let config = ThroughputConfig {
            engines: vec![EngineKind::Sss, EngineKind::TwoPc],
            shard_counts: vec![1],
            batch_sizes: vec![4],
            epoch_windows: vec![1, 16],
            nodes: 2,
            replication: 1,
            clients_per_node: 1,
            total_keys: 32,
            warmup: Duration::from_millis(5),
            fixed_ops: Some(8),
            trials: 1,
            ..ThroughputConfig::default()
        };
        let report = run_throughput(&config);
        // SSS runs once per epoch window; the baseline ignores the knob and
        // runs only the first.
        assert_eq!(report.runs.len(), 3);
        let sss: Vec<_> = report.runs.iter().filter(|r| r.engine == "SSS").collect();
        assert_eq!(sss.len(), 2);
        assert_eq!((sss[0].confirm_epoch, sss[1].confirm_epoch), (1, 16));
        for run in &sss {
            assert!(
                run.message_kinds
                    .iter()
                    .any(|(label, _)| label == "Prepare"),
                "SSS attributes traffic per protocol message kind"
            );
            let attributed: u64 = run.message_kinds.iter().map(|(_, count)| count).sum();
            assert!(attributed > 0, "measured window saw classified traffic");
            // The per-phase breakdown must expose the confirmation wait —
            // SSS's extra external-commit round — as a share of latency.
            assert!(
                run.per_phase
                    .iter()
                    .any(|(phase, _)| *phase == Phase::ConfirmWait),
                "SSS window records confirm-wait spans"
            );
            let share = run.confirm_wait_share().expect("SSS reports the share");
            assert!((0.0..=1.0).contains(&share), "share {share} out of range");
        }
        let baseline = report.runs.iter().find(|r| r.engine == "2PC").unwrap();
        assert!(
            baseline
                .message_kinds
                .iter()
                .any(|(label, _)| label == "Prepare"),
            "2PC classifies its traffic too"
        );
        assert!(
            baseline.confirm_wait_share().is_none(),
            "the confirmation wait is an SSS-only phase"
        );
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_u64_array([1, 2, 3]), "[1,2,3]");
    }
}
