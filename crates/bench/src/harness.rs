//! Experiment harness: builds engines through the registry and runs the
//! workload driver against them.
//!
//! This module owns no engine code at all — engines are constructed solely
//! via [`EngineKind::build`] and driven through the `sss-engine` trait
//! surface, exactly like the paper runs every competitor "on the same
//! software infrastructure".

use sss_engine::{EngineKind, NetProfile};
use sss_workload::{populate, run_trials, WorkloadReport, WorkloadSpec};

/// Builds the requested engine through the registry, pre-populates the key
/// space, runs the workload trials, and returns the averaged report.
///
/// Figures sweep latency-free clusters (the paper's relative comparisons are
/// dominated by protocol behaviour, not message delay), so the engine is
/// built with [`NetProfile::Instant`].
pub fn run_engine(kind: EngineKind, spec: &WorkloadSpec, replication: usize) -> WorkloadReport {
    run_engine_with_profile(kind, spec, replication, NetProfile::Instant)
}

/// [`run_engine`] with an explicit network profile.
pub fn run_engine_with_profile(
    kind: EngineKind,
    spec: &WorkloadSpec,
    replication: usize,
    profile: NetProfile,
) -> WorkloadReport {
    let engine = kind.build(spec.nodes, replication, profile);
    populate(engine.as_ref(), spec);
    run_trials(engine.as_ref(), spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn smoke_spec(nodes: usize) -> WorkloadSpec {
        WorkloadSpec::new(nodes)
            .clients_per_node(2)
            .total_keys(64)
            .duration(Duration::from_millis(40))
    }

    #[test]
    fn sss_harness_commits_work() {
        let spec = smoke_spec(3);
        let report = run_engine(EngineKind::Sss, &spec, 2);
        assert!(report.committed > 0, "SSS committed nothing");
        assert_eq!(report.engine, "SSS");
    }

    #[test]
    fn baseline_harness_commits_work() {
        let spec = smoke_spec(2);
        for kind in [EngineKind::TwoPc, EngineKind::Walter, EngineKind::Rococo] {
            let report = run_engine(kind, &spec, 1);
            assert!(report.committed > 0, "{} committed nothing", kind.label());
        }
    }
}
