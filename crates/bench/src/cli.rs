//! Shared command-line plumbing for the benchmark binaries.
//!
//! Every binary in `src/bin/` — the per-figure reproductions (`fig3` …
//! `fig8`), `all_figures`, and the chaos-scenario runner `scenarios` —
//! parses its arguments and renders its output through this module, so
//! adding a binary means choosing a [`FigureSelection`] (or calling
//! [`parse_flag`]/[`parse_u64`] directly) rather than hand-rolling an
//! eighth copy of the argument loop.

use crate::figures::{
    fig3_throughput, fig4a_max_throughput, fig4b_latency, fig5_breakdown, fig6_rococo,
    fig7_locality, fig8_read_only_size, BenchScale, FigureTable,
};

/// `true` if `flag` (e.g. `--smoke`) appears in `args`.
pub fn parse_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The string value of `--key VALUE` style options. Returns `None` when
/// absent and panics with a usage message when the value is missing.
pub fn parse_value(args: &[String], key: &str) -> Option<String> {
    let position = args.iter().position(|a| a == key)?;
    Some(
        args.get(position + 1)
            .unwrap_or_else(|| panic!("{key} requires a value"))
            .clone(),
    )
}

/// The numeric value of `--key N` style options (e.g.
/// `parse_u64(args, "--seed")`). Returns `None` when absent and panics
/// with a usage message when the value is missing or not a number.
pub fn parse_u64(args: &[String], key: &str) -> Option<u64> {
    let value = parse_value(args, key)?;
    Some(
        value
            .parse()
            .unwrap_or_else(|_| panic!("{key} expects a number, got {value:?}")),
    )
}

/// Which figure(s) of the evaluation a binary reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureSelection {
    /// Figure 3 (throughput vs node count, three read-only mixes).
    Fig3,
    /// Figure 4(a) (maximum attainable throughput).
    Fig4a,
    /// Figure 4(b) (external-commit latency vs clients per node).
    Fig4b,
    /// Figure 5 (SSS latency breakdown).
    Fig5,
    /// Figure 6 (SSS vs ROCOCO vs 2PC, two read-only mixes).
    Fig6,
    /// Figure 7 (locality).
    Fig7,
    /// Figure 8 (read-only transaction size).
    Fig8,
    /// Every figure in sequence.
    All,
}

impl FigureSelection {
    /// The tables this selection renders at `scale`, in presentation order.
    pub fn tables(&self, scale: BenchScale) -> Vec<FigureTable> {
        match self {
            FigureSelection::Fig3 => [20u8, 50, 80]
                .iter()
                .map(|ro| fig3_throughput(scale, *ro))
                .collect(),
            FigureSelection::Fig4a => vec![fig4a_max_throughput(scale)],
            FigureSelection::Fig4b => vec![fig4b_latency(scale)],
            FigureSelection::Fig5 => vec![fig5_breakdown(scale)],
            FigureSelection::Fig6 => [20u8, 80]
                .iter()
                .map(|ro| fig6_rococo(scale, *ro))
                .collect(),
            FigureSelection::Fig7 => vec![fig7_locality(scale)],
            FigureSelection::Fig8 => vec![fig8_read_only_size(scale)],
            FigureSelection::All => {
                let mut tables = Vec::new();
                for selection in [
                    FigureSelection::Fig3,
                    FigureSelection::Fig4a,
                    FigureSelection::Fig4b,
                    FigureSelection::Fig5,
                    FigureSelection::Fig6,
                    FigureSelection::Fig7,
                    FigureSelection::Fig8,
                ] {
                    tables.extend(selection.tables(scale));
                }
                tables
            }
        }
    }
}

/// The whole body of a per-figure binary: parse the scale from the process
/// arguments, run the selected sweeps, print the tables.
pub fn figure_main(selection: FigureSelection) {
    let args: Vec<String> = std::env::args().collect();
    let scale = BenchScale::from_args(&args);
    for table in selection.tables(scale) {
        println!("{}", table.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_and_options_parse() {
        let a = args(&["bin", "--smoke", "--seed", "99"]);
        assert!(parse_flag(&a, "--smoke"));
        assert!(!parse_flag(&a, "--paper-scale"));
        assert_eq!(parse_u64(&a, "--seed"), Some(99));
        assert_eq!(parse_u64(&a, "--missing"), None);
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn dangling_option_panics() {
        let a = args(&["bin", "--seed"]);
        let _ = parse_u64(&a, "--seed");
    }

    #[test]
    #[should_panic(expected = "expects a number")]
    fn non_numeric_option_panics() {
        let a = args(&["bin", "--seed", "abc"]);
        let _ = parse_u64(&a, "--seed");
    }
}
