//! The seed-sweep test tier: the chaos catalog under the deterministic
//! simulator across many seeds, the committed replay-regression corpus,
//! and the sim-vs-threaded equivalence check.
//!
//! The wide sweeps are `--release`-only (`cargo test -p sss-bench --release
//! --test sim_sweep -- --include-ignored`, or the `sim-sweep` binary for a
//! report); a two-seed smoke sweep runs in every configuration so the tier
//! never goes silently stale.

use std::time::{Duration, Instant};

use sss_bench::sim_sweep::{replay_corpus, run_corpus_entry, run_sim_sweep, SimSweepConfig};
use sss_workload::scenario::{run_scenario, run_scenario_sim, ChaosScenario};
use sss_workload::{EngineKind, WorkloadSpec};

fn sweep(seeds: u64) -> SimSweepConfig {
    SimSweepConfig {
        seeds,
        base_seed: 1,
        only: None,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Every configuration: a tiny sweep over the first two catalog entries
/// keeps the harness itself exercised by the default test tier.
#[test]
fn smoke_sweep_is_clean_and_replayable() {
    let report = run_sim_sweep(&sweep(2)).expect("catalog scenarios are valid");
    assert_eq!(report.results.len(), 2);
    assert!(report.passed(), "failures:\n{}", report.render());
}

/// The CI gate: 200 seeds across the whole catalog, every seed
/// checker-clean (external consistency included) and bit-exactly
/// replayable.
#[test]
#[cfg_attr(debug_assertions, ignore = "200-seed sweep: run with --release")]
fn two_hundred_seed_sweep_is_clean_and_replayable() {
    let report = run_sim_sweep(&sweep(200)).expect("catalog scenarios are valid");
    assert_eq!(report.results.len(), 200);
    assert!(report.passed(), "failures:\n{}", report.render());
}

/// A full smoke-scale scenario plus its external-consistency verdict costs
/// wall-clock seconds under the simulator, not minutes: virtual time jumps
/// over every protocol timeout instead of sleeping through it.
#[test]
#[cfg_attr(debug_assertions, ignore = "wall-clock budget assumes --release")]
fn external_consistency_checker_iteration_stays_under_ten_seconds() {
    let spec = WorkloadSpec::new(3)
        .clients_per_node(2)
        .total_keys(64)
        .read_only_percent(50)
        .seed(11);
    let scenario = ChaosScenario::new("checker-budget", spec).ops_per_client(120);
    let started = Instant::now();
    let outcome = run_scenario_sim(EngineKind::Sss, &scenario, 11).expect("valid scenario");
    let wall = started.elapsed();
    assert!(outcome.passed(), "violations: {:?}", outcome.violations);
    assert_eq!(outcome.consistency, Some(Ok(())), "checker must have run");
    assert!(
        wall <= Duration::from_secs(10),
        "one checker iteration took {wall:?}; the sim tier must stay fast"
    );
}

/// SSS's headline property on every simulated interleaving of the smoke
/// catalog: read-only transactions never abort.
#[test]
#[cfg_attr(debug_assertions, ignore = "multi-seed sweep: run with --release")]
fn read_only_transactions_never_abort_across_seeds() {
    for seed in 1..=24 {
        let spec = WorkloadSpec::new(3)
            .clients_per_node(2)
            .total_keys(64)
            .read_only_percent(50)
            .seed(seed);
        let scenario = ChaosScenario::new("abort-free-reads", spec).ops_per_client(60);
        let outcome = run_scenario_sim(EngineKind::Sss, &scenario, seed).expect("valid scenario");
        assert!(outcome.passed(), "seed {seed}: {:?}", outcome.violations);
        assert_eq!(
            outcome.read_only_aborts, 0,
            "seed {seed}: a read-only transaction aborted"
        );
    }
}

/// The committed corpus: named (scenario, seed) pairs must reproduce their
/// recorded history fingerprints exactly. A mismatch means an interleaving
/// changed — see `replay_corpus` for how to re-record deliberately.
#[test]
#[cfg_attr(debug_assertions, ignore = "seven full replays: run with --release")]
fn replay_corpus_fingerprints_are_reproduced() {
    for entry in replay_corpus() {
        let outcome = run_corpus_entry(&entry).expect("corpus scenarios are valid");
        assert!(
            outcome.passed(),
            "corpus entry {}: {:?}",
            entry.name,
            outcome.violations
        );
        assert_eq!(
            outcome.fingerprint(),
            entry.fingerprint,
            "corpus entry {} drifted: recorded {:#x}, replayed {:#x} \
             (an interleaving-affecting change must re-record the corpus)",
            entry.name,
            entry.fingerprint,
            outcome.fingerprint(),
        );
    }
}

/// The simulated and threaded runtimes agree on everything the runtimes are
/// supposed to leave invariant: for a fault-free scenario the whole
/// deterministic outcome summary (commit counts, read-only mix, checker
/// verdict) is identical — only scheduling-dependent diagnostics such as
/// retry counts may differ.
#[test]
#[cfg_attr(debug_assertions, ignore = "threaded run is slow in debug")]
fn sim_and_threaded_runtimes_agree_on_the_outcome_summary() {
    let spec = WorkloadSpec::new(3)
        .clients_per_node(2)
        .total_keys(64)
        .read_only_percent(50)
        .seed(5);
    let scenario = ChaosScenario::new("runtime-equivalence", spec).ops_per_client(40);
    let threaded = run_scenario(EngineKind::Sss, &scenario).expect("valid scenario");
    let simulated = run_scenario_sim(EngineKind::Sss, &scenario, 5).expect("valid scenario");
    assert!(threaded.passed(), "threaded: {:?}", threaded.violations);
    assert!(simulated.passed(), "simulated: {:?}", simulated.violations);
    assert_eq!(
        threaded.summary(),
        simulated.summary(),
        "the runtime must not change what the workload commits"
    );
}
