//! Engine adapters for the three competitors: whole-transaction execution
//! in the shape the workspace's engine layer (`sss-engine`) binds onto its
//! `TransactionEngine` / `EngineSession` traits.
//!
//! The adapters live here — with the engines they adapt — so that the
//! engine layer can stay a thin binding-and-registry crate. Commit timings
//! are reported as `Option<(latency, internal_latency)>`: none of the
//! baselines delays its client response past commit, so the two durations
//! are always equal; `None` means the transaction aborted.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sss_net::{FaultInterposer, PauseControl};
use sss_obs::{ObsHub, TxnTrace};
use sss_storage::{Key, Value};

use crate::rococo::{RococoCluster, RococoConfig, RococoReadOutcome};
use crate::twopc::{TwoPcCluster, TwoPcConfig, TwoPcOutcome};
use crate::walter::{WalterCluster, WalterConfig, WalterOutcome};

fn committed(start: Instant) -> Option<(Duration, Duration)> {
    let latency = sss_vclock::runtime::elapsed_since(start);
    Some((latency, latency))
}

/// Per-adapter-session trace state: the cluster's hub, the session's client
/// lane and a session-local transaction counter used as the trace label
/// (the engines allocate their `TxnId`s inside the cluster sessions, so
/// the adapter keeps its own label sequence).
#[derive(Debug)]
struct SessionObs {
    hub: Arc<ObsHub>,
    lane: u64,
    txns: u64,
}

impl SessionObs {
    fn attach(hub: Option<Arc<ObsHub>>) -> Option<Self> {
        hub.map(|hub| {
            let lane = hub.next_lane();
            SessionObs { hub, lane, txns: 0 }
        })
    }

    fn begin(&mut self, node: usize) -> TxnTrace {
        let txn = self.txns;
        self.txns += 1;
        TxnTrace::begin(Arc::clone(&self.hub), node, self.lane, txn)
    }
}

fn begin_trace(obs: &mut Option<SessionObs>, node: usize) -> Option<TxnTrace> {
    obs.as_mut().map(|obs| obs.begin(node))
}

/// Projects a cluster's read-value map onto the request's key order, so the
/// observed values line up with `read_keys` for history recording.
fn observed_in_order(
    read_keys: &[Key],
    values: Option<BTreeMap<Key, Option<Value>>>,
) -> Vec<Option<Value>> {
    let Some(values) = values else {
        return vec![None; read_keys.len()];
    };
    read_keys
        .iter()
        .map(|k| values.get(k).cloned().flatten())
        .collect()
}

// ---------------------------------------------------------------------------
// 2PC-baseline
// ---------------------------------------------------------------------------

/// The 2PC-baseline engine, ready to be driven one transaction at a time.
#[derive(Debug)]
pub struct TwoPcEngine {
    cluster: Arc<TwoPcCluster>,
}

impl TwoPcEngine {
    /// Starts a 2PC-baseline cluster of `nodes` nodes with `replication`
    /// replicas per key.
    pub fn start(nodes: usize, replication: usize) -> Self {
        Self::start_with_interposer(nodes, replication, None)
    }

    /// [`TwoPcEngine::start`] with an optional fault interposer on the
    /// cluster transport.
    pub fn start_with_interposer(
        nodes: usize,
        replication: usize,
        interposer: Option<Arc<dyn FaultInterposer>>,
    ) -> Self {
        Self::with_config(TwoPcConfig::new(nodes).replication(replication), interposer)
    }

    /// Starts the engine from an explicit [`TwoPcConfig`] (e.g. to tune the
    /// storage shard arity), with an optional fault interposer.
    pub fn with_config(config: TwoPcConfig, interposer: Option<Arc<dyn FaultInterposer>>) -> Self {
        TwoPcEngine {
            cluster: Arc::new(TwoPcCluster::start_with_interposer(config, interposer)),
        }
    }

    /// Per-node pause gates of the cluster transport, for fault injectors.
    pub fn pause_controls(&self) -> Vec<Arc<PauseControl>> {
        self.cluster.pause_controls()
    }

    /// The underlying cluster (e.g. for commit/abort counters).
    pub fn cluster(&self) -> &TwoPcCluster {
        &self.cluster
    }

    /// Number of nodes the engine runs.
    pub fn node_count(&self) -> usize {
        self.cluster.node_count()
    }

    /// Opens an adapter session colocated with `node`.
    pub fn open_session(&self, node: usize) -> TwoPcEngineSession {
        TwoPcEngineSession {
            obs: SessionObs::attach(self.cluster.observability()),
            cluster: Arc::clone(&self.cluster),
            node,
        }
    }
}

/// A per-client adapter session on the 2PC-baseline.
pub struct TwoPcEngineSession {
    cluster: Arc<TwoPcCluster>,
    node: usize,
    obs: Option<SessionObs>,
}

impl TwoPcEngineSession {
    /// Runs one update transaction; `Some((latency, latency))` on commit.
    pub fn run_update(
        &mut self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> Option<(Duration, Duration)> {
        self.run_update_observed(read_keys, writes).0
    }

    /// [`TwoPcEngineSession::run_update`] that also reports the observed
    /// read values (parallel to `read_keys`).
    pub fn run_update_observed(
        &mut self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> (Option<(Duration, Duration)>, Vec<Option<Value>>) {
        let start = sss_vclock::runtime::now();
        let mut trace = begin_trace(&mut self.obs, self.node);
        let (outcome, values) =
            self.cluster
                .session(self.node)
                .execute_traced(read_keys, writes, trace.as_mut());
        if let Some(trace) = trace.take() {
            trace.finish(outcome == TwoPcOutcome::Committed);
        }
        match outcome {
            TwoPcOutcome::Committed => (committed(start), observed_in_order(read_keys, values)),
            TwoPcOutcome::Aborted => (None, Vec::new()),
        }
    }

    /// Runs one read-only transaction. In the 2PC-baseline read-only
    /// transactions validate like updates and therefore may abort.
    pub fn run_read_only(&mut self, read_keys: &[Key]) -> Option<(Duration, Duration)> {
        self.run_update(read_keys, &[])
    }

    /// [`TwoPcEngineSession::run_read_only`] with observed values.
    pub fn run_read_only_observed(
        &mut self,
        read_keys: &[Key],
    ) -> (Option<(Duration, Duration)>, Vec<Option<Value>>) {
        self.run_update_observed(read_keys, &[])
    }
}

// ---------------------------------------------------------------------------
// Walter (PSI)
// ---------------------------------------------------------------------------

/// The Walter-style PSI engine, ready to be driven one transaction at a
/// time.
#[derive(Debug)]
pub struct WalterEngine {
    cluster: Arc<WalterCluster>,
}

impl WalterEngine {
    /// Starts a Walter cluster of `nodes` nodes with `replication` replicas
    /// per key.
    pub fn start(nodes: usize, replication: usize) -> Self {
        Self::start_with_interposer(nodes, replication, None)
    }

    /// [`WalterEngine::start`] with an optional fault interposer on the
    /// cluster transport.
    pub fn start_with_interposer(
        nodes: usize,
        replication: usize,
        interposer: Option<Arc<dyn FaultInterposer>>,
    ) -> Self {
        Self::with_config(
            WalterConfig::new(nodes).replication(replication),
            interposer,
        )
    }

    /// Starts the engine from an explicit [`WalterConfig`] (e.g. to tune
    /// the storage shard arity), with an optional fault interposer.
    pub fn with_config(config: WalterConfig, interposer: Option<Arc<dyn FaultInterposer>>) -> Self {
        WalterEngine {
            cluster: Arc::new(WalterCluster::start_with_interposer(config, interposer)),
        }
    }

    /// Per-node pause gates of the cluster transport, for fault injectors.
    pub fn pause_controls(&self) -> Vec<Arc<PauseControl>> {
        self.cluster.pause_controls()
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &WalterCluster {
        &self.cluster
    }

    /// Number of nodes the engine runs.
    pub fn node_count(&self) -> usize {
        self.cluster.node_count()
    }

    /// Opens an adapter session colocated with `node`.
    pub fn open_session(&self, node: usize) -> WalterEngineSession {
        WalterEngineSession {
            obs: SessionObs::attach(self.cluster.observability()),
            cluster: Arc::clone(&self.cluster),
            node,
        }
    }
}

/// A per-client adapter session on the Walter engine.
pub struct WalterEngineSession {
    cluster: Arc<WalterCluster>,
    node: usize,
    obs: Option<SessionObs>,
}

impl WalterEngineSession {
    /// Runs one update transaction; `Some((latency, latency))` on commit.
    pub fn run_update(
        &mut self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> Option<(Duration, Duration)> {
        self.run_update_observed(read_keys, writes).0
    }

    /// [`WalterEngineSession::run_update`] that also reports the observed
    /// read values (parallel to `read_keys`).
    pub fn run_update_observed(
        &mut self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> (Option<(Duration, Duration)>, Vec<Option<Value>>) {
        let start = sss_vclock::runtime::now();
        let mut trace = begin_trace(&mut self.obs, self.node);
        let (outcome, values) =
            self.cluster
                .session(self.node)
                .update_traced(read_keys, writes, trace.as_mut());
        if let Some(trace) = trace.take() {
            trace.finish(outcome == WalterOutcome::Committed);
        }
        match outcome {
            WalterOutcome::Committed => (committed(start), observed_in_order(read_keys, values)),
            WalterOutcome::Aborted => (None, Vec::new()),
        }
    }

    /// Runs one read-only transaction (PSI: served from the start snapshot,
    /// never aborts).
    pub fn run_read_only(&mut self, read_keys: &[Key]) -> Option<(Duration, Duration)> {
        self.run_read_only_observed(read_keys).0
    }

    /// [`WalterEngineSession::run_read_only`] with observed values.
    pub fn run_read_only_observed(
        &mut self,
        read_keys: &[Key],
    ) -> (Option<(Duration, Duration)>, Vec<Option<Value>>) {
        let start = sss_vclock::runtime::now();
        let mut trace = begin_trace(&mut self.obs, self.node);
        let values = self
            .cluster
            .session(self.node)
            .read_only_traced(read_keys, trace.as_mut());
        if let Some(trace) = trace.take() {
            trace.finish(values.is_some());
        }
        match values {
            Some(values) => (committed(start), observed_in_order(read_keys, Some(values))),
            None => (None, Vec::new()),
        }
    }
}

// ---------------------------------------------------------------------------
// ROCOCO
// ---------------------------------------------------------------------------

/// The ROCOCO-style engine, ready to be driven one transaction at a time.
#[derive(Debug)]
pub struct RococoEngine {
    cluster: Arc<RococoCluster>,
}

impl RococoEngine {
    /// Starts a ROCOCO cluster of `nodes` nodes. Replication is always
    /// disabled, as in the paper's comparison (Figures 6 and 8).
    pub fn start(nodes: usize) -> Self {
        Self::start_with_interposer(nodes, None)
    }

    /// [`RococoEngine::start`] with an optional fault interposer on the
    /// cluster transport.
    pub fn start_with_interposer(
        nodes: usize,
        interposer: Option<Arc<dyn FaultInterposer>>,
    ) -> Self {
        Self::with_config(RococoConfig::new(nodes), interposer)
    }

    /// Starts the engine from an explicit [`RococoConfig`] (e.g. to tune
    /// the storage shard arity), with an optional fault interposer.
    pub fn with_config(config: RococoConfig, interposer: Option<Arc<dyn FaultInterposer>>) -> Self {
        RococoEngine {
            cluster: Arc::new(RococoCluster::start_with_interposer(config, interposer)),
        }
    }

    /// Per-node pause gates of the cluster transport, for fault injectors.
    pub fn pause_controls(&self) -> Vec<Arc<PauseControl>> {
        self.cluster.pause_controls()
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &RococoCluster {
        &self.cluster
    }

    /// Number of nodes the engine runs.
    pub fn node_count(&self) -> usize {
        self.cluster.node_count()
    }

    /// Opens an adapter session colocated with `node`.
    pub fn open_session(&self, node: usize) -> RococoEngineSession {
        RococoEngineSession {
            obs: SessionObs::attach(self.cluster.observability()),
            cluster: Arc::clone(&self.cluster),
            node,
        }
    }
}

/// A per-client adapter session on the ROCOCO engine.
pub struct RococoEngineSession {
    cluster: Arc<RococoCluster>,
    node: usize,
    obs: Option<SessionObs>,
}

impl RococoEngineSession {
    /// Runs one update transaction. ROCOCO update pieces are deferrable, so
    /// reads are not part of the update path; `Some((latency, latency))` on
    /// commit.
    pub fn run_update(
        &mut self,
        _read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> Option<(Duration, Duration)> {
        let start = sss_vclock::runtime::now();
        let mut trace = begin_trace(&mut self.obs, self.node);
        let ok = self
            .cluster
            .session(self.node)
            .update_traced(writes, trace.as_mut());
        if let Some(trace) = trace.take() {
            trace.finish(ok);
        }
        if ok {
            committed(start)
        } else {
            None
        }
    }

    /// Runs one read-only transaction (multi-round version checks).
    pub fn run_read_only(&mut self, read_keys: &[Key]) -> Option<(Duration, Duration)> {
        self.run_read_only_observed(read_keys).0
    }

    /// [`RococoEngineSession::run_update`] with observed values. ROCOCO
    /// update pieces never read, so the observations are all unattributed.
    pub fn run_update_observed(
        &mut self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> (Option<(Duration, Duration)>, Vec<Option<Value>>) {
        match self.run_update(read_keys, writes) {
            Some(timings) => (Some(timings), vec![None; read_keys.len()]),
            None => (None, Vec::new()),
        }
    }

    /// [`RococoEngineSession::run_read_only`] with observed values.
    pub fn run_read_only_observed(
        &mut self,
        read_keys: &[Key],
    ) -> (Option<(Duration, Duration)>, Vec<Option<Value>>) {
        let start = sss_vclock::runtime::now();
        let mut trace = begin_trace(&mut self.obs, self.node);
        let (outcome, values) = self
            .cluster
            .session(self.node)
            .read_only_traced(read_keys, trace.as_mut());
        if let Some(trace) = trace.take() {
            trace.finish(outcome == RococoReadOutcome::Committed);
        }
        match outcome {
            RococoReadOutcome::Committed => {
                (committed(start), observed_in_order(read_keys, values))
            }
            RococoReadOutcome::Aborted => (None, Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_baseline_adapter_commits_serial_work() {
        let writes = vec![(Key::new("x"), Value::from_u64(9))];
        let reads = vec![Key::new("x")];

        let twopc = TwoPcEngine::start(2, 1);
        let mut session = twopc.open_session(0);
        assert!(session.run_update(&[], &writes).is_some());
        assert!(session.run_read_only(&reads).is_some());
        twopc.cluster().shutdown();

        let walter = WalterEngine::start(2, 1);
        let mut session = walter.open_session(0);
        assert!(session.run_update(&[], &writes).is_some());
        assert!(session.run_read_only(&reads).is_some());
        walter.cluster().shutdown();

        let rococo = RococoEngine::start(2);
        let mut session = rococo.open_session(0);
        assert!(session.run_update(&[], &writes).is_some());
        assert!(session.run_read_only(&reads).is_some());
        rococo.cluster().shutdown();
    }
}
