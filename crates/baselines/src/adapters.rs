//! Engine adapters for the three competitors: whole-transaction execution
//! in the shape the workspace's engine layer (`sss-engine`) binds onto its
//! `TransactionEngine` / `EngineSession` traits.
//!
//! The adapters live here — with the engines they adapt — so that the
//! engine layer can stay a thin binding-and-registry crate. Commit timings
//! are reported as `Option<(latency, internal_latency)>`: none of the
//! baselines delays its client response past commit, so the two durations
//! are always equal; `None` means the transaction aborted.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sss_storage::{Key, Value};

use crate::rococo::{RococoCluster, RococoConfig, RococoReadOutcome};
use crate::twopc::{TwoPcCluster, TwoPcConfig, TwoPcOutcome};
use crate::walter::{WalterCluster, WalterConfig, WalterOutcome};

fn committed(start: Instant) -> Option<(Duration, Duration)> {
    let latency = start.elapsed();
    Some((latency, latency))
}

// ---------------------------------------------------------------------------
// 2PC-baseline
// ---------------------------------------------------------------------------

/// The 2PC-baseline engine, ready to be driven one transaction at a time.
#[derive(Debug)]
pub struct TwoPcEngine {
    cluster: Arc<TwoPcCluster>,
}

impl TwoPcEngine {
    /// Starts a 2PC-baseline cluster of `nodes` nodes with `replication`
    /// replicas per key.
    pub fn start(nodes: usize, replication: usize) -> Self {
        TwoPcEngine {
            cluster: Arc::new(TwoPcCluster::start(
                TwoPcConfig::new(nodes).replication(replication),
            )),
        }
    }

    /// The underlying cluster (e.g. for commit/abort counters).
    pub fn cluster(&self) -> &TwoPcCluster {
        &self.cluster
    }

    /// Number of nodes the engine runs.
    pub fn node_count(&self) -> usize {
        self.cluster.node_count()
    }

    /// Opens an adapter session colocated with `node`.
    pub fn open_session(&self, node: usize) -> TwoPcEngineSession {
        TwoPcEngineSession {
            cluster: Arc::clone(&self.cluster),
            node,
        }
    }
}

/// A per-client adapter session on the 2PC-baseline.
pub struct TwoPcEngineSession {
    cluster: Arc<TwoPcCluster>,
    node: usize,
}

impl TwoPcEngineSession {
    /// Runs one update transaction; `Some((latency, latency))` on commit.
    pub fn run_update(
        &mut self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> Option<(Duration, Duration)> {
        let start = Instant::now();
        match self.cluster.session(self.node).execute(read_keys, writes).0 {
            TwoPcOutcome::Committed => committed(start),
            TwoPcOutcome::Aborted => None,
        }
    }

    /// Runs one read-only transaction. In the 2PC-baseline read-only
    /// transactions validate like updates and therefore may abort.
    pub fn run_read_only(&mut self, read_keys: &[Key]) -> Option<(Duration, Duration)> {
        self.run_update(read_keys, &[])
    }
}

// ---------------------------------------------------------------------------
// Walter (PSI)
// ---------------------------------------------------------------------------

/// The Walter-style PSI engine, ready to be driven one transaction at a
/// time.
#[derive(Debug)]
pub struct WalterEngine {
    cluster: Arc<WalterCluster>,
}

impl WalterEngine {
    /// Starts a Walter cluster of `nodes` nodes with `replication` replicas
    /// per key.
    pub fn start(nodes: usize, replication: usize) -> Self {
        WalterEngine {
            cluster: Arc::new(WalterCluster::start(
                WalterConfig::new(nodes).replication(replication),
            )),
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &WalterCluster {
        &self.cluster
    }

    /// Number of nodes the engine runs.
    pub fn node_count(&self) -> usize {
        self.cluster.node_count()
    }

    /// Opens an adapter session colocated with `node`.
    pub fn open_session(&self, node: usize) -> WalterEngineSession {
        WalterEngineSession {
            cluster: Arc::clone(&self.cluster),
            node,
        }
    }
}

/// A per-client adapter session on the Walter engine.
pub struct WalterEngineSession {
    cluster: Arc<WalterCluster>,
    node: usize,
}

impl WalterEngineSession {
    /// Runs one update transaction; `Some((latency, latency))` on commit.
    pub fn run_update(
        &mut self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> Option<(Duration, Duration)> {
        let start = Instant::now();
        match self.cluster.session(self.node).update(read_keys, writes).0 {
            WalterOutcome::Committed => committed(start),
            WalterOutcome::Aborted => None,
        }
    }

    /// Runs one read-only transaction (PSI: served from the start snapshot,
    /// never aborts).
    pub fn run_read_only(&mut self, read_keys: &[Key]) -> Option<(Duration, Duration)> {
        let start = Instant::now();
        match self.cluster.session(self.node).read_only(read_keys) {
            Some(_) => committed(start),
            None => None,
        }
    }
}

// ---------------------------------------------------------------------------
// ROCOCO
// ---------------------------------------------------------------------------

/// The ROCOCO-style engine, ready to be driven one transaction at a time.
#[derive(Debug)]
pub struct RococoEngine {
    cluster: Arc<RococoCluster>,
}

impl RococoEngine {
    /// Starts a ROCOCO cluster of `nodes` nodes. Replication is always
    /// disabled, as in the paper's comparison (Figures 6 and 8).
    pub fn start(nodes: usize) -> Self {
        RococoEngine {
            cluster: Arc::new(RococoCluster::start(RococoConfig::new(nodes))),
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &RococoCluster {
        &self.cluster
    }

    /// Number of nodes the engine runs.
    pub fn node_count(&self) -> usize {
        self.cluster.node_count()
    }

    /// Opens an adapter session colocated with `node`.
    pub fn open_session(&self, node: usize) -> RococoEngineSession {
        RococoEngineSession {
            cluster: Arc::clone(&self.cluster),
            node,
        }
    }
}

/// A per-client adapter session on the ROCOCO engine.
pub struct RococoEngineSession {
    cluster: Arc<RococoCluster>,
    node: usize,
}

impl RococoEngineSession {
    /// Runs one update transaction. ROCOCO update pieces are deferrable, so
    /// reads are not part of the update path; `Some((latency, latency))` on
    /// commit.
    pub fn run_update(
        &mut self,
        _read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> Option<(Duration, Duration)> {
        let start = Instant::now();
        if self.cluster.session(self.node).update(writes) {
            committed(start)
        } else {
            None
        }
    }

    /// Runs one read-only transaction (multi-round version checks).
    pub fn run_read_only(&mut self, read_keys: &[Key]) -> Option<(Duration, Duration)> {
        let start = Instant::now();
        match self.cluster.session(self.node).read_only(read_keys).0 {
            RococoReadOutcome::Committed => committed(start),
            RococoReadOutcome::Aborted => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_baseline_adapter_commits_serial_work() {
        let writes = vec![(Key::new("x"), Value::from_u64(9))];
        let reads = vec![Key::new("x")];

        let twopc = TwoPcEngine::start(2, 1);
        let mut session = twopc.open_session(0);
        assert!(session.run_update(&[], &writes).is_some());
        assert!(session.run_read_only(&reads).is_some());
        twopc.cluster().shutdown();

        let walter = WalterEngine::start(2, 1);
        let mut session = walter.open_session(0);
        assert!(session.run_update(&[], &writes).is_some());
        assert!(session.run_read_only(&reads).is_some());
        walter.cluster().shutdown();

        let rococo = RococoEngine::start(2);
        let mut session = rococo.open_session(0);
        assert!(session.run_update(&[], &writes).is_some());
        assert!(session.run_read_only(&reads).is_some());
        rococo.cluster().shutdown();
    }
}
