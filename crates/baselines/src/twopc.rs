//! The 2PC-baseline engine.
//!
//! Per the paper (§V): every transaction — including read-only ones —
//! executes like an SSS update transaction: reads return the current value
//! of a single-version store, writes are buffered, and at commit time the
//! transaction locks its read and write sets, validates that no read key was
//! overwritten, and installs its writes through two-phase commit. Read-only
//! transactions can therefore abort, which is the behaviour the paper's
//! scalability comparison hinges on. The protocol is external consistent:
//! a transaction holds its locks until its writes are installed, so its
//! client-visible completion happens after its serialization point.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sss_net::{
    reply_channel, ChannelTransport, Envelope, FaultInterposer, NodeRuntime, NodeService,
    PauseControl, Priority, ReplySender, TransportConfig, TransportExt,
};
use sss_obs::{ObsHub, Phase, TxnTrace};
use sss_storage::{Key, LockKind, LockTable, RecentTxnSet, ReplicaMap, SvStore, TxnId, Value};
use sss_vclock::runtime::SchedulerHandle;
use sss_vclock::NodeId;

/// Human-readable labels of the 2PC-baseline message kinds, in
/// `TwoPcMessage::kind_index` order — the per-kind mailbox counters
/// (`MailboxStats::per_kind`) attribute traffic against this table.
pub const MESSAGE_KIND_LABELS: [&str; 3] = ["Read", "Prepare", "Decide"];

/// Configuration of a [`TwoPcCluster`].
#[derive(Debug, Clone)]
pub struct TwoPcConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Replication degree.
    pub replication: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Lock-acquisition timeout (1ms in the paper's evaluation).
    pub lock_timeout: Duration,
    /// Timeout for reads and 2PC votes.
    pub rpc_timeout: Duration,
    /// Shard arity of every node's storage structures (single-version store
    /// and lock table). Rounded up to a power of two.
    pub storage_shards: usize,
    /// Messages a node worker drains from its mailbox per wakeup (clamped
    /// to at least 1).
    pub delivery_batch: usize,
    /// Optional observability hub: sessions trace protocol phases and the
    /// nodes record server-side lock-acquisition spans into it. When `None`
    /// — the default — every instrumentation site is one branch.
    pub observability: Option<Arc<ObsHub>>,
    /// Optional deterministic-simulation scheduler (see `sss-sim`): when
    /// set, the cluster's transport and workers run in virtual time.
    pub scheduler: Option<SchedulerHandle>,
}

impl TwoPcConfig {
    /// Defaults matching the paper's setup.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        TwoPcConfig {
            nodes,
            replication: 2.min(nodes),
            workers_per_node: 4,
            lock_timeout: Duration::from_millis(1),
            rpc_timeout: Duration::from_secs(1),
            storage_shards: sss_storage::DEFAULT_SHARDS,
            delivery_batch: sss_net::DEFAULT_DELIVERY_BATCH,
            observability: None,
            scheduler: None,
        }
    }

    /// Runs the cluster under a deterministic-simulation scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerHandle) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Sets the replication degree.
    pub fn replication(mut self, degree: usize) -> Self {
        self.replication = degree;
        self
    }

    /// Sets the lock timeout.
    pub fn lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// Attaches an observability hub (see [`sss_obs::ObsHub`]).
    pub fn observability(mut self, hub: Arc<ObsHub>) -> Self {
        self.observability = Some(hub);
        self
    }

    /// Sets the shard arity of every node's storage structures.
    pub fn storage_shards(mut self, shards: usize) -> Self {
        self.storage_shards = shards;
        self
    }

    /// Sets the per-wakeup mailbox delivery batch size of every node's
    /// workers (clamped to at least 1).
    pub fn delivery_batch(mut self, batch: usize) -> Self {
        self.delivery_batch = batch;
        self
    }
}

/// Reply to a read.
#[derive(Debug, Clone)]
struct ReadReply {
    value: Option<Value>,
    version: u64,
}

/// Reply to a prepare.
#[derive(Debug, Clone, Copy)]
struct VoteReply {
    from: NodeId,
    ok: bool,
}

/// Acknowledgement that a participant processed a commit decide (its local
/// writes are installed and its locks released).
#[derive(Debug, Clone, Copy)]
struct DecideAck {
    from: NodeId,
}

/// The 2PC-baseline wire protocol.
#[derive(Debug, Clone)]
enum TwoPcMessage {
    Read {
        key: Key,
        reply: ReplySender<ReadReply>,
    },
    Prepare {
        txn: TxnId,
        read_versions: Vec<(Key, u64)>,
        write_set: Vec<(Key, Value)>,
        reply: ReplySender<VoteReply>,
    },
    Decide {
        txn: TxnId,
        outcome: bool,
        /// Commit decides are acknowledged so the coordinator can delay the
        /// client response until every participant installed the writes —
        /// the client-visible completion must follow the serialization
        /// point (paper §V). Abort decides carry no reply.
        ack: Option<ReplySender<DecideAck>>,
    },
}

impl TwoPcMessage {
    /// Dense per-kind index into [`MESSAGE_KIND_LABELS`], for the
    /// transport's per-kind mailbox counters.
    fn kind_index(&self) -> usize {
        match self {
            TwoPcMessage::Read { .. } => 0,
            TwoPcMessage::Prepare { .. } => 1,
            TwoPcMessage::Decide { .. } => 2,
        }
    }
}

#[derive(Debug)]
struct PreparedTxn {
    local_writes: Vec<(Key, Value)>,
}

struct TwoPcNode {
    id: NodeId,
    replicas: ReplicaMap,
    /// Sharded and internally synchronized — read and written concurrently
    /// by the node's workers without an enclosing lock.
    store: SvStore,
    prepared: Mutex<HashMap<TxnId, PreparedTxn>>,
    /// Transactions whose `Decide` has been processed here. The
    /// high-priority decide can overtake its lower-priority `Prepare` in
    /// the mailbox; a late prepare for a decided transaction must not
    /// (re-)acquire locks, or they would never be released and every later
    /// transaction touching those keys would abort forever.
    decided: Mutex<RecentTxnSet>,
    locks: LockTable,
    lock_timeout: Duration,
    aborts: AtomicU64,
    commits: AtomicU64,
    obs: Option<Arc<ObsHub>>,
}

impl TwoPcNode {
    fn handle_read(&self, key: Key, reply: ReplySender<ReadReply>) {
        // One sharded read returns the whole cell, so the value/version
        // pair is consistent (it is read under the key's shard lock).
        let cell = self.store.read(&key);
        reply.send(ReadReply {
            version: cell.as_ref().map(|c| c.version).unwrap_or(0),
            value: cell.map(|c| c.value),
        });
    }

    fn handle_prepare(
        &self,
        txn: TxnId,
        read_versions: Vec<(Key, u64)>,
        write_set: Vec<(Key, Value)>,
        reply: ReplySender<VoteReply>,
    ) {
        // The coordinator may already have decided (an abort decide
        // overtaking this prepare): vote no without acquiring anything.
        if self.decided.lock().contains(&txn) {
            self.aborts.fetch_add(1, Ordering::Relaxed);
            reply.send(VoteReply {
                from: self.id,
                ok: false,
            });
            return;
        }
        // Duplicate delivery of a prepare already being processed: drop it
        // without a second vote (the original copy's vote is guaranteed to
        // arrive, and extra votes can crowd distinct ones out of the
        // coordinator's bounded reply channel).
        if self.prepared.lock().contains_key(&txn) {
            return;
        }
        let local_reads: Vec<(Key, u64)> = read_versions
            .into_iter()
            .filter(|(k, _)| self.replicas.is_replica(self.id, k))
            .collect();
        let local_writes: Vec<(Key, Value)> = write_set
            .into_iter()
            .filter(|(k, _)| self.replicas.is_replica(self.id, k))
            .collect();
        let requests = local_writes
            .iter()
            .map(|(k, _)| (k, LockKind::Exclusive))
            .chain(local_reads.iter().map(|(k, _)| (k, LockKind::Shared)));
        let lock_started = self.obs.as_ref().map(|_| sss_vclock::runtime::now());
        let acquired = self.locks.acquire_many(txn, requests, self.lock_timeout);
        if let (Some(hub), Some(started)) = (self.obs.as_ref(), lock_started) {
            hub.record_server_span(self.id.index(), Phase::LockAcquire, started);
        }
        if !acquired {
            self.aborts.fetch_add(1, Ordering::Relaxed);
            reply.send(VoteReply {
                from: self.id,
                ok: false,
            });
            return;
        }
        // Validation: every locally stored read key must still have the
        // version observed during execution. The shared locks acquired
        // above pin the versions, so per-key sharded reads suffice.
        let valid = local_reads
            .iter()
            .all(|(k, version)| self.store.version(k) == *version);
        if !valid {
            self.locks.release_all(txn);
            self.aborts.fetch_add(1, Ordering::Relaxed);
            reply.send(VoteReply {
                from: self.id,
                ok: false,
            });
            return;
        }
        self.prepared
            .lock()
            .insert(txn, PreparedTxn { local_writes });
        // Re-check after publishing the prepared entry: a decide processed
        // between the entry check above and this point has already released
        // (or will never release) our locks, so roll the prepare back
        // instead of leaving locked keys behind.
        if self.decided.lock().contains(&txn) {
            if self.prepared.lock().remove(&txn).is_some() {
                self.locks.release_all(txn);
            }
            self.aborts.fetch_add(1, Ordering::Relaxed);
            reply.send(VoteReply {
                from: self.id,
                ok: false,
            });
            return;
        }
        reply.send(VoteReply {
            from: self.id,
            ok: true,
        });
    }

    fn handle_decide(&self, txn: TxnId, outcome: bool, ack: Option<ReplySender<DecideAck>>) {
        // Tombstone before touching the prepared map, so a prepare racing
        // with this decide observes the decision no matter how the two
        // interleave (see `TwoPcNode::decided`).
        let first_copy = self.decided.lock().insert(txn);
        let prepared = self.prepared.lock().remove(&txn);
        if let Some(prep) = prepared {
            if outcome {
                // The exclusive locks held by `txn` serialize these writes
                // against concurrent validation of the same keys.
                for (key, value) in prep.local_writes {
                    self.store.write(key, value, txn);
                }
                self.commits.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.locks.release_all(txn);
        // Acknowledge only the first delivery: the coordinator's reply
        // channel is bounded by the participant count, and a duplicated
        // decide's extra ack could crowd a distinct participant's ack out
        // of it (same race as the SSS `ConfirmExternal` dedup).
        if first_copy {
            if let Some(ack) = ack {
                ack.send(DecideAck { from: self.id });
            }
        }
    }
}

impl NodeService<TwoPcMessage> for TwoPcNode {
    fn handle(&self, envelope: Envelope<TwoPcMessage>) {
        match envelope.payload {
            TwoPcMessage::Read { key, reply } => self.handle_read(key, reply),
            TwoPcMessage::Prepare {
                txn,
                read_versions,
                write_set,
                reply,
            } => self.handle_prepare(txn, read_versions, write_set, reply),
            TwoPcMessage::Decide { txn, outcome, ack } => self.handle_decide(txn, outcome, ack),
        }
    }
}

/// A running 2PC-baseline cluster.
pub struct TwoPcCluster {
    config: TwoPcConfig,
    transport: Arc<ChannelTransport<TwoPcMessage>>,
    nodes: Vec<Arc<TwoPcNode>>,
    runtimes: Mutex<Vec<NodeRuntime>>,
    next_txn: AtomicU64,
}

impl TwoPcCluster {
    /// Boots the cluster.
    pub fn start(config: TwoPcConfig) -> Self {
        Self::start_with_interposer(config, None)
    }

    /// Boots the cluster with an optional fault interposer on its
    /// transport (the baselines run on the same `sss-net` substrate as
    /// SSS, so injected faults hit them identically).
    pub fn start_with_interposer(
        config: TwoPcConfig,
        interposer: Option<Arc<dyn FaultInterposer>>,
    ) -> Self {
        let mut transport_config = TransportConfig::new(config.nodes);
        if let Some(interposer) = interposer {
            transport_config = transport_config.interposer(interposer);
        }
        if let Some(scheduler) = &config.scheduler {
            transport_config = transport_config.scheduler(Arc::clone(scheduler));
        }
        let transport = Arc::new(ChannelTransport::new(transport_config));
        // Per-kind message accounting, mirroring the SSS transport: every
        // send is attributed to its protocol message type.
        transport.set_message_classifier(|message: &TwoPcMessage| message.kind_index());
        let replicas = ReplicaMap::new(config.nodes, config.replication);
        let nodes: Vec<Arc<TwoPcNode>> = (0..config.nodes)
            .map(|i| {
                Arc::new(TwoPcNode {
                    id: NodeId(i),
                    replicas: replicas.clone(),
                    store: SvStore::with_shards(config.storage_shards),
                    prepared: Mutex::new(HashMap::new()),
                    decided: Mutex::new(RecentTxnSet::new(1 << 16)),
                    locks: LockTable::with_shards(config.storage_shards),
                    lock_timeout: config.lock_timeout,
                    aborts: AtomicU64::new(0),
                    commits: AtomicU64::new(0),
                    obs: config.observability.clone(),
                })
            })
            .collect();
        // Self-addressed messages (the coordinator is usually a replica of
        // its own keys) skip the mailbox via the local fast path.
        for node in &nodes {
            let handler = Arc::clone(node);
            transport
                .set_local_dispatch(node.id, Arc::new(move |envelope| handler.handle(envelope)));
        }
        let runtimes = nodes
            .iter()
            .map(|node| {
                NodeRuntime::spawn_batched(
                    node.id,
                    transport.mailbox(node.id),
                    Arc::clone(node),
                    config.workers_per_node,
                    config.delivery_batch,
                )
            })
            .collect();
        TwoPcCluster {
            config,
            transport,
            nodes,
            runtimes: Mutex::new(runtimes),
            next_txn: AtomicU64::new(0),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Per-node pause gates of the cluster transport, for fault injectors.
    pub fn pause_controls(&self) -> Vec<Arc<PauseControl>> {
        (0..self.nodes.len())
            .map(|i| self.transport.mailbox(NodeId(i)).pause_control())
            .collect()
    }

    /// The observability hub the cluster was started with, if any (see
    /// [`TwoPcConfig::observability`]).
    pub fn observability(&self) -> Option<Arc<ObsHub>> {
        self.config.observability.clone()
    }

    /// Aggregated storage-layer counters (single-version store and lock
    /// table, with per-shard contention breakdowns) summed over every node.
    pub fn storage_stats(&self) -> sss_storage::StorageStats {
        let mut total = sss_storage::StorageStats::default();
        for node in &self.nodes {
            total.merge(&sss_storage::StorageStats {
                mv: None,
                sv: Some(node.store.stats()),
                locks: Some(node.locks.stats()),
            });
        }
        total
    }

    /// Aggregated mailbox traffic counters summed over every node.
    pub fn mailbox_totals(&self) -> sss_net::MailboxStats {
        let mut total = sss_net::MailboxStats::default();
        for i in 0..self.nodes.len() {
            total.merge(&self.transport.mailbox_stats(NodeId(i)));
        }
        total
    }

    /// Total commits applied across nodes (diagnostic).
    pub fn applied_commits(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.commits.load(Ordering::Relaxed))
            .sum()
    }

    /// Total negative votes across nodes (diagnostic).
    pub fn vote_aborts(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.aborts.load(Ordering::Relaxed))
            .sum()
    }

    /// Opens a session colocated with `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn session(&self, node: usize) -> TwoPcSession<'_> {
        assert!(node < self.nodes.len(), "node index out of range");
        TwoPcSession {
            cluster: self,
            node: NodeId(node),
        }
    }

    /// Shuts down the cluster. Idempotent.
    pub fn shutdown(&self) {
        self.transport.shutdown();
        for runtime in std::mem::take(&mut *self.runtimes.lock()) {
            runtime.join();
        }
    }

    fn replicas(&self) -> ReplicaMap {
        ReplicaMap::new(self.config.nodes, self.config.replication)
    }
}

impl Drop for TwoPcCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for TwoPcCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoPcCluster")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

/// Outcome of a 2PC-baseline transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoPcOutcome {
    /// The transaction committed.
    Committed,
    /// The transaction aborted (lock timeout or validation failure) and may
    /// be retried.
    Aborted,
}

/// A client session colocated with one node.
#[derive(Debug, Clone, Copy)]
pub struct TwoPcSession<'c> {
    cluster: &'c TwoPcCluster,
    node: NodeId,
}

impl<'c> TwoPcSession<'c> {
    fn read(&self, key: &Key) -> Option<(Option<Value>, u64)> {
        let replicas = self.cluster.replicas().replicas(key);
        let (reply, rx) = reply_channel(replicas.len());
        let msg = TwoPcMessage::Read {
            key: key.clone(),
            reply,
        };
        let _ = self
            .cluster
            .transport
            .multicast(self.node, replicas, msg, Priority::Normal);
        rx.recv_timeout(self.cluster.config.rpc_timeout)
            .map(|r| (r.value, r.version))
    }

    /// Executes a transaction that reads `read_keys` and installs `writes`
    /// (either may be empty — read-only transactions simply have no writes,
    /// but still validate and may abort).
    pub fn execute(
        &self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> (TwoPcOutcome, Option<BTreeMap<Key, Option<Value>>>) {
        self.execute_traced(read_keys, writes, None)
    }

    /// [`TwoPcSession::execute`] carrying an optional phase trace: spans
    /// open at the read / prepare / decide / install-ack boundaries. The
    /// caller finishes the trace with the final outcome (which also closes
    /// the span left open on return).
    pub fn execute_traced(
        &self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
        mut trace: Option<&mut TxnTrace>,
    ) -> (TwoPcOutcome, Option<BTreeMap<Key, Option<Value>>>) {
        let txn = TxnId::new(
            self.node,
            self.cluster.next_txn.fetch_add(1, Ordering::Relaxed),
        );
        let mut observed = BTreeMap::new();
        let mut read_versions = Vec::with_capacity(read_keys.len());
        if !read_keys.is_empty() {
            if let Some(trace) = trace.as_deref_mut() {
                trace.enter(Phase::Read);
            }
        }
        for key in read_keys {
            let Some((value, version)) = self.read(key) else {
                return (TwoPcOutcome::Aborted, None);
            };
            observed.insert(key.clone(), value);
            read_versions.push((key.clone(), version));
        }

        let replica_map = self.cluster.replicas();
        let write_keys: Vec<Key> = writes.iter().map(|(k, _)| k.clone()).collect();
        let participants = replica_map.replicas_of_all(read_keys.iter().chain(write_keys.iter()));
        if participants.is_empty() {
            return (TwoPcOutcome::Committed, Some(observed));
        }

        let (reply, rx) = reply_channel(participants.len());
        if let Some(trace) = trace.as_deref_mut() {
            trace.enter(Phase::Prepare);
        }
        let prepare = TwoPcMessage::Prepare {
            txn,
            read_versions,
            write_set: writes.to_vec(),
            reply,
        };
        let _ = self.cluster.transport.multicast(
            self.node,
            participants.iter().copied(),
            prepare,
            Priority::Normal,
        );
        let deadline = sss_vclock::runtime::now() + self.cluster.config.rpc_timeout;
        let mut ok = true;
        // Votes are deduplicated by sender: under message duplication a
        // participant's vote can arrive twice, and counting replies alone
        // could reach the participant total while a negative vote from a
        // slower node was still outstanding.
        let mut voted: HashSet<NodeId> = HashSet::new();
        while voted.len() < participants.len() {
            let remaining = deadline.saturating_duration_since(sss_vclock::runtime::now());
            match rx.recv_timeout(remaining) {
                Some(vote) => {
                    if !voted.insert(vote.from) {
                        continue;
                    }
                    if !vote.ok {
                        ok = false;
                        break;
                    }
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        // Commit decides are acknowledged: the client is answered only once
        // every participant installed the writes and released its locks, so
        // the client-visible completion follows the serialization point
        // even though the decide itself travels asynchronously. Abort
        // decides are fire-and-forget.
        let (ack_reply, ack_rx) = reply_channel(participants.len());
        if let Some(trace) = trace.as_deref_mut() {
            trace.enter(Phase::Decide);
        }
        let decide = TwoPcMessage::Decide {
            txn,
            outcome: ok,
            ack: ok.then_some(ack_reply),
        };
        let _ = self.cluster.transport.multicast(
            self.node,
            participants.iter().copied(),
            decide,
            Priority::High,
        );
        if ok {
            // Wait for the installation acks, deduplicated by sender (the
            // network may duplicate the decide). A timeout does not change
            // the outcome — the transaction *is* committed — it only stops
            // the client from waiting on a wedged participant forever.
            if let Some(trace) = trace {
                trace.enter(Phase::InstallAck);
            }
            let deadline = sss_vclock::runtime::now() + self.cluster.config.rpc_timeout;
            let mut acked: HashSet<NodeId> = HashSet::new();
            while acked.len() < participants.len() {
                let remaining = deadline.saturating_duration_since(sss_vclock::runtime::now());
                match ack_rx.recv_timeout(remaining) {
                    Some(ack) => {
                        acked.insert(ack.from);
                    }
                    None => break,
                }
            }
            (TwoPcOutcome::Committed, Some(observed))
        } else {
            (TwoPcOutcome::Aborted, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_net::Transport;

    #[test]
    fn committed_writes_are_visible_to_later_reads() {
        let cluster = TwoPcCluster::start(TwoPcConfig::new(3));
        let session = cluster.session(0);
        let k = Key::new("x");
        let (outcome, _) = session.execute(&[], &[(k.clone(), Value::from_u64(7))]);
        assert_eq!(outcome, TwoPcOutcome::Committed);
        let (outcome, observed) = session.execute(std::slice::from_ref(&k), &[]);
        assert_eq!(outcome, TwoPcOutcome::Committed);
        assert_eq!(
            observed.unwrap().get(&k).cloned().flatten(),
            Some(Value::from_u64(7))
        );
        assert!(cluster.applied_commits() >= 1);
        cluster.shutdown();
    }

    #[test]
    fn conflicting_writer_forces_validation_abort() {
        let cluster = TwoPcCluster::start(TwoPcConfig::new(2));
        let s0 = cluster.session(0);
        let s1 = cluster.session(1);
        let k = Key::new("hot");
        let (outcome, _) = s0.execute(&[], &[(k.clone(), Value::from_u64(1))]);
        assert_eq!(outcome, TwoPcOutcome::Committed);

        // s1 reads version 1, then s0 overwrites, then s1's read-only commit
        // must fail validation... but because execute() is atomic here we
        // emulate the stale read by issuing the overwrite from a read the
        // session took earlier. Simplest deterministic check: a read-write
        // transaction whose read version is stale aborts.
        let stale_version = 1u64;
        let replicas = cluster.replicas().replicas(&k);
        let (reply, rx) = reply_channel(replicas.len());
        // Overwrite to make version 2.
        let (outcome, _) = s0.execute(&[], &[(k.clone(), Value::from_u64(2))]);
        assert_eq!(outcome, TwoPcOutcome::Committed);
        // Now prepare with the stale version by hand.
        let txn = TxnId::new(NodeId(1), 999);
        let prepare = TwoPcMessage::Prepare {
            txn,
            read_versions: vec![(k.clone(), stale_version)],
            write_set: vec![],
            reply,
        };
        for target in &replicas {
            cluster
                .transport
                .send(NodeId(1), *target, prepare.clone(), Priority::Normal)
                .unwrap();
        }
        let vote = rx.recv().unwrap();
        assert!(!vote.ok, "stale read version must fail validation");
        let _ = s1;
        cluster.shutdown();
    }

    #[test]
    fn read_only_transactions_go_through_2pc() {
        let cluster = TwoPcCluster::start(TwoPcConfig::new(2));
        let session = cluster.session(1);
        let (outcome, observed) = session.execute(&[Key::new("missing")], &[]);
        assert_eq!(outcome, TwoPcOutcome::Committed);
        assert_eq!(
            observed
                .unwrap()
                .get(&Key::new("missing"))
                .cloned()
                .flatten(),
            None
        );
        cluster.shutdown();
    }
}
