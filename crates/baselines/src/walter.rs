//! A Walter-style Parallel Snapshot Isolation (PSI) engine.
//!
//! Walter (Sovran et al., SOSP 2011) is included in the paper's evaluation
//! because, like SSS, it synchronizes nodes with vector clocks — but it only
//! provides PSI, "a weaker isolation level than external consistency and
//! even serializability" (§V). The engine below captures the properties the
//! comparison relies on:
//!
//! * multi-version storage stamped with vector clocks,
//! * transactions read from the snapshot defined by their start vector
//!   clock; read-only transactions never validate, never wait and never
//!   abort,
//! * update transactions detect only write-write conflicts
//!   (first-committer-wins on the written keys) through a lightweight
//!   prepare/decide round — there is no read validation and no
//!   client-response delay, which is exactly why Walter outperforms SSS
//!   while offering weaker guarantees (long forks are possible).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sss_net::{
    reply_channel, ChannelTransport, Envelope, FaultInterposer, NodeRuntime, NodeService,
    PauseControl, Priority, ReplySender, TransportConfig, TransportExt,
};
use sss_obs::{ObsHub, Phase, TxnTrace};
use sss_storage::{Key, LockKind, LockTable, MvStore, RecentTxnSet, ReplicaMap, TxnId, Value};
use sss_vclock::runtime::SchedulerHandle;
use sss_vclock::{NodeId, VectorClock};

/// Human-readable labels of the Walter message kinds, in
/// `WalterMessage::kind_index` order — the per-kind mailbox counters
/// (`MailboxStats::per_kind`) attribute traffic against this table.
pub const MESSAGE_KIND_LABELS: [&str; 3] = ["Read", "Prepare", "Decide"];

/// Configuration of a [`WalterCluster`].
#[derive(Debug, Clone)]
pub struct WalterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Replication degree.
    pub replication: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Lock-acquisition timeout for write-write conflict detection.
    pub lock_timeout: Duration,
    /// Timeout for reads and votes.
    pub rpc_timeout: Duration,
    /// Shard arity of every node's storage structures (multi-version store
    /// and lock table). Rounded up to a power of two.
    pub storage_shards: usize,
    /// Messages a node worker drains from its mailbox per wakeup (clamped
    /// to at least 1).
    pub delivery_batch: usize,
    /// Optional observability hub: sessions trace protocol phases and the
    /// nodes record server-side lock-acquisition spans into it. When `None`
    /// — the default — every instrumentation site is one branch.
    pub observability: Option<Arc<ObsHub>>,
    /// Optional deterministic-simulation scheduler (see `sss-sim`): when
    /// set, the cluster's transport and workers run in virtual time.
    pub scheduler: Option<SchedulerHandle>,
}

impl WalterConfig {
    /// Defaults matching the paper's setup.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        WalterConfig {
            nodes,
            replication: 2.min(nodes),
            workers_per_node: 4,
            lock_timeout: Duration::from_millis(1),
            rpc_timeout: Duration::from_secs(1),
            storage_shards: sss_storage::DEFAULT_SHARDS,
            delivery_batch: sss_net::DEFAULT_DELIVERY_BATCH,
            observability: None,
            scheduler: None,
        }
    }

    /// Runs the cluster under a deterministic-simulation scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerHandle) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Sets the replication degree.
    pub fn replication(mut self, degree: usize) -> Self {
        self.replication = degree;
        self
    }

    /// Attaches an observability hub (see [`sss_obs::ObsHub`]).
    pub fn observability(mut self, hub: Arc<ObsHub>) -> Self {
        self.observability = Some(hub);
        self
    }

    /// Sets the shard arity of every node's storage structures.
    pub fn storage_shards(mut self, shards: usize) -> Self {
        self.storage_shards = shards;
        self
    }

    /// Sets the per-wakeup mailbox delivery batch size of every node's
    /// workers (clamped to at least 1).
    pub fn delivery_batch(mut self, batch: usize) -> Self {
        self.delivery_batch = batch;
        self
    }
}

#[derive(Debug, Clone)]
#[allow(dead_code)] // version_vc is kept for symmetry with the protocol message
struct ReadReply {
    value: Option<Value>,
    version_vc: Option<std::sync::Arc<VectorClock>>,
}

#[derive(Debug, Clone)]
#[allow(dead_code)] // carries protocol metadata useful for tracing
struct VoteReply {
    from: NodeId,
    ok: bool,
    proposed: VectorClock,
}

#[derive(Debug, Clone)]
enum WalterMessage {
    Read {
        key: Key,
        snapshot: VectorClock,
        reply: ReplySender<ReadReply>,
    },
    Prepare {
        txn: TxnId,
        snapshot: VectorClock,
        write_set: Vec<(Key, Value)>,
        reply: ReplySender<VoteReply>,
    },
    Decide {
        txn: TxnId,
        commit_vc: VectorClock,
        outcome: bool,
    },
}

impl WalterMessage {
    /// Dense per-kind index into [`MESSAGE_KIND_LABELS`], for the
    /// transport's per-kind mailbox counters.
    fn kind_index(&self) -> usize {
        match self {
            WalterMessage::Read { .. } => 0,
            WalterMessage::Prepare { .. } => 1,
            WalterMessage::Decide { .. } => 2,
        }
    }
}

#[derive(Debug)]
struct PreparedTxn {
    local_writes: Vec<(Key, Value)>,
}

struct WalterNode {
    id: NodeId,
    replicas: ReplicaMap,
    lock_timeout: Duration,
    state: Mutex<WalterNodeState>,
    /// Sharded and internally synchronized, held *outside* the state mutex:
    /// snapshot reads walk version chains without serializing on the node's
    /// protocol state, and commit-time installs only take the written key's
    /// shard lock.
    store: MvStore,
    locks: LockTable,
    obs: Option<Arc<ObsHub>>,
}

struct WalterNodeState {
    node_vc: VectorClock,
    prepared: HashMap<TxnId, PreparedTxn>,
    /// Transactions whose `Decide` has been processed here. A
    /// high-priority decide can overtake its lower-priority `Prepare` in
    /// the mailbox; a late prepare for a decided transaction must not
    /// keep locks, or they would never be released (see the 2PC baseline
    /// for the same race).
    decided: RecentTxnSet,
}

impl WalterNode {
    fn handle_read(&self, key: Key, snapshot: VectorClock, reply: ReplySender<ReadReply>) {
        // PSI visibility: the newest version whose commit vector clock is
        // contained in the reader's start snapshot. No protocol-state lock
        // is needed: every version inside the snapshot was installed before
        // the snapshot's clock was published (decide applies writes before
        // merging `node_vc`), and the chain handle is an immutable
        // copy-on-write snapshot.
        let version = self.store.chain(&key).and_then(|chain| {
            chain
                .latest_matching(|v| v.vc.le(&snapshot))
                .map(|v| (v.value.clone(), v.vc.clone()))
        });
        let (value, version_vc) = match version {
            Some((value, vc)) => (Some(value), Some(vc)),
            None => (None, None),
        };
        reply.send(ReadReply { value, version_vc });
    }

    fn handle_prepare(
        &self,
        txn: TxnId,
        snapshot: VectorClock,
        write_set: Vec<(Key, Value)>,
        reply: ReplySender<VoteReply>,
    ) {
        // The coordinator may already have decided (an abort decide
        // overtaking this prepare): vote no without acquiring anything.
        // Duplicate deliveries of a prepare already being processed are
        // dropped without a second vote (the original copy's vote is
        // guaranteed to arrive, and extra votes can crowd distinct ones out
        // of the coordinator's bounded reply channel).
        {
            let state = self.state.lock();
            if state.prepared.contains_key(&txn) {
                return;
            }
            if state.decided.contains(&txn) {
                drop(state);
                reply.send(VoteReply {
                    from: self.id,
                    ok: false,
                    proposed: snapshot,
                });
                return;
            }
        }
        let local_writes: Vec<(Key, Value)> = write_set
            .into_iter()
            .filter(|(k, _)| self.replicas.is_replica(self.id, k))
            .collect();
        let lock_requests = local_writes.iter().map(|(k, _)| (k, LockKind::Exclusive));
        let lock_started = self.obs.as_ref().map(|_| sss_vclock::runtime::now());
        let acquired = self
            .locks
            .acquire_many(txn, lock_requests, self.lock_timeout);
        if let (Some(hub), Some(started)) = (self.obs.as_ref(), lock_started) {
            hub.record_server_span(self.id.index(), Phase::LockAcquire, started);
        }
        if !acquired {
            let snapshot_out = snapshot.clone();
            reply.send(VoteReply {
                from: self.id,
                ok: false,
                proposed: snapshot_out,
            });
            return;
        }
        let mut state = self.state.lock();
        // First-committer-wins: abort if any written key already has a
        // version outside the transaction's start snapshot. The exclusive
        // locks acquired above pin the written keys' latest versions.
        let conflict = local_writes.iter().any(|(k, _)| {
            self.store
                .last(k)
                .map(|v| !v.vc.le(&snapshot))
                .unwrap_or(false)
        });
        if conflict {
            drop(state);
            self.locks.release_all(txn);
            reply.send(VoteReply {
                from: self.id,
                ok: false,
                proposed: snapshot,
            });
            return;
        }
        // Re-check under the state lock (the decide also runs under it):
        // a decide processed while we were acquiring key locks has already
        // released them, so the prepare must roll back instead of leaving
        // locked keys behind. A duplicate that raced past the entry check
        // is dropped before it can double-prepare — *without* releasing:
        // the lock table is reentrant per transaction, so the duplicate's
        // acquisition aliased the original's locks, which must stay held
        // until the decide.
        if state.prepared.contains_key(&txn) {
            return;
        }
        if state.decided.contains(&txn) {
            drop(state);
            self.locks.release_all(txn);
            reply.send(VoteReply {
                from: self.id,
                ok: false,
                proposed: snapshot,
            });
            return;
        }
        let i = self.id.index();
        state.node_vc.increment(i);
        let proposed = state.node_vc.clone();
        state.prepared.insert(txn, PreparedTxn { local_writes });
        drop(state);
        reply.send(VoteReply {
            from: self.id,
            ok: true,
            proposed,
        });
    }

    fn handle_decide(&self, txn: TxnId, commit_vc: VectorClock, outcome: bool) {
        let mut state = self.state.lock();
        state.decided.insert(txn);
        if let Some(prep) = state.prepared.remove(&txn) {
            if outcome {
                // Install the versions *before* merging `node_vc` (still
                // under the state lock): a snapshot that covers `commit_vc`
                // can only be taken after the merge, by which point every
                // version it admits is already in the store.
                // One shared clock for every version this transaction
                // installs.
                let shared_vc = std::sync::Arc::new(commit_vc.clone());
                for (key, value) in prep.local_writes {
                    self.store
                        .apply(key, value, std::sync::Arc::clone(&shared_vc), txn);
                }
                state.node_vc.merge(&commit_vc);
            }
        }
        drop(state);
        self.locks.release_all(txn);
    }

    fn snapshot(&self) -> VectorClock {
        self.state.lock().node_vc.clone()
    }

    /// Folds a commit vector clock observed by a colocated client into the
    /// node's knowledge, so later transactions started here include it in
    /// their snapshot (Walter's background propagation, collapsed to the
    /// synchronous paths we exercise).
    fn observe(&self, vc: &VectorClock) {
        self.state.lock().node_vc.merge(vc);
    }
}

impl NodeService<WalterMessage> for WalterNode {
    fn handle(&self, envelope: Envelope<WalterMessage>) {
        match envelope.payload {
            WalterMessage::Read {
                key,
                snapshot,
                reply,
            } => self.handle_read(key, snapshot, reply),
            WalterMessage::Prepare {
                txn,
                snapshot,
                write_set,
                reply,
            } => self.handle_prepare(txn, snapshot, write_set, reply),
            WalterMessage::Decide {
                txn,
                commit_vc,
                outcome,
            } => self.handle_decide(txn, commit_vc, outcome),
        }
    }
}

/// A running Walter-style PSI cluster.
pub struct WalterCluster {
    config: WalterConfig,
    transport: Arc<ChannelTransport<WalterMessage>>,
    nodes: Vec<Arc<WalterNode>>,
    runtimes: Mutex<Vec<NodeRuntime>>,
    next_txn: AtomicU64,
}

impl WalterCluster {
    /// Boots the cluster.
    pub fn start(config: WalterConfig) -> Self {
        Self::start_with_interposer(config, None)
    }

    /// Boots the cluster with an optional fault interposer on its
    /// transport (the baselines run on the same `sss-net` substrate as
    /// SSS, so injected faults hit them identically).
    pub fn start_with_interposer(
        config: WalterConfig,
        interposer: Option<Arc<dyn FaultInterposer>>,
    ) -> Self {
        let mut transport_config = TransportConfig::new(config.nodes);
        if let Some(interposer) = interposer {
            transport_config = transport_config.interposer(interposer);
        }
        if let Some(scheduler) = &config.scheduler {
            transport_config = transport_config.scheduler(Arc::clone(scheduler));
        }
        let transport = Arc::new(ChannelTransport::new(transport_config));
        // Per-kind message accounting, mirroring the SSS transport: every
        // send is attributed to its protocol message type.
        transport.set_message_classifier(|message: &WalterMessage| message.kind_index());
        let replicas = ReplicaMap::new(config.nodes, config.replication);
        let nodes: Vec<Arc<WalterNode>> = (0..config.nodes)
            .map(|i| {
                Arc::new(WalterNode {
                    id: NodeId(i),
                    replicas: replicas.clone(),
                    lock_timeout: config.lock_timeout,
                    state: Mutex::new(WalterNodeState {
                        node_vc: VectorClock::new(config.nodes),
                        prepared: HashMap::new(),
                        decided: RecentTxnSet::new(1 << 16),
                    }),
                    store: MvStore::with_shards(config.storage_shards),
                    locks: LockTable::with_shards(config.storage_shards),
                    obs: config.observability.clone(),
                })
            })
            .collect();
        // Self-addressed messages skip the mailbox via the local fast path.
        for node in &nodes {
            let handler = Arc::clone(node);
            transport
                .set_local_dispatch(node.id, Arc::new(move |envelope| handler.handle(envelope)));
        }
        let runtimes = nodes
            .iter()
            .map(|node| {
                NodeRuntime::spawn_batched(
                    node.id,
                    transport.mailbox(node.id),
                    Arc::clone(node),
                    config.workers_per_node,
                    config.delivery_batch,
                )
            })
            .collect();
        WalterCluster {
            config,
            transport,
            nodes,
            runtimes: Mutex::new(runtimes),
            next_txn: AtomicU64::new(0),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Per-node pause gates of the cluster transport, for fault injectors.
    pub fn pause_controls(&self) -> Vec<Arc<PauseControl>> {
        (0..self.nodes.len())
            .map(|i| self.transport.mailbox(NodeId(i)).pause_control())
            .collect()
    }

    /// The observability hub the cluster was started with, if any (see
    /// [`WalterConfig::observability`]).
    pub fn observability(&self) -> Option<Arc<ObsHub>> {
        self.config.observability.clone()
    }

    /// Aggregated storage-layer counters (multi-version store and lock
    /// table, with per-shard contention breakdowns) summed over every node.
    pub fn storage_stats(&self) -> sss_storage::StorageStats {
        let mut total = sss_storage::StorageStats::default();
        for node in &self.nodes {
            total.merge(&sss_storage::StorageStats {
                mv: Some(node.store.stats()),
                sv: None,
                locks: Some(node.locks.stats()),
            });
        }
        total
    }

    /// Aggregated mailbox traffic counters summed over every node.
    pub fn mailbox_totals(&self) -> sss_net::MailboxStats {
        let mut total = sss_net::MailboxStats::default();
        for i in 0..self.nodes.len() {
            total.merge(&self.transport.mailbox_stats(NodeId(i)));
        }
        total
    }

    /// Opens a session colocated with `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn session(&self, node: usize) -> WalterSession<'_> {
        assert!(node < self.nodes.len(), "node index out of range");
        WalterSession {
            cluster: self,
            node: NodeId(node),
        }
    }

    /// Shuts the cluster down. Idempotent.
    pub fn shutdown(&self) {
        self.transport.shutdown();
        for runtime in std::mem::take(&mut *self.runtimes.lock()) {
            runtime.join();
        }
    }

    fn replicas(&self) -> ReplicaMap {
        ReplicaMap::new(self.config.nodes, self.config.replication)
    }
}

impl Drop for WalterCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WalterCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalterCluster")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

/// Outcome of a Walter transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalterOutcome {
    /// The transaction committed.
    Committed,
    /// A write-write conflict aborted the transaction.
    Aborted,
}

/// A client session colocated with one node.
#[derive(Debug, Clone, Copy)]
pub struct WalterSession<'c> {
    cluster: &'c WalterCluster,
    node: NodeId,
}

impl<'c> WalterSession<'c> {
    fn start_snapshot(&self) -> VectorClock {
        self.cluster.nodes[self.node.index()].snapshot()
    }

    fn read_at(&self, key: &Key, snapshot: &VectorClock) -> Option<Option<Value>> {
        let replicas = self.cluster.replicas().replicas(key);
        let (reply, rx) = reply_channel(replicas.len());
        let msg = WalterMessage::Read {
            key: key.clone(),
            snapshot: snapshot.clone(),
            reply,
        };
        let _ = self
            .cluster
            .transport
            .multicast(self.node, replicas, msg, Priority::Normal);
        rx.recv_timeout(self.cluster.config.rpc_timeout)
            .map(|r| r.value)
    }

    /// Executes a read-only transaction over `read_keys`. Never aborts.
    ///
    /// Returns `None` only if the cluster is shutting down (a read timed
    /// out).
    pub fn read_only(&self, read_keys: &[Key]) -> Option<BTreeMap<Key, Option<Value>>> {
        self.read_only_traced(read_keys, None)
    }

    /// [`WalterSession::read_only`] carrying an optional phase trace (one
    /// `read` span over the snapshot reads; the caller finishes the trace).
    pub fn read_only_traced(
        &self,
        read_keys: &[Key],
        trace: Option<&mut TxnTrace>,
    ) -> Option<BTreeMap<Key, Option<Value>>> {
        let snapshot = self.start_snapshot();
        let mut out = BTreeMap::new();
        if !read_keys.is_empty() {
            if let Some(trace) = trace {
                trace.enter(Phase::Read);
            }
        }
        for key in read_keys {
            out.insert(key.clone(), self.read_at(key, &snapshot)?);
        }
        Some(out)
    }

    /// Executes an update transaction: reads `read_keys` from the start
    /// snapshot, then commits `writes` if no write-write conflict occurred.
    pub fn update(
        &self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> (WalterOutcome, Option<BTreeMap<Key, Option<Value>>>) {
        self.update_traced(read_keys, writes, None)
    }

    /// [`WalterSession::update`] carrying an optional phase trace: spans
    /// open at the read / prepare / decide boundaries. The caller finishes
    /// the trace with the final outcome.
    pub fn update_traced(
        &self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
        mut trace: Option<&mut TxnTrace>,
    ) -> (WalterOutcome, Option<BTreeMap<Key, Option<Value>>>) {
        let snapshot = self.start_snapshot();
        let mut observed = BTreeMap::new();
        if !read_keys.is_empty() {
            if let Some(trace) = trace.as_deref_mut() {
                trace.enter(Phase::Read);
            }
        }
        for key in read_keys {
            match self.read_at(key, &snapshot) {
                Some(value) => {
                    observed.insert(key.clone(), value);
                }
                None => return (WalterOutcome::Aborted, None),
            }
        }
        if writes.is_empty() {
            return (WalterOutcome::Committed, Some(observed));
        }
        let txn = TxnId::new(
            self.node,
            self.cluster.next_txn.fetch_add(1, Ordering::Relaxed),
        );
        let replica_map = self.cluster.replicas();
        let write_keys: Vec<Key> = writes.iter().map(|(k, _)| k.clone()).collect();
        let participants = replica_map.replicas_of_all(write_keys.iter());
        let (reply, rx) = reply_channel(participants.len());
        if let Some(trace) = trace.as_deref_mut() {
            trace.enter(Phase::Prepare);
        }
        let prepare = WalterMessage::Prepare {
            txn,
            snapshot: snapshot.clone(),
            write_set: writes.to_vec(),
            reply,
        };
        let _ = self.cluster.transport.multicast(
            self.node,
            participants.iter().copied(),
            prepare,
            Priority::Normal,
        );
        let deadline = sss_vclock::runtime::now() + self.cluster.config.rpc_timeout;
        let mut commit_vc = snapshot;
        let mut ok = true;
        let mut votes = 0;
        while votes < participants.len() {
            let remaining = deadline.saturating_duration_since(sss_vclock::runtime::now());
            match rx.recv_timeout(remaining) {
                Some(vote) => {
                    votes += 1;
                    if vote.ok {
                        commit_vc.merge(&vote.proposed);
                    } else {
                        ok = false;
                        break;
                    }
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if let Some(trace) = trace {
            trace.enter(Phase::Decide);
        }
        let decide = WalterMessage::Decide {
            txn,
            commit_vc,
            outcome: ok,
        };
        let commit_vc_for_client = match &decide {
            WalterMessage::Decide { commit_vc, .. } => commit_vc.clone(),
            _ => unreachable!("decide constructed above"),
        };
        let _ = self.cluster.transport.multicast(
            self.node,
            participants.iter().copied(),
            decide,
            Priority::High,
        );
        if ok {
            // The client observed its own commit: make it visible to the
            // snapshots of later transactions started on this node.
            self.cluster.nodes[self.node.index()].observe(&commit_vc_for_client);
            (WalterOutcome::Committed, Some(observed))
        } else {
            (WalterOutcome::Aborted, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_net::Transport;

    #[test]
    fn committed_writes_become_visible() {
        let cluster = WalterCluster::start(WalterConfig::new(3));
        let session = cluster.session(0);
        let k = Key::new("x");
        let (outcome, _) = session.update(&[], &[(k.clone(), Value::from_u64(5))]);
        assert_eq!(outcome, WalterOutcome::Committed);
        // A later snapshot (taken on the coordinating node) sees the write.
        let observed = session.read_only(std::slice::from_ref(&k)).unwrap();
        assert_eq!(
            observed.get(&k).cloned().flatten(),
            Some(Value::from_u64(5))
        );
        cluster.shutdown();
    }

    #[test]
    fn read_only_transactions_never_abort() {
        let cluster = WalterCluster::start(WalterConfig::new(2));
        let session = cluster.session(1);
        for _ in 0..10 {
            assert!(session.read_only(&[Key::new("a"), Key::new("b")]).is_some());
        }
        cluster.shutdown();
    }

    #[test]
    fn write_write_conflicts_use_first_committer_wins() {
        let cluster = WalterCluster::start(WalterConfig::new(2));
        let session = cluster.session(0);
        let k = Key::new("contended");
        // Install an initial version.
        let (outcome, _) = session.update(&[], &[(k.clone(), Value::from_u64(1))]);
        assert_eq!(outcome, WalterOutcome::Committed);

        // A writer whose start snapshot predates a concurrent committed
        // write must abort. Simulate by capturing the snapshot, committing
        // another write, then preparing against the stale snapshot.
        let stale_snapshot = cluster.nodes[0].snapshot();
        let (outcome, _) = session.update(&[], &[(k.clone(), Value::from_u64(2))]);
        assert_eq!(outcome, WalterOutcome::Committed);

        let replicas = cluster.replicas().replicas(&k);
        let (reply, rx) = reply_channel(replicas.len());
        let prepare = WalterMessage::Prepare {
            txn: TxnId::new(NodeId(0), 999),
            snapshot: stale_snapshot,
            write_set: vec![(k.clone(), Value::from_u64(3))],
            reply,
        };
        for target in &replicas {
            cluster
                .transport
                .send(NodeId(0), *target, prepare.clone(), Priority::Normal)
                .unwrap();
        }
        let vote = rx.recv().unwrap();
        assert!(!vote.ok, "stale writer must lose first-committer-wins");
        cluster.shutdown();
    }
}
