//! Competitor engines from the SSS evaluation (paper §V).
//!
//! The paper compares SSS against three systems, all re-implemented "using
//! the same software infrastructure of SSS" so that every competitor shares
//! the same network and storage optimizations. This crate follows the same
//! methodology: every engine below runs on the `sss-net` transport and the
//! `sss-storage` substrates, and exposes the same session-per-node client
//! API as the SSS core.
//!
//! * [`twopc`] — the **2PC-baseline**: "all transactions execute as SSS's
//!   update transactions; read-only transactions validate their execution,
//!   therefore they can abort; and no multi-version data repository is
//!   deployed. As SSS, 2PC-baseline guarantees external consistency."
//! * [`walter`] — a **Walter-style PSI engine**: multi-version storage and
//!   vector clocks, write-write conflict detection only (no read
//!   validation), read-only transactions served from the start snapshot.
//!   Parallel Snapshot Isolation is weaker than external consistency (and
//!   even than serializability), which is exactly why the paper treats
//!   Walter as an upper bound on attainable throughput.
//! * [`rococo`] — a **ROCOCO-style engine**: a two-round
//!   dependency-collecting commit where every update piece is deferrable
//!   (update transactions never abort and are reordered on the servers),
//!   while read-only transactions execute multi-round version checks and
//!   must wait for — or retry after — conflicting in-flight updates. The
//!   reproduction preserves the performance profile the paper's comparison
//!   relies on (lock-free updates, read-only cost growing with the read-set
//!   size); see `DESIGN.md` for the fidelity notes.

pub mod adapters;
pub mod rococo;
pub mod twopc;
pub mod walter;

pub use adapters::{RococoEngine, TwoPcEngine, WalterEngine};
pub use rococo::{RococoCluster, RococoConfig, RococoSession};
pub use twopc::{TwoPcCluster, TwoPcConfig, TwoPcSession};
pub use walter::{WalterCluster, WalterConfig, WalterSession};

pub use sss_storage::{Key, TxnId, Value};
