//! A ROCOCO-style dependency-tracking engine.
//!
//! ROCOCO (Mu et al., OSDI 2014) is "an external consistent two-round
//! protocol where transactions are divided into pieces and dependencies are
//! collected to establish the execution order" (paper §V). The paper's
//! benchmark configures every piece as *deferrable* and disables
//! replication, and observes two behaviours that this reproduction
//! preserves:
//!
//! * update transactions are lock-free and never abort: their pieces are
//!   buffered at the owning server in a first round (collecting the set of
//!   concurrently pending transactions as dependencies) and executed in a
//!   second round once the commit message arrives, in queue order;
//! * read-only transactions are *not* abort-free: they execute a
//!   multi-round protocol that must wait for conflicting in-flight update
//!   transactions to drain and re-validates that the observed versions did
//!   not change between rounds, retrying (and eventually aborting) otherwise
//!   — which is why their cost grows with the number of read keys
//!   (Figure 8).
//!
//! See `DESIGN.md` for the fidelity notes: the reproduction targets the
//! performance profile the paper's comparison relies on rather than a
//! complete re-implementation of ROCOCO's reordering proof.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sss_net::{
    reply_channel, ChannelTransport, Envelope, FaultInterposer, NodeRuntime, NodeService,
    PauseControl, Priority, ReplySender, Transport, TransportConfig,
};
use sss_obs::{ObsHub, Phase, TxnTrace};
use sss_storage::{Key, RecentSet, ReplicaMap, SvStore, TxnId, Value};
use sss_vclock::runtime::SchedulerHandle;
use sss_vclock::NodeId;

/// Human-readable labels of the ROCOCO message kinds, in
/// `RococoMessage::kind_index` order — the per-kind mailbox counters
/// (`MailboxStats::per_kind`) attribute traffic against this table.
pub const MESSAGE_KIND_LABELS: [&str; 3] = ["Dispatch", "Commit", "SnapshotRead"];

/// Configuration of a [`RococoCluster`].
#[derive(Debug, Clone)]
pub struct RococoConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Timeout for individual RPCs.
    pub rpc_timeout: Duration,
    /// Maximum snapshot-validation rounds a read-only transaction attempts
    /// before aborting.
    pub read_only_max_rounds: usize,
    /// Pause between read-only validation rounds while waiting for
    /// conflicting update transactions to drain.
    pub read_only_backoff: Duration,
    /// Shard arity of every node's single-version store. Rounded up to a
    /// power of two.
    pub storage_shards: usize,
    /// Messages a node worker drains from its mailbox per wakeup (clamped
    /// to at least 1).
    pub delivery_batch: usize,
    /// Optional observability hub: sessions trace the dispatch / execute /
    /// read phases into it. When `None` — the default — every
    /// instrumentation site is one branch.
    pub observability: Option<Arc<ObsHub>>,
    /// Optional deterministic-simulation scheduler (see `sss-sim`): when
    /// set, the cluster's transport and workers run in virtual time.
    pub scheduler: Option<SchedulerHandle>,
}

impl RococoConfig {
    /// Defaults matching the paper's comparison setup (no replication).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        RococoConfig {
            nodes,
            workers_per_node: 4,
            rpc_timeout: Duration::from_secs(1),
            read_only_max_rounds: 8,
            read_only_backoff: Duration::from_micros(100),
            storage_shards: sss_storage::DEFAULT_SHARDS,
            delivery_batch: sss_net::DEFAULT_DELIVERY_BATCH,
            observability: None,
            scheduler: None,
        }
    }

    /// Runs the cluster under a deterministic-simulation scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerHandle) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Sets the shard arity of every node's single-version store.
    pub fn storage_shards(mut self, shards: usize) -> Self {
        self.storage_shards = shards;
        self
    }

    /// Attaches an observability hub (see [`sss_obs::ObsHub`]).
    pub fn observability(mut self, hub: Arc<ObsHub>) -> Self {
        self.observability = Some(hub);
        self
    }

    /// Sets the per-wakeup mailbox delivery batch size of every node's
    /// workers (clamped to at least 1).
    pub fn delivery_batch(mut self, batch: usize) -> Self {
        self.delivery_batch = batch;
        self
    }
}

#[derive(Debug, Clone)]
struct DispatchReply {
    /// Transactions already pending on the key (the collected dependencies).
    deps: Vec<TxnId>,
}

#[derive(Debug, Clone)]
#[allow(dead_code)] // carries protocol metadata useful for tracing
struct ExecuteReply {
    from: NodeId,
    txn: TxnId,
}

#[derive(Debug, Clone)]
struct SnapshotReply {
    value: Option<Value>,
    version: u64,
    /// Number of dispatched-but-not-yet-executed pieces on the key.
    pending: usize,
}

#[derive(Debug, Clone)]
enum RococoMessage {
    /// Round 1 of an update transaction: buffer the piece, return deps.
    Dispatch {
        txn: TxnId,
        key: Key,
        value: Value,
        reply: ReplySender<DispatchReply>,
    },
    /// Round 2 of an update transaction: the piece may execute.
    Commit {
        txn: TxnId,
        key: Key,
        reply: ReplySender<ExecuteReply>,
    },
    /// One round of a read-only transaction: value + version + pending info.
    SnapshotRead {
        key: Key,
        reply: ReplySender<SnapshotReply>,
    },
}

impl RococoMessage {
    /// Dense per-kind index into [`MESSAGE_KIND_LABELS`], for the
    /// transport's per-kind mailbox counters.
    fn kind_index(&self) -> usize {
        match self {
            RococoMessage::Dispatch { .. } => 0,
            RococoMessage::Commit { .. } => 1,
            RococoMessage::SnapshotRead { .. } => 2,
        }
    }
}

#[derive(Debug)]
struct PendingPiece {
    txn: TxnId,
    value: Value,
    committed: bool,
    reply: Option<ReplySender<ExecuteReply>>,
}

#[derive(Debug)]
struct RococoNodeState {
    store: SvStore,
    queues: HashMap<Key, VecDeque<PendingPiece>>,
    /// Every `(txn, key)` piece this node has accepted a dispatch for. The
    /// network may duplicate messages; re-enqueuing a piece would leave a
    /// phantom entry that no `Commit` resolves, wedging the key's queue.
    dispatched: RecentSet<(TxnId, Key)>,
}

impl RococoNodeState {
    fn with_shards(shards: usize) -> Self {
        RococoNodeState {
            store: SvStore::with_shards(shards),
            queues: HashMap::new(),
            dispatched: RecentSet::new(1 << 16),
        }
    }
}

struct RococoNode {
    id: NodeId,
    state: Mutex<RococoNodeState>,
}

impl RococoNode {
    fn handle_dispatch(
        &self,
        txn: TxnId,
        key: Key,
        value: Value,
        reply: ReplySender<DispatchReply>,
    ) {
        let mut state = self.state.lock();
        // Duplicate delivery (concurrent or after the piece already
        // executed): drop it without enqueuing or replying — the original
        // copy's reply is guaranteed to arrive, and a re-enqueued piece
        // would never be committed again.
        if !state.dispatched.insert((txn, key.clone())) {
            return;
        }
        let queue = state.queues.entry(key).or_default();
        let deps: Vec<TxnId> = queue.iter().map(|p| p.txn).collect();
        queue.push_back(PendingPiece {
            txn,
            value,
            committed: false,
            reply: None,
        });
        drop(state);
        reply.send(DispatchReply { deps });
    }

    fn handle_commit(&self, txn: TxnId, key: Key, reply: ReplySender<ExecuteReply>) {
        let mut state = self.state.lock();
        if let Some(queue) = state.queues.get_mut(&key) {
            if let Some(piece) = queue.iter_mut().find(|p| p.txn == txn) {
                piece.committed = true;
                piece.reply = Some(reply);
            }
        }
        self.drain_queue(&mut state, &key);
    }

    /// Executes committed pieces at the head of the key's queue, in
    /// dispatch order (deferrable pieces execute once their transaction's
    /// commit decision is known and every earlier-dispatched piece has
    /// executed).
    fn drain_queue(&self, state: &mut RococoNodeState, key: &Key) {
        loop {
            let Some(queue) = state.queues.get_mut(key) else {
                return;
            };
            let ready = queue.front().map(|p| p.committed).unwrap_or(false);
            if !ready {
                if queue.is_empty() {
                    state.queues.remove(key);
                }
                return;
            }
            let piece = queue.pop_front().expect("checked non-empty");
            state.store.write(key.clone(), piece.value, piece.txn);
            if let Some(reply) = piece.reply {
                reply.send(ExecuteReply {
                    from: self.id,
                    txn: piece.txn,
                });
            }
        }
    }

    fn handle_snapshot_read(&self, key: Key, reply: ReplySender<SnapshotReply>) {
        let state = self.state.lock();
        let pending = state.queues.get(&key).map(|q| q.len()).unwrap_or(0);
        reply.send(SnapshotReply {
            value: state.store.read(&key).map(|c| c.value.clone()),
            version: state.store.version(&key),
            pending,
        });
    }
}

impl NodeService<RococoMessage> for RococoNode {
    fn handle(&self, envelope: Envelope<RococoMessage>) {
        match envelope.payload {
            RococoMessage::Dispatch {
                txn,
                key,
                value,
                reply,
            } => self.handle_dispatch(txn, key, value, reply),
            RococoMessage::Commit { txn, key, reply } => self.handle_commit(txn, key, reply),
            RococoMessage::SnapshotRead { key, reply } => self.handle_snapshot_read(key, reply),
        }
    }
}

/// A running ROCOCO-style cluster (replication disabled, as in the paper's
/// comparison).
pub struct RococoCluster {
    config: RococoConfig,
    transport: Arc<ChannelTransport<RococoMessage>>,
    nodes: Vec<Arc<RococoNode>>,
    runtimes: Mutex<Vec<NodeRuntime>>,
    placement: ReplicaMap,
    next_txn: AtomicU64,
}

impl RococoCluster {
    /// Boots the cluster.
    pub fn start(config: RococoConfig) -> Self {
        Self::start_with_interposer(config, None)
    }

    /// Boots the cluster with an optional fault interposer on its
    /// transport (the baselines run on the same `sss-net` substrate as
    /// SSS, so injected faults hit them identically).
    pub fn start_with_interposer(
        config: RococoConfig,
        interposer: Option<Arc<dyn FaultInterposer>>,
    ) -> Self {
        let mut transport_config = TransportConfig::new(config.nodes);
        if let Some(interposer) = interposer {
            transport_config = transport_config.interposer(interposer);
        }
        if let Some(scheduler) = &config.scheduler {
            transport_config = transport_config.scheduler(Arc::clone(scheduler));
        }
        let transport = Arc::new(ChannelTransport::new(transport_config));
        // Per-kind message accounting, mirroring the SSS transport: every
        // send is attributed to its protocol message type.
        transport.set_message_classifier(|message: &RococoMessage| message.kind_index());
        let nodes: Vec<Arc<RococoNode>> = (0..config.nodes)
            .map(|i| {
                Arc::new(RococoNode {
                    id: NodeId(i),
                    state: Mutex::new(RococoNodeState::with_shards(config.storage_shards)),
                })
            })
            .collect();
        // Self-addressed messages (a client dispatching to the local key
        // owner) skip the mailbox via the local fast path.
        for node in &nodes {
            let handler = Arc::clone(node);
            transport
                .set_local_dispatch(node.id, Arc::new(move |envelope| handler.handle(envelope)));
        }
        let runtimes = nodes
            .iter()
            .map(|node| {
                NodeRuntime::spawn_batched(
                    node.id,
                    transport.mailbox(node.id),
                    Arc::clone(node),
                    config.workers_per_node,
                    config.delivery_batch,
                )
            })
            .collect();
        let placement = ReplicaMap::new(config.nodes, 1);
        RococoCluster {
            config,
            transport,
            nodes,
            runtimes: Mutex::new(runtimes),
            placement,
            next_txn: AtomicU64::new(0),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Per-node pause gates of the cluster transport, for fault injectors.
    pub fn pause_controls(&self) -> Vec<Arc<PauseControl>> {
        (0..self.nodes.len())
            .map(|i| self.transport.mailbox(NodeId(i)).pause_control())
            .collect()
    }

    /// The observability hub the cluster was started with, if any (see
    /// [`RococoConfig::observability`]).
    pub fn observability(&self) -> Option<Arc<ObsHub>> {
        self.config.observability.clone()
    }

    /// Aggregated storage-layer counters (single-version store, with the
    /// per-shard breakdown) summed over every node. ROCOCO runs no lock
    /// table — update pieces are lock-free by design.
    pub fn storage_stats(&self) -> sss_storage::StorageStats {
        let mut total = sss_storage::StorageStats::default();
        for node in &self.nodes {
            total.merge(&sss_storage::StorageStats {
                mv: None,
                sv: Some(node.state.lock().store.stats()),
                locks: None,
            });
        }
        total
    }

    /// Aggregated mailbox traffic counters summed over every node.
    pub fn mailbox_totals(&self) -> sss_net::MailboxStats {
        let mut total = sss_net::MailboxStats::default();
        for i in 0..self.nodes.len() {
            total.merge(&self.transport.mailbox_stats(NodeId(i)));
        }
        total
    }

    /// Opens a session colocated with `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn session(&self, node: usize) -> RococoSession<'_> {
        assert!(node < self.nodes.len(), "node index out of range");
        RococoSession {
            cluster: self,
            node: NodeId(node),
        }
    }

    /// Shuts the cluster down. Idempotent.
    pub fn shutdown(&self) {
        self.transport.shutdown();
        for runtime in std::mem::take(&mut *self.runtimes.lock()) {
            runtime.join();
        }
    }
}

impl Drop for RococoCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RococoCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RococoCluster")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

/// Outcome of a ROCOCO read-only transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RococoReadOutcome {
    /// A consistent snapshot was obtained.
    Committed,
    /// The snapshot could not be validated within the configured number of
    /// rounds.
    Aborted,
}

/// A client session colocated with one node.
#[derive(Debug, Clone, Copy)]
pub struct RococoSession<'c> {
    cluster: &'c RococoCluster,
    node: NodeId,
}

impl<'c> RococoSession<'c> {
    /// Executes an update transaction writing `writes` (one deferrable piece
    /// per key). Update transactions never abort.
    ///
    /// Returns `false` only if the cluster is shutting down.
    pub fn update(&self, writes: &[(Key, Value)]) -> bool {
        self.update_traced(writes, None)
    }

    /// [`RococoSession::update`] carrying an optional phase trace: one
    /// `dispatch` span over round 1 and one `execute` span over round 2.
    /// The caller finishes the trace with the final outcome.
    pub fn update_traced(&self, writes: &[(Key, Value)], mut trace: Option<&mut TxnTrace>) -> bool {
        if writes.is_empty() {
            return true;
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.enter(Phase::Dispatch);
        }
        let txn = TxnId::new(
            self.node,
            self.cluster.next_txn.fetch_add(1, Ordering::Relaxed),
        );
        // Round 1: dispatch every piece and collect dependencies.
        let (dispatch_reply, dispatch_rx) = reply_channel(writes.len());
        for (key, value) in writes {
            let owner = self.cluster.placement.primary(key);
            let msg = RococoMessage::Dispatch {
                txn,
                key: key.clone(),
                value: value.clone(),
                reply: dispatch_reply.clone(),
            };
            if self
                .cluster
                .transport
                .send(self.node, owner, msg, Priority::Normal)
                .is_err()
            {
                return false;
            }
        }
        let deadline = sss_vclock::runtime::now() + self.cluster.config.rpc_timeout;
        let mut _deps: Vec<TxnId> = Vec::new();
        for _ in 0..writes.len() {
            let remaining = deadline.saturating_duration_since(sss_vclock::runtime::now());
            match dispatch_rx.recv_timeout(remaining) {
                Some(reply) => _deps.extend(reply.deps),
                None => return false,
            }
        }

        // Round 2: commit every piece; the servers execute them in dispatch
        // order, which realizes the aggregated dependency order for
        // deferrable pieces.
        if let Some(trace) = trace {
            trace.enter(Phase::Execute);
        }
        let (exec_reply, exec_rx) = reply_channel(writes.len());
        for (key, _) in writes {
            let owner = self.cluster.placement.primary(key);
            let msg = RococoMessage::Commit {
                txn,
                key: key.clone(),
                reply: exec_reply.clone(),
            };
            if self
                .cluster
                .transport
                .send(self.node, owner, msg, Priority::High)
                .is_err()
            {
                return false;
            }
        }
        let deadline = sss_vclock::runtime::now() + self.cluster.config.rpc_timeout;
        for _ in 0..writes.len() {
            let remaining = deadline.saturating_duration_since(sss_vclock::runtime::now());
            if exec_rx.recv_timeout(remaining).is_none() {
                return false;
            }
        }
        true
    }

    fn snapshot_round(&self, keys: &[Key]) -> Option<Vec<SnapshotReply>> {
        let (reply, rx) = reply_channel(keys.len());
        for key in keys {
            let owner = self.cluster.placement.primary(key);
            let msg = RococoMessage::SnapshotRead {
                key: key.clone(),
                reply: reply.clone(),
            };
            if self
                .cluster
                .transport
                .send(self.node, owner, msg, Priority::Normal)
                .is_err()
            {
                return None;
            }
        }
        // Replies arrive in arbitrary order; for validation we only need the
        // per-key versions, so re-read them keyed by index in a second pass.
        let mut replies = Vec::with_capacity(keys.len());
        let deadline = sss_vclock::runtime::now() + self.cluster.config.rpc_timeout;
        for _ in 0..keys.len() {
            let remaining = deadline.saturating_duration_since(sss_vclock::runtime::now());
            replies.push(rx.recv_timeout(remaining)?);
        }
        Some(replies)
    }

    /// Executes a read-only transaction: repeated rounds of per-key reads
    /// until a round observes no pending conflicting pieces and the same
    /// versions as the previous round.
    pub fn read_only(
        &self,
        keys: &[Key],
    ) -> (RococoReadOutcome, Option<BTreeMap<Key, Option<Value>>>) {
        self.read_only_traced(keys, None)
    }

    /// [`RococoSession::read_only`] carrying an optional phase trace (one
    /// `read` span over every validation round; the caller finishes the
    /// trace with the final outcome).
    pub fn read_only_traced(
        &self,
        keys: &[Key],
        trace: Option<&mut TxnTrace>,
    ) -> (RococoReadOutcome, Option<BTreeMap<Key, Option<Value>>>) {
        if !keys.is_empty() {
            if let Some(trace) = trace {
                trace.enter(Phase::Read);
            }
        }
        // The per-round replies do not identify their key (the reply channel
        // interleaves them), so issue the reads key by key: this also
        // mirrors ROCOCO's per-piece read-only rounds.
        let mut previous_versions: Option<Vec<u64>> = None;
        for _round in 0..self.cluster.config.read_only_max_rounds {
            let mut values = BTreeMap::new();
            let mut versions = Vec::with_capacity(keys.len());
            let mut pending_conflicts = false;
            let mut failed = false;
            for key in keys {
                match self.snapshot_round(std::slice::from_ref(key)) {
                    Some(mut replies) => {
                        let reply = replies.pop().expect("one reply per key");
                        pending_conflicts |= reply.pending > 0;
                        versions.push(reply.version);
                        values.insert(key.clone(), reply.value);
                    }
                    None => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                return (RococoReadOutcome::Aborted, None);
            }
            if !pending_conflicts {
                if let Some(prev) = &previous_versions {
                    if *prev == versions {
                        return (RococoReadOutcome::Committed, Some(values));
                    }
                } else if keys.len() <= 1 {
                    // A single-key read is trivially consistent.
                    return (RococoReadOutcome::Committed, Some(values));
                }
            }
            previous_versions = Some(versions);
            // Back off only while pieces are pending: they resolve on their
            // own and re-reading immediately would spin. A bare version
            // mismatch means a concurrent committed write; retrying at once
            // keeps the two-round validation window as short as the reads
            // themselves, which is what bounds livelock under sustained
            // write pressure.
            if pending_conflicts {
                sss_vclock::runtime::sleep(self.cluster.config.read_only_backoff);
            }
        }
        (RococoReadOutcome::Aborted, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_never_abort_and_become_visible() {
        let cluster = RococoCluster::start(RococoConfig::new(3));
        let session = cluster.session(0);
        let k = Key::new("x");
        assert!(session.update(&[(k.clone(), Value::from_u64(9))]));
        let (outcome, values) = session.read_only(std::slice::from_ref(&k));
        assert_eq!(outcome, RococoReadOutcome::Committed);
        assert_eq!(
            values.unwrap().get(&k).cloned().flatten(),
            Some(Value::from_u64(9))
        );
        cluster.shutdown();
    }

    #[test]
    fn multi_key_read_only_requires_stable_versions() {
        let cluster = RococoCluster::start(RococoConfig::new(2));
        let session = cluster.session(0);
        let a = Key::new("a");
        let b = Key::new("b");
        assert!(session.update(&[
            (a.clone(), Value::from_u64(1)),
            (b.clone(), Value::from_u64(1))
        ]));
        let (outcome, values) = session.read_only(&[a.clone(), b.clone()]);
        assert_eq!(outcome, RococoReadOutcome::Committed);
        let values = values.unwrap();
        assert_eq!(values.get(&a).cloned().flatten(), Some(Value::from_u64(1)));
        assert_eq!(values.get(&b).cloned().flatten(), Some(Value::from_u64(1)));
        cluster.shutdown();
    }

    #[test]
    fn concurrent_writers_are_serialized_per_key() {
        let cluster = Arc::new(RococoCluster::start(RococoConfig::new(2)));
        let k = Key::new("hot");
        let handles: Vec<_> =
            (0..4)
                .map(|i| {
                    let cluster = Arc::clone(&cluster);
                    let k = k.clone();
                    std::thread::spawn(move || {
                        let session = cluster.session(i % 2);
                        for j in 0..10 {
                            assert!(
                                session.update(&[(k.clone(), Value::from_u64(i as u64 * 100 + j))])
                            );
                        }
                    })
                })
                .collect();
        for h in handles {
            h.join().unwrap();
        }
        let session = cluster.session(0);
        let (outcome, values) = session.read_only(std::slice::from_ref(&k));
        assert_eq!(outcome, RococoReadOutcome::Committed);
        assert!(values.unwrap().get(&k).cloned().flatten().is_some());
        cluster.shutdown();
    }
}
