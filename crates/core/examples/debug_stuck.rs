//! Internal debugging aid: reproduces a read-dominated transfer/audit mix
//! and dumps any update transaction stuck in its Pre-Commit phase.
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sss_core::{SssCluster, SssConfig, Value};

fn key(i: u64) -> String {
    format!("account:{i}")
}

fn main() {
    let mut cfg = SssConfig::new(4).replication(2);
    cfg.ack_timeout = Duration::from_secs(2);
    let cluster = Arc::new(SssCluster::start(cfg).unwrap());
    let setup = cluster.session(0);
    let mut f = setup.begin_update();
    for i in 0..32 {
        f.write(key(i), Value::from_u64(1000));
    }
    f.commit().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..3usize {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let session = cluster.session(w % 4);
            let mut rng = w as u64; let mut timeouts = 0; let mut commits = 0; let mut aborts = 0; let run_start = std::time::Instant::now(); let _ = run_start;
            while !stop.load(Ordering::Relaxed) {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(w as u64 + 1);
                let a = rng % 32; let b = (rng / 37) % 32;
                if a == b { continue; }
                let mut t = session.begin_update();
                let ra = t.read(key(a)).unwrap().and_then(|v| v.to_u64()).unwrap_or(0);
                let rb = t.read(key(b)).unwrap().and_then(|v| v.to_u64()).unwrap_or(0);
                t.write(key(a), Value::from_u64(ra.saturating_sub(1)));
                t.write(key(b), Value::from_u64(rb + 1));
                let began = std::time::Instant::now();
                match t.commit() {
                    Ok(_) => commits += 1,
                    Err(e) if e.is_abort() => aborts += 1,
                    Err(e) => {
                        timeouts += 1;
                        eprintln!("[writer {w}] timeout after {:?}: {e} (keys {a},{b}) txn originated at node {}\n{}", began.elapsed(), w % 4, cluster.pending_reports());
                    }
                }
            }
            (commits, aborts, timeouts)
        }));
    }
    let auditor = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let session = cluster.session(1);
            let mut audits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut ro = session.begin_read_only();
                let mut sum = 0u64;
                for i in 0..32 {
                    sum += ro
                        .read(key(i))
                        .unwrap()
                        .and_then(|v| v.to_u64())
                        .unwrap_or(0);
                }
                ro.commit().unwrap();
                assert_eq!(sum, 32_000, "inconsistent audit");
                audits += 1;
            }
            audits
        })
    };
    for _ in 0..8 {
        std::thread::sleep(Duration::from_millis(500));
        println!(
            "--- tick squeue_entries={} ",
            cluster.snapshot_queue_entries()
        );
        print!("{}", cluster.pending_reports());
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        println!("writer (commits,aborts,timeouts): {:?}", h.join().unwrap());
    }
    println!("audits: {}", auditor.join().unwrap());
    cluster.shutdown();
}
