//! Micro-benchmarks of the SSS protocol data structures: the snapshot-queue
//! (read/update serialization points) and the commit queue (per-node commit
//! ordering).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use sss_core::{CommitQueue, SnapshotQueue};
use sss_storage::TxnId;
use sss_vclock::{NodeId, VectorClock};

fn txn(seq: u64) -> TxnId {
    TxnId::new(NodeId(0), seq)
}

fn bench_snapshot_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_queue");
    group.bench_function("insert_and_remove_read", |bencher| {
        bencher.iter_batched(
            SnapshotQueue::new,
            |mut queue| {
                for i in 0..64u64 {
                    queue.insert_read(txn(i), i);
                }
                for i in 0..64u64 {
                    queue.remove(txn(i));
                }
                queue
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("has_read_before", |bencher| {
        let mut queue = SnapshotQueue::new();
        for i in 0..64u64 {
            queue.insert_read(txn(i), i);
        }
        bencher.iter(|| std::hint::black_box(queue.has_read_before(32)))
    });
    group.finish();
}

fn bench_commit_queue(c: &mut Criterion) {
    c.bench_function("commit_queue/put_update_pop", |bencher| {
        bencher.iter_batched(
            || CommitQueue::new(0),
            |mut queue| {
                for i in 0..32u64 {
                    queue.put(txn(i), VectorClock::from_entries(vec![i + 1]));
                }
                for i in 0..32u64 {
                    queue.update(txn(i), VectorClock::from_entries(vec![i + 1]));
                }
                while queue.pop_ready_head().is_some() {}
                queue
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_snapshot_queue, bench_commit_queue);
criterion_main!(benches);
