//! Property-based and randomized tests of the SSS protocol data structures
//! and of small end-to-end clusters.

use proptest::prelude::*;
use sss_core::protocol::commit_queue_blocks_read;
use sss_core::{CommitQueue, SnapshotQueue, SssCluster, SssConfig};
use sss_storage::{TxnId, Value};
use sss_vclock::{NodeId, VectorClock};

fn txn(seq: u64) -> TxnId {
    TxnId::new(NodeId(0), seq)
}

proptest! {
    #[test]
    fn snapshot_queue_blocks_iff_a_smaller_read_entry_exists(
        reads in prop::collection::vec((0u64..100, 0u64..100), 0..20),
        writer_sid in 0u64..100,
    ) {
        let mut queue = SnapshotQueue::new();
        for (seq, sid) in &reads {
            queue.insert_read(txn(*seq), *sid);
        }
        // Because duplicate transaction ids keep the smallest sid, compute
        // the effective sid per transaction before deriving the expectation.
        let mut smallest: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (seq, sid) in &reads {
            let entry = smallest.entry(*seq).or_insert(*sid);
            *entry = (*entry).min(*sid);
        }
        let expected = smallest.values().any(|sid| *sid < writer_sid);
        prop_assert_eq!(queue.has_read_before(writer_sid), expected);
    }

    #[test]
    fn snapshot_queue_remove_is_complete(
        reads in prop::collection::vec(0u64..20, 0..30),
    ) {
        let mut queue = SnapshotQueue::new();
        for (i, seq) in reads.iter().enumerate() {
            queue.insert_read(txn(*seq), i as u64);
        }
        for seq in &reads {
            queue.remove(txn(*seq));
        }
        prop_assert!(queue.is_empty());
        prop_assert!(!queue.has_read_before(u64::MAX));
    }

    #[test]
    fn commit_queue_releases_transactions_in_local_clock_order(
        entries in prop::collection::vec((1u64..1000, any::<bool>()), 1..30),
    ) {
        // Insert every transaction as pending with a proposed clock, then
        // mark them ready in an arbitrary order (possibly with a bumped
        // clock); the pop order must follow the final clocks.
        let mut queue = CommitQueue::new(0);
        let mut final_clock = Vec::new();
        for (i, (clock, bump)) in entries.iter().enumerate() {
            let id = txn(i as u64);
            queue.put(id, VectorClock::from_entries(vec![*clock]));
            let decided = if *bump { clock + 500 } else { *clock };
            final_clock.push((id, decided));
        }
        // Decide in reverse insertion order to maximize reordering.
        for (id, decided) in final_clock.iter().rev() {
            queue.update(*id, VectorClock::from_entries(vec![*decided]));
        }
        let mut popped = Vec::new();
        while let Some(entry) = queue.pop_ready_head() {
            popped.push((entry.vc.get(0), entry.txn));
        }
        prop_assert_eq!(popped.len(), final_clock.len());
        let mut sorted = popped.clone();
        sorted.sort();
        prop_assert_eq!(popped, sorted, "commit order must follow the local clock entry");
    }

    /// The commit-queue ambiguity deferral of the xact-vn equalization: a
    /// read bounded by `bound` defers while *any* queued entry carries a
    /// local clock entry at or below the bound — in particular an exact tie
    /// (`vc[i] == bound`, the equalization's signature ambiguity) defers —
    /// and unblocks exactly when the last such entry drains, never earlier.
    #[test]
    fn commit_queue_tie_deferral_blocks_until_the_bound_clears(
        clocks in prop::collection::vec(1u64..50, 1..20),
        bound in 0u64..60,
    ) {
        let mut queue = CommitQueue::new(0);
        for (i, clock) in clocks.iter().enumerate() {
            let id = txn(i as u64);
            queue.put(id, VectorClock::from_entries(vec![*clock]));
            queue.update(id, VectorClock::from_entries(vec![*clock]));
        }
        // An exact xact-vn tie is ambiguous and must defer.
        for clock in &clocks {
            prop_assert!(commit_queue_blocks_read(queue.entries(), 0, *clock));
        }
        let expected = clocks.iter().any(|c| *c <= bound);
        prop_assert_eq!(commit_queue_blocks_read(queue.entries(), 0, bound), expected);
        // Draining is monotone: the deferral lifts exactly when the last
        // at-or-below entry leaves the queue.
        let mut remaining = clocks.clone();
        while let Some(entry) = queue.pop_ready_head() {
            let at = entry.vc.get(0);
            let pos = remaining.iter().position(|c| *c == at).expect("popped a queued clock");
            remaining.remove(pos);
            let expected = remaining.iter().any(|c| *c <= bound);
            prop_assert_eq!(commit_queue_blocks_read(queue.entries(), 0, bound), expected);
        }
        prop_assert!(!commit_queue_blocks_read(queue.entries(), 0, bound));
    }
}

// Randomized end-to-end check: a single-node cluster processing a random
// interleaving of update and read-only transactions behaves like a simple
// sequential key-value map (linearizability at whole-transaction level for
// the sequential client).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn sequential_client_matches_a_reference_model(
        ops in prop::collection::vec((0u8..8, 0u64..1000, any::<bool>()), 1..25),
    ) {
        let cluster = SssCluster::start(SssConfig::new(2).replication(1)).expect("start");
        let session = cluster.session(0);
        let mut model: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        for (key_idx, value, is_update) in ops {
            let key = format!("key{key_idx}");
            if is_update {
                let mut txn = session.begin_update();
                txn.write(key.as_str(), Value::from_u64(value));
                txn.commit().expect("sequential update commits");
                model.insert(key, value);
            } else {
                let mut txn = session.begin_read_only();
                let observed = txn.read(key.as_str()).expect("read").and_then(|v| v.to_u64());
                txn.commit().expect("read-only commit");
                prop_assert_eq!(observed, model.get(&key).copied());
            }
        }
        cluster.shutdown();
    }
}
