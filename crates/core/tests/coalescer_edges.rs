//! Edge-case tests for the grouped-confirmation decision core.
//!
//! These complement the schedule-enumerating interleaving tests in
//! `sss-model` (`tests/interleave_hotspots.rs`), which exhaust the
//! *schedules*; here we pin down three tricky sequential behaviors: the
//! epoch-1 degeneration to singleton rounds, recovery from a leader dying
//! mid-round, and a linger racing a late enqueue.

use std::sync::Arc;

use sss_core::{CoalescerCore, RoundPlan, TxnId};
use sss_vclock::{NodeId, VectorClock};

fn txn(seq: u64) -> TxnId {
    TxnId::new(NodeId(0), seq)
}

fn vc() -> Arc<VectorClock> {
    Arc::new(VectorClock::new(2))
}

/// Drives the leader loop to `Exit`, collecting round memberships and every
/// release that found a carrier. Panics if the loop does not exit within a
/// bounded number of plans (the core must always converge once enqueues
/// stop).
fn drain(core: &mut CoalescerCore<u8>, window: usize) -> (Vec<Vec<TxnId>>, Vec<TxnId>) {
    let mut rounds = Vec::new();
    let mut released = Vec::new();
    for _ in 0..16 {
        match core.next_round(window, false) {
            RoundPlan::Exit => return (rounds, released),
            RoundPlan::Linger => unreachable!("may_linger=false never lingers"),
            RoundPlan::Flush { release, .. } => released.extend(release),
            RoundPlan::Round { batch, release, .. } => {
                released.extend(release);
                let members: Vec<TxnId> = batch.iter().map(|p| p.txn).collect();
                rounds.push(members.clone());
                if let Some(now) = core.round_completed(members, true) {
                    released.extend(now);
                }
            }
        }
    }
    panic!("leader loop failed to converge");
}

/// With a confirmation epoch of 1 the grouped coalescer is the base
/// protocol: one singleton round per committer, in arrival order, each
/// release carried by the following plan.
#[test]
fn epoch_one_degenerates_to_singleton_rounds() {
    let mut core: CoalescerCore<u8> = CoalescerCore::new();
    assert!(core.enqueue(txn(1), vc(), 0), "first committer leads");
    assert!(!core.enqueue(txn(2), vc(), 0));
    assert!(!core.enqueue(txn(3), vc(), 0));

    let (rounds, released) = drain(&mut core, 1);
    assert_eq!(rounds, vec![vec![txn(1)], vec![txn(2)], vec![txn(3)]]);
    assert_eq!(released, vec![txn(1), txn(2), txn(3)]);
    assert!(!core.in_flight(), "drained leader exits");
}

/// A leader dying after draining a round's batch leaves `in_flight` set, so
/// no second leader self-elects — but no queued work is lost: a successor
/// resuming the loop (production: the waiter-timeout path re-entering
/// confirmation) picks up everything enqueued during the outage plus the
/// dead leader's piggybacked release.
#[test]
fn leader_death_mid_round_loses_no_work() {
    let mut core: CoalescerCore<u8> = CoalescerCore::new();
    assert!(core.enqueue(txn(1), vc(), 0));
    let batch = match core.next_round(4, false) {
        RoundPlan::Round { batch, .. } => batch,
        plan => panic!("expected a round, got {plan:?}"),
    };
    assert_eq!(batch.len(), 1);
    // The round's acks arrive and its members complete...
    assert!(core
        .round_completed(batch.iter().map(|p| p.txn).collect(), true)
        .is_none());
    // ...but the leader dies before planning the release's carrier.
    // Committers arriving during the outage must NOT self-elect (the
    // leader flag is still set) — they enqueue and wait.
    assert!(core.in_flight());
    assert!(
        !core.enqueue(txn(2), vc(), 0),
        "no second leader mid-flight"
    );
    assert_eq!(core.pending_len(), 1);
    assert_eq!(core.pending_release_len(), 1);

    // A successor resuming the leader loop drains everything: the stranded
    // release rides the next round alongside the outage-era committer.
    let (rounds, released) = drain(&mut core, 4);
    assert_eq!(rounds, vec![vec![txn(2)]]);
    assert_eq!(released, vec![txn(1), txn(2)]);
    assert_eq!(core.pending_len() + core.pending_release_len(), 0);
}

/// A linger racing a late enqueue: the lingering leader's queue is
/// untouched by the linger decision, and the late arrival fills the window
/// the leader was waiting for.
#[test]
fn linger_keeps_the_queue_and_the_late_arrival_fills_the_window() {
    let mut core: CoalescerCore<u8> = CoalescerCore::new();
    assert!(core.enqueue(txn(1), vc(), 0));
    // Under-full window with may_linger: the leader pauses, queue intact.
    assert!(matches!(core.next_round(2, true), RoundPlan::Linger));
    assert_eq!(core.pending_len(), 1);
    assert!(core.in_flight(), "lingering keeps the leader flag");

    // The late enqueue lands during the linger and fills the window.
    assert!(!core.enqueue(txn(2), vc(), 0));
    match core.next_round(2, true) {
        RoundPlan::Round { batch, .. } => {
            let members: Vec<TxnId> = batch.iter().map(|p| p.txn).collect();
            assert_eq!(members, vec![txn(1), txn(2)], "the window filled");
            core.round_completed(members, true);
        }
        plan => panic!("a full window must round, got {plan:?}"),
    }
    let (rounds, released) = drain(&mut core, 2);
    assert!(rounds.is_empty());
    assert_eq!(released, vec![txn(1), txn(2)]);
}
