//! Epoch-grouped external-commit confirmation (the round coalescer).
//!
//! The base protocol runs one `ConfirmExternal` broadcast-and-ack round per
//! committed update transaction — the completion-order barrier that makes
//! client-observed completions match the serialization order (paper §III-C;
//! the §V priority discussion identifies this fan-out as the external-commit
//! cost center). The coalescer amortizes that round over a *coordinator
//! epoch*: one broadcast confirms every update transaction that pre-committed
//! on this node while the previous round was in flight (up to
//! [`crate::SssConfig::confirm_epoch_max`] per round), and the
//! `ReleaseExternal` / read-only `Remove` traffic of completed transactions
//! piggybacks inside the same envelope instead of travelling as dedicated
//! messages.
//!
//! # Self-clocking rounds, bounded linger
//!
//! The coalescer is *self-clocking*: the first committer to arrive while no
//! round is in flight becomes the **leader** and drives rounds until the
//! queue drains; committers arriving while a round is in flight enqueue and
//! wait for their round's result. An idle cluster therefore pays zero added
//! latency (a lone committer leads a singleton round immediately — exactly
//! the base protocol), while a loaded one amortizes one broadcast over the
//! whole window. Rounds on a fast network complete well before a window's
//! worth of committers can arrive, so between the rounds of one burst —
//! never before the first — the leader lingers for
//! [`crate::SssConfig::confirm_linger`] to let the next round fill (and to
//! give completed members' piggybacked releases a carrier). The wait for a
//! queued committer is therefore bounded by one in-flight round plus one
//! linger.
//!
//! Membership push and the leader's exit check run under the same lock, so a
//! committer either enqueues before the leader's final emptiness check (and
//! is covered by another round) or observes `in_flight == false` and leads
//! itself — no lost wakeups.
//!
//! # Why grouping is safe
//!
//! Grouping only *delays client responses*; it never advances them. Each
//! member's client is answered only after every node acknowledged a round
//! carrying the member's commit vector clock, so the base protocol's
//! guarantee — a transaction starting after the response, anywhere, begins
//! from a snapshot covering the member — holds per member exactly as in the
//! per-transaction rounds. Parked read-only reads are still released only
//! *after* their writer's round completed (the release rides the next round
//! or a standalone flush, both of which are sent only once the writer's
//! round collected all of its acks), so a release can never overtake its
//! confirmation at any node, even under fault-plan reordering. The
//! commit-queue ambiguity deferral and the snapshot pinning of read-only
//! transactions are decided entirely by vector clocks and queue contents,
//! which grouping does not alter.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sss_net::{reply_channel, Priority, ReplyReceiver, ReplySender, TransportExt};
use sss_storage::TxnId;
use sss_vclock::{NodeId, VectorClock};

use crate::coalescer::{round_id, CoalescerCore, RoundPlan};
use crate::messages::{Ack, SssMessage};

use super::SssNode;

/// Per-node grouped-confirmation state: the pure decision core
/// ([`CoalescerCore`], shared with the `sss-model` interleaving harness)
/// behind the node's coalescer mutex. The waiter payload is the reply
/// channel on which the round leader reports the outcome (`true` iff every
/// node acknowledged).
#[derive(Default)]
pub(crate) struct ConfirmCoalescer {
    state: Mutex<CoalescerCore<ReplySender<bool>>>,
}

impl ConfirmCoalescer {
    /// Crash-stop reset: drops every queued member (their waiters observe a
    /// dropped channel → a failed round → `ExternalCommitTimeout`, the
    /// degraded path committers already handle) and clears the leader flag
    /// so the next committer after restart leads a fresh round. A leader
    /// thread still looping against the old state simply drains to `Exit`;
    /// its stale `round_completed` call lands in the fresh core's release
    /// queue, which only re-releases transactions whose round already
    /// collected acks or timed out — the same failure-path release as the
    /// base protocol.
    pub(crate) fn reset(&self) {
        *self.state.lock() = CoalescerCore::default();
    }
}

impl SssNode {
    /// Runs the external-commit confirmation of `txn` through the grouped
    /// coalescer: enqueues it for the next round, leads rounds if no leader
    /// is active, and returns once a round carrying `txn` completed —
    /// `true` iff every node acknowledged that round.
    pub(crate) fn confirm_external_grouped(&self, txn: TxnId, commit_vc: VectorClock) -> bool {
        let (waiter, receiver) = reply_channel(1);
        let lead = self
            .confirm
            .state
            .lock()
            .enqueue(txn, Arc::new(commit_vc), waiter);
        if lead {
            self.run_confirm_rounds();
        }
        receiver
            .recv_timeout(self.config().ack_timeout)
            .unwrap_or(false)
    }

    /// Piggybacks the `Remove` of a completed read-only transaction on the
    /// next confirmation round if one is already in flight (the broadcast is
    /// a superset of the targeted multicast, and the leader is actively
    /// looping, so the delay is bounded by that round). Returns `false` when
    /// no round is in flight — the caller must send a targeted `Remove`
    /// immediately, because parking the remove on an idle coalescer would
    /// hold blocked writers toward their `precommit_hold_max`.
    pub(crate) fn queue_remove_on_next_round(&self, txn: TxnId) -> bool {
        self.confirm.state.lock().queue_remove(txn)
    }

    /// Leader loop: drives confirmation rounds until the queue (and the
    /// piggyback payloads) drain. Runs on the committing client's thread —
    /// never on a mailbox worker, which must not block on acks.
    fn run_confirm_rounds(&self) {
        let all_nodes = self.config().nodes;
        let window = self.config().confirm_epoch_max.max(1);
        let piggyback = self.config().piggyback;
        let linger = self.config().confirm_linger;
        // The leader lingers briefly between rounds of a burst (never before
        // its first round, so a lone committer on an idle coordinator pays
        // nothing): rounds complete much faster than transactions arrive, and
        // without the pause every round would carry only the one or two
        // commits that happened to land while the previous round was in
        // flight. The pause lets a window's worth of committers accumulate —
        // and gives completed members' piggybacked releases a carrier — at a
        // bounded, configurable latency cost for the queued members.
        let mut lingered = false;
        let mut first_round = true;
        loop {
            // Exit, linger, flush, or round: decided by the pure core under
            // the same lock as the membership pushes (see the `coalescer`
            // module docs for why the exit can never strand a member).
            let may_linger = !first_round && !lingered && !linger.is_zero();
            let plan = self.confirm.state.lock().next_round(window, may_linger);
            let (batch, release, remove) = match plan {
                RoundPlan::Exit => return,
                RoundPlan::Linger => {
                    sss_vclock::runtime::sleep(linger);
                    lingered = true;
                    continue;
                }
                RoundPlan::Flush { release, remove } => {
                    // The confirm queue drained but piggyback payloads
                    // remain: no carrier is coming, flush them standalone.
                    // Removes go first — they can unblock waiting external
                    // commits.
                    first_round = false;
                    lingered = false;
                    if !remove.is_empty() {
                        let _ = self.transport().multicast(
                            self.id(),
                            (0..all_nodes).map(NodeId),
                            SssMessage::Remove { txns: remove },
                            Priority::High,
                        );
                    }
                    if !release.is_empty() {
                        let _ = self.transport().multicast(
                            self.id(),
                            (0..all_nodes).map(NodeId),
                            SssMessage::ReleaseExternal { txns: release },
                            Priority::High,
                        );
                    }
                    continue;
                }
                RoundPlan::Round {
                    batch,
                    release,
                    remove,
                } => (batch, release, remove),
            };
            first_round = false;
            lingered = false;

            // The round id (used by the ack dedup on the handler side) is
            // the first member's transaction.
            let round = round_id(&batch).expect("a planned round has members");
            let entries: Vec<(TxnId, Arc<VectorClock>)> = batch
                .iter()
                .map(|p| (p.txn, Arc::clone(&p.commit_vc)))
                .collect();
            let (reply, receiver) = reply_channel(all_nodes);
            let confirm = SssMessage::ConfirmExternal {
                entries,
                release,
                remove,
                reply,
            };
            let sent = self
                .transport()
                .multicast(
                    self.id(),
                    (0..all_nodes).map(NodeId),
                    confirm,
                    Priority::High,
                )
                .is_ok();
            let ok =
                sent && collect_round_acks(&receiver, round, all_nodes, self.config().ack_timeout);

            // The round is complete and its members' clients are about to be
            // answered: their parked readers may now be released. On success
            // and failure alike (a timed-out confirmation must still release,
            // or readers would stay parked forever — same as the base
            // protocol's failure-path release). With piggybacking the release
            // rides the next round; without it, it is flushed immediately as
            // its own broadcast (the A/B arm isolating the grouping win).
            let members: Vec<TxnId> = batch.iter().map(|p| p.txn).collect();
            if let Some(now) = self
                .confirm
                .state
                .lock()
                .round_completed(members, piggyback)
            {
                let _ = self.transport().multicast(
                    self.id(),
                    (0..all_nodes).map(NodeId),
                    SssMessage::ReleaseExternal { txns: now },
                    Priority::High,
                );
            }
            for member in batch {
                member.waiter.send(ok);
            }
        }
    }
}

/// Collects the round's acknowledgements: one per distinct node, matching
/// the round id, within `timeout`.
fn collect_round_acks(
    receiver: &ReplyReceiver<Ack>,
    round: TxnId,
    expected: usize,
    timeout: Duration,
) -> bool {
    let deadline = sss_vclock::runtime::now() + timeout;
    let mut seen = vec![false; expected];
    let mut distinct = 0;
    while distinct < expected {
        let remaining = deadline.saturating_duration_since(sss_vclock::runtime::now());
        match receiver.recv_timeout(remaining) {
            Some(ack) if ack.txn == round => {
                let slot = ack.from.index();
                if slot < expected && !seen[slot] {
                    seen[slot] = true;
                    distinct += 1;
                }
            }
            Some(_) => continue,
            None => return false,
        }
    }
    true
}
