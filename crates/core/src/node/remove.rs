//! `Remove` handling and transitive forwarding (paper §III-C).

use sss_net::{Priority, Transport};
use sss_storage::TxnId;
use sss_vclock::NodeId;

use crate::messages::SssMessage;
use crate::stats::NodeCounters;

use super::SssNode;

impl SssNode {
    /// Handles `Remove[T..]`: deletes every snapshot-queue entry of the
    /// completed read-only transactions and releases any update transaction
    /// that was only waiting on them. Batches amortize the state lock and
    /// the unblock re-evaluation over the whole group.
    pub(super) fn handle_remove(&self, txns: Vec<TxnId>) {
        let mut state = self.state.lock();
        for txn in txns {
            NodeCounters::bump(&self.counters().removes_processed);
            // Remember the completion so that a propagated entry arriving
            // later (a Decide racing with this Remove) is suppressed instead
            // of blocking its writer forever.
            state.removed_ro.insert(txn);
            state.squeues.remove_txn_everywhere(txn);
        }
        self.release_unblocked_external_commits(&mut state);
    }

    /// Handles `RegisterForward[T, targets]` at the read-only transaction's
    /// coordinator node: either remembers the extra `Remove` targets or, if
    /// the transaction already returned to its client, forwards the `Remove`
    /// immediately.
    pub(super) fn handle_register_forward(&self, txn: TxnId, targets: Vec<NodeId>) {
        debug_assert_eq!(
            txn.origin,
            self.id(),
            "RegisterForward must be routed to the read-only transaction's origin"
        );
        let already_completed = {
            let mut state = self.state.lock();
            if state.completed_ro.contains(&txn) {
                true
            } else {
                state
                    .ro_forward_targets
                    .entry(txn)
                    .or_default()
                    .extend(targets.iter().copied());
                false
            }
        };
        if already_completed {
            for target in targets {
                let _ = self.transport().send(
                    self.id(),
                    target,
                    SssMessage::Remove { txns: vec![txn] },
                    Priority::High,
                );
            }
        }
    }
}
