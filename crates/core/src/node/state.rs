//! Mutable per-node protocol state.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use sss_net::ReplySender;
use sss_storage::{Key, RecentTxnSet, TxnId, Value};
use sss_vclock::{NodeId, VectorClock};

use crate::commit_queue::CommitQueue;
use crate::messages::{Ack, PropagatedEntry, ReadReturn};
use crate::nlog::NLog;
use crate::squeue::SnapshotQueues;

/// Information a participant keeps for a transaction between the 2PC
/// prepare and decide phases.
#[derive(Debug)]
pub(crate) struct PreparedTxn {
    /// Read keys replicated on this node (shared locks held).
    pub local_read_keys: Vec<Key>,
    /// Write-set entries replicated on this node (exclusive locks held).
    pub local_write_set: Vec<(Key, Value)>,
    /// `true` if this node replicates at least one written key.
    pub is_write_replica: bool,
    /// Decision payload, filled in when the `Decide` message arrives and
    /// consumed when the transaction reaches the head of the commit queue.
    pub decision: Option<DecisionInfo>,
}

/// The parts of a `Decide` message needed at internal-commit time.
#[derive(Debug)]
pub(crate) struct DecisionInfo {
    /// Read-only entries to propagate into the written keys' snapshot-queues
    /// (Algorithm 3 lines 4-6).
    pub propagated: Vec<PropagatedEntry>,
    /// Reply handle for the external-commit `Ack`.
    pub ack_reply: ReplySender<Ack>,
}

/// A read-only read waiting for the visibility condition of Algorithm 6
/// line 5 (`NLog.mostRecentVC[i] >= T.VC[i]`).
#[derive(Debug)]
pub(crate) struct PendingRead {
    pub txn: TxnId,
    pub key: Key,
    pub vc: VectorClock,
    pub has_read: Vec<bool>,
    /// Exclusion ceilings of the transaction's snapshot: the commit
    /// clocks of the writers excluded by the client's earlier reads,
    /// extended with the writers this read itself excluded. Version
    /// selection never returns a version whose commit clock dominates any
    /// of these.
    pub exclude: Vec<Arc<VectorClock>>,
    /// The ceilings *this* request discovered (a subset of `exclude`),
    /// preserved across deferrals and parks so the eventual `ReadReturn`
    /// still reports them to the client — later reads of the transaction
    /// on other nodes must keep filtering these writers.
    pub newly_excluded: Vec<Arc<VectorClock>>,
    /// `true` once a first read's `maxVC` has been computed and stored in
    /// `vc`: re-serving after a wait must reuse that bound instead of
    /// recomputing a fresh (ever-growing) one, or the read would chase
    /// newly committed writers forever under sustained write traffic.
    pub bound_pinned: bool,
    pub reply: ReplySender<ReadReturn>,
}

/// A read-only read whose selected version was produced by an update
/// transaction that has not yet *globally* externally committed. The read is
/// held until the writer's `ConfirmExternal` arrives, so that the value never
/// reaches a client before the writer's own client response — the
/// cross-node completion-order guarantee (paper §III-C).
#[derive(Debug)]
pub(crate) struct ParkedRead {
    /// The not-yet-confirmed writer the read is waiting for.
    pub writer: TxnId,
    /// The deferred read request.
    pub read: PendingRead,
}

/// An internally committed update transaction held in its Pre-Commit phase
/// by one or more read-only transactions (snapshot-queuing).
#[derive(Debug)]
pub(crate) struct WaitingExternal {
    pub txn: TxnId,
    /// Shared with the installed versions and snapshot-queue entries.
    pub commit_vc: Arc<VectorClock>,
    pub write_keys: Vec<Key>,
    pub ack_reply: ReplySender<Ack>,
    /// When the wait started; used for the latency-breakdown statistics.
    pub since: Instant,
}

/// All protocol state of one node that is protected by the node mutex.
#[derive(Debug)]
pub(crate) struct NodeState {
    /// `NodeVC` (paper §III-A).
    pub node_vc: VectorClock,
    /// Entry-wise maximum over the commit vector clocks of every update
    /// transaction whose *global* external commit has been confirmed to this
    /// node. Transactions beginning here start from at least this snapshot,
    /// which makes every already-completed update transaction visible to
    /// them regardless of which keys this node replicates.
    pub confirmed_vc: VectorClock,
    /// `NLog` (internal-commit repository).
    pub nlog: NLog,
    /// `CommitQ`.
    pub commit_q: CommitQueue,
    /// Snapshot-queues of locally stored keys.
    pub squeues: SnapshotQueues,
    /// 2PC bookkeeping between prepare and internal commit.
    pub prepared: HashMap<TxnId, PreparedTxn>,
    /// Read-only reads deferred by the visibility wait.
    pub pending_reads: Vec<PendingRead>,
    /// Read-only reads held until the writer of their selected version is
    /// globally externally committed.
    pub parked_reads: Vec<ParkedRead>,
    /// Update transactions held in their Pre-Commit phase.
    pub waiting_external: Vec<WaitingExternal>,
    /// Update transactions that externally committed *on this node* (their
    /// write entries left the snapshot-queues) but whose coordinator has not
    /// yet confirmed the global external commit. Versions written by these
    /// transactions are not returned to read-only transactions yet.
    pub pending_global: RecentTxnSet,
    /// Insertion order and time of the live `pending_global` entries, used
    /// by the staleness sweep (`expire_stale_pending_global`): an entry
    /// whose coordinator died after its confirmation round completed but
    /// before the (volatile) release went out would otherwise park readers
    /// forever. Entries released normally stay in the queue as harmless
    /// stale records until the sweep pops them (membership is re-checked
    /// against `pending_global` at expiry).
    pub pending_global_at: std::collections::VecDeque<(TxnId, std::time::Instant)>,
    /// Update transactions whose `ReleaseExternal` has been processed here.
    /// Guards against the ack-timeout race where the coordinator's release
    /// overtakes this node's own external-commit completion: a transaction
    /// already released must neither (re-)enter `pending_global` nor keep
    /// parking reads on its lingering write entries.
    pub released_external: RecentTxnSet,
    /// Read-only transactions whose `Remove` has been processed here.
    pub removed_ro: RecentTxnSet,
    /// Transactions whose abort `Decide` arrived before their `Prepare`
    /// (the high-priority decide can overtake the lower-priority prepare in
    /// the mailbox). A late prepare for one of these must vote negatively
    /// and must not enqueue, or the commit queue would be wedged forever.
    pub aborted_early: RecentTxnSet,
    /// Update transactions whose `ConfirmExternal` this node has already
    /// acknowledged; duplicate deliveries are merged but not re-acked (see
    /// `handle_confirm_external`).
    pub confirm_acked: RecentTxnSet,
    /// Every transaction this node has ever started preparing. The network
    /// may duplicate messages; re-running a `Prepare` would re-increment
    /// `NodeVC` and enqueue a second commit-queue entry that no `Decide`
    /// ever resolves, wedging the queue head. Duplicates are dropped
    /// against this set instead (the reliable channel guarantees the
    /// original copy's vote reaches the coordinator).
    pub prepared_ever: RecentTxnSet,
    /// Coordinator-side: extra `Remove` targets registered for read-only
    /// transactions that originated on this node.
    pub ro_forward_targets: HashMap<TxnId, HashSet<NodeId>>,
    /// Coordinator-side: read-only transactions originated here that have
    /// already completed (so late `RegisterForward`s are answered
    /// immediately).
    pub completed_ro: RecentTxnSet,
}

impl NodeState {
    pub(crate) fn new(node_index: usize, width: usize, nlog_capacity: usize) -> Self {
        NodeState {
            node_vc: VectorClock::new(width),
            confirmed_vc: VectorClock::new(width),
            nlog: NLog::new(width, nlog_capacity),
            commit_q: CommitQueue::new(node_index),
            squeues: SnapshotQueues::new(),
            prepared: HashMap::new(),
            pending_reads: Vec::new(),
            parked_reads: Vec::new(),
            waiting_external: Vec::new(),
            pending_global: RecentTxnSet::new(1 << 16),
            pending_global_at: std::collections::VecDeque::new(),
            released_external: RecentTxnSet::new(1 << 16),
            removed_ro: RecentTxnSet::new(1 << 16),
            aborted_early: RecentTxnSet::new(1 << 16),
            confirm_acked: RecentTxnSet::new(1 << 16),
            prepared_ever: RecentTxnSet::new(1 << 16),
            ro_forward_targets: HashMap::new(),
            completed_ro: RecentTxnSet::new(1 << 16),
        }
    }

    /// `true` if any written key of `write_keys` still has a read-only entry
    /// with an insertion-snapshot smaller than `sid` — the Pre-Commit wait
    /// condition of Algorithm 4.
    pub(crate) fn blocks_external_commit(&self, write_keys: &[Key], sid: u64) -> bool {
        write_keys.iter().any(|k| {
            self.squeues
                .get(k)
                .map(|q| crate::protocol::squeue_blocks_external_commit(q, sid))
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    #[test]
    fn external_commit_block_detection() {
        let mut state = NodeState::new(0, 2, 64);
        let x = Key::new("x");
        let y = Key::new("y");
        state.squeues.entry(&x).insert_read(txn(1), 5);
        assert!(state.blocks_external_commit(&[x.clone(), y.clone()], 8));
        assert!(!state.blocks_external_commit(std::slice::from_ref(&y), 8));
        assert!(!state.blocks_external_commit(&[x], 5));
    }
}
