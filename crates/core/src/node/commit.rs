//! Commit handling: Algorithms 1-4 (2PC prepare/decide, internal commit,
//! Pre-Commit and external commit).

use std::sync::Arc;

use sss_net::ReplySender;
use sss_storage::{Key, LockKind, TxnId, Value};
use sss_vclock::{NodeId, VectorClock};

use crate::messages::{Ack, PropagatedEntry, Vote};
use crate::stats::NodeCounters;

use super::state::{DecisionInfo, NodeState, PreparedTxn, WaitingExternal};
use super::SssNode;

impl SssNode {
    /// 2PC prepare phase at a participant (Algorithm 2, lines 1-15).
    pub(super) fn handle_prepare(
        &self,
        txn: TxnId,
        coordinator: NodeId,
        vc: VectorClock,
        read_set: Vec<(Key, Option<TxnId>)>,
        write_set: Vec<(Key, Value)>,
        reply: ReplySender<Vote>,
    ) {
        NodeCounters::bump(&self.counters().prepares);
        let i = self.id().index();
        let local_reads: Vec<(Key, Option<TxnId>)> = read_set
            .iter()
            .filter(|(k, _)| self.replica_map().is_replica(self.id(), k))
            .cloned()
            .collect();
        let local_read_keys: Vec<Key> = local_reads.iter().map(|(k, _)| k.clone()).collect();
        let local_write_set: Vec<(Key, Value)> = write_set
            .iter()
            .filter(|(k, _)| self.replica_map().is_replica(self.id(), k))
            .cloned()
            .collect();

        // If the coordinator already aborted this transaction (its negative
        // decide overtook this prepare), vote no and leave no trace.
        {
            let mut state = self.state.lock();
            if state.aborted_early.contains(&txn) {
                drop(state);
                NodeCounters::bump(&self.counters().votes_validation_failed);
                reply.send(Vote {
                    from: self.id(),
                    txn,
                    ok: false,
                    vc,
                });
                return;
            }
            // Duplicate delivery of a prepare already being (or already
            // done being) processed: drop it without voting — the original
            // copy's vote is guaranteed to arrive, and re-preparing would
            // wedge the commit queue with an undecidable second entry.
            if !state.prepared_ever.insert(txn) {
                return;
            }
        }

        // Lock acquisition happens before touching the protocol state so
        // that a contended key never stalls unrelated handlers.
        let requests = local_write_set
            .iter()
            .map(|(k, _)| (k, LockKind::Exclusive))
            .chain(local_read_keys.iter().map(|k| (k, LockKind::Shared)));
        if !self
            .lock_table()
            .acquire_many(txn, requests, self.config().lock_timeout)
        {
            NodeCounters::bump(&self.counters().votes_lock_failed);
            reply.send(Vote {
                from: self.id(),
                txn,
                ok: false,
                vc,
            });
            return;
        }

        // Validation (Algorithm 1 lines 27-33): "checking if the latest
        // version of a key matches the read one" (§III-B). The read-set
        // carries the writer of the version each read observed; if the key's
        // latest local version was produced by a different transaction, the
        // read has been overwritten (or was served by a lagging replica) and
        // the transaction must abort. The vector-clock bound check of the
        // pseudocode is kept as well.
        //
        // Validation runs *before* taking the state lock: the shared locks
        // acquired above pin every read key's latest version (an installer
        // would need the exclusive lock), so the sharded store can be read
        // concurrently by every preparing worker. The one way the pin can
        // break — this transaction's own abort decide racing in and
        // releasing the locks — is caught by the `aborted_early` re-check
        // below, which votes no regardless of what was validated here
        // (the tombstone is inserted before the decide releases any lock).
        let stale = local_reads.iter().find(|(k, observed_writer)| {
            let latest = self.store().last(k);
            let latest_writer = latest.as_ref().map(|v| v.writer);
            latest_writer != *observed_writer
                || latest.map(|v| v.vc.get(i)).unwrap_or(0) > vc.get(i)
        });
        if stale.is_some() {
            self.lock_table().release_all(txn);
            NodeCounters::bump(&self.counters().votes_validation_failed);
            reply.send(Vote {
                from: self.id(),
                txn,
                ok: false,
                vc,
            });
            return;
        }

        let mut state = self.state.lock();

        // Re-check under the state lock: the abort decision may have been
        // processed while this handler was acquiring key locks (or while it
        // was validating against possibly-released locks, see above).
        if state.aborted_early.contains(&txn) {
            drop(state);
            self.lock_table().release_all(txn);
            NodeCounters::bump(&self.counters().votes_validation_failed);
            reply.send(Vote {
                from: self.id(),
                txn,
                ok: false,
                vc,
            });
            return;
        }

        let is_write_replica = !local_write_set.is_empty();
        let prep_vc = if is_write_replica {
            // NodeVC[i]++ and enqueue as pending (Algorithm 2 lines 8-12).
            state.node_vc.increment(i);
            let proposed = state.node_vc.clone();
            state.commit_q.put(txn, proposed.clone());
            proposed
        } else {
            state.nlog.most_recent_vc().clone()
        };
        // The coordinator identity is implicit in the reply handles, so the
        // prepared record only needs the locally stored key subsets.
        let _ = coordinator;
        state.prepared.insert(
            txn,
            PreparedTxn {
                local_read_keys,
                local_write_set,
                is_write_replica,
                decision: None,
            },
        );
        drop(state);

        NodeCounters::bump(&self.counters().votes_ok);
        reply.send(Vote {
            from: self.id(),
            txn,
            ok: true,
            vc: prep_vc,
        });
    }

    /// 2PC decide phase at a participant (Algorithm 2, lines 16-28).
    pub(super) fn handle_decide(
        &self,
        txn: TxnId,
        commit_vc: VectorClock,
        outcome: bool,
        propagated: Vec<PropagatedEntry>,
        ack_reply: ReplySender<Ack>,
    ) {
        if !outcome {
            let mut state = self.state.lock();
            if state.prepared.remove(&txn).is_none() {
                // The abort decision overtook the prepare (the coordinator
                // gave up before our vote). Remember it so the late prepare
                // votes negatively instead of enqueuing a transaction whose
                // decision will never arrive again.
                state.aborted_early.insert(txn);
            }
            state.commit_q.remove(txn);
            // Removing the aborted transaction may expose a ready transaction
            // at the head of the commit queue; drive it now rather than
            // waiting for the next decide to arrive.
            self.process_commit_queue(&mut state);
            drop(state);
            self.lock_table().release_all(txn);
            return;
        }

        let mut state = self.state.lock();
        state.node_vc.merge(&commit_vc);
        let Some(prep) = state.prepared.get_mut(&txn) else {
            // Duplicate or stray decide: nothing to do.
            return;
        };
        if prep.is_write_replica {
            prep.decision = Some(DecisionInfo {
                propagated,
                ack_reply,
            });
            state.commit_q.update(txn, commit_vc);
            self.process_commit_queue(&mut state);
            drop(state);
        } else {
            let prep = state
                .prepared
                .remove(&txn)
                .expect("prepared entry disappeared under the state lock");
            drop(state);
            // Pure read participants only release their shared locks
            // (Algorithm 2 line 22); they do not take part in the external
            // commit acknowledgement.
            self.lock_table()
                .release_keys(txn, prep.local_read_keys.iter());
        }
    }

    /// "Upon head of CommitQ is ready" (Algorithm 2, lines 29-36), followed
    /// by the Pre-Commit phase (Algorithms 3 and 4).
    pub(super) fn process_commit_queue(&self, state: &mut NodeState) {
        let i = self.id().index();
        while let Some(entry) = state.commit_q.pop_ready_head() {
            let txn = entry.txn;
            // One shared clock per transaction: the store versions, the
            // NLog record, the snapshot-queue write entries and the
            // Pre-Commit wait record below all hold the same `Arc`.
            let commit_vc = Arc::new(entry.vc);
            let prep = state
                .prepared
                .remove(&txn)
                .expect("ready transaction must have a prepared record");
            let decision = prep
                .decision
                .expect("ready transaction must carry its decision");

            // Internal commit: install the written versions and log the
            // commit vector clock; the new versions become visible to other
            // transactions even though the client has not been answered yet.
            // (Still under the state lock so that the store never lags the
            // NLog: readers check the NLog/commit-queue under the state
            // lock and must then find every covered version installed.)
            for (key, value) in &prep.local_write_set {
                self.store()
                    .apply(key.clone(), value.clone(), Arc::clone(&commit_vc), txn);
            }
            state.nlog.add(txn, Arc::clone(&commit_vc));
            NodeCounters::bump(&self.counters().internal_commits);
            self.lock_table().release_all(txn);

            // Pre-Commit (Algorithm 3): leave a write trace in the
            // snapshot-queues of the written keys and propagate the
            // read-only entries observed during execution.
            let write_keys: Vec<Key> = prep
                .local_write_set
                .iter()
                .map(|(k, _)| k.clone())
                .collect();
            {
                let st = &mut *state;
                for key in &write_keys {
                    let queue = st.squeues.entry(key);
                    queue.insert_write(txn, commit_vc.get(i), Arc::clone(&commit_vc));
                    for entry in &decision.propagated {
                        if !st.removed_ro.contains(&entry.txn) {
                            queue.insert_read(entry.txn, entry.sid);
                        }
                    }
                }
            }

            // External commit check (Algorithm 4): acknowledge immediately
            // if no concurrent read-only transaction with a smaller
            // insertion-snapshot holds any written key, otherwise wait for
            // the Remove messages.
            let waiting = WaitingExternal {
                txn,
                commit_vc,
                write_keys,
                ack_reply: decision.ack_reply,
                since: sss_vclock::runtime::now(),
            };
            if state.blocks_external_commit(&waiting.write_keys, waiting.commit_vc.get(i)) {
                NodeCounters::bump(&self.counters().external_commit_waits);
                state.waiting_external.push(waiting);
            } else {
                self.complete_external_commit(state, waiting);
            }
        }

        // The NLog advanced and/or commit-queue entries left the queue
        // (applied or aborted): deferred read-only reads may now be
        // serviceable. This runs even when nothing popped, because an abort
        // removal alone can clear the commit-queue ambiguity a read is
        // deferred on.
        self.drain_pending_reads(state);

        // Traffic-driven re-evaluation of held transactions, so that the
        // bounded Pre-Commit hold elapses without requiring a `Remove` to
        // arrive (wait-cycle breaking; see `release_unblocked_external_commits`).
        self.release_unblocked_external_commits(state);
    }

    /// Finishes the Pre-Commit phase of one transaction: removes its write
    /// entries from the snapshot-queues and acknowledges the coordinator.
    pub(super) fn complete_external_commit(&self, state: &mut NodeState, waiting: WaitingExternal) {
        // The transaction is externally committed *here*, but other write
        // replicas may still be waiting; keep read-only transactions from
        // returning its versions until the coordinator confirms the global
        // external commit. If the coordinator's `ReleaseExternal` already
        // arrived (it gave up on a timed-out ack round), the entry must not
        // be re-created — no second release will ever clear it.
        if !state.released_external.contains(&waiting.txn) {
            state.pending_global.insert(waiting.txn);
            state
                .pending_global_at
                .push_back((waiting.txn, sss_vclock::runtime::now()));
        }
        state
            .squeues
            .remove_write_entries(waiting.txn, waiting.write_keys.iter());
        NodeCounters::add(
            &self.counters().precommit_wait_nanos,
            sss_vclock::runtime::now()
                .saturating_duration_since(waiting.since)
                .as_nanos() as u64,
        );
        waiting.ack_reply.send(Ack {
            from: self.id(),
            txn: waiting.txn,
        });
    }

    /// Re-evaluates every transaction held in its Pre-Commit phase; called
    /// after `Remove` messages clear snapshot-queue entries and periodically
    /// from other message handlers. A transaction that has been held longer
    /// than `precommit_hold_max` is completed even if blocking read entries
    /// remain (see the config field for why this is sound).
    pub(super) fn release_unblocked_external_commits(&self, state: &mut NodeState) {
        let i = self.id().index();
        let hold_max = self.config().precommit_hold_max;
        // Through `runtime::now`, not `Instant::elapsed`: `since` is a
        // virtual instant under simulation, and measuring it against the
        // real clock would make the hold decision wall-clock-dependent
        // (breaking seeded replay).
        let now = sss_vclock::runtime::now();
        let waiting = std::mem::take(&mut state.waiting_external);
        for w in waiting {
            if now.saturating_duration_since(w.since) < hold_max
                && state.blocks_external_commit(&w.write_keys, w.commit_vc.get(i))
            {
                state.waiting_external.push(w);
            } else {
                self.complete_external_commit(state, w);
            }
        }
    }
}
