//! The server side of the SSS protocol: one [`SssNode`] per cluster node.
//!
//! A node owns its protocol state ([`state::NodeState`]) behind a mutex, a
//! [`LockTable`] used during the 2PC prepare phase, and a handle to the
//! cluster [`ChannelTransport`]. All interaction with other nodes goes
//! through messages; a node never touches another node's state.
//!
//! Handlers are non-blocking: protocol waits are represented as deferred
//! work re-evaluated when the relevant state changes —
//!
//! * the read visibility wait (Algorithm 6 line 5) parks the request in
//!   `pending_reads` and is re-checked after every internal commit,
//! * the Pre-Commit wait (Algorithm 4) parks the transaction in
//!   `waiting_external` and is re-checked after every `Remove`.

mod commit;
mod confirm;
mod read;
mod remove;
mod state;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sss_net::{reply_channel, ChannelTransport, Envelope, NodeService, Priority, TransportExt};
use sss_storage::{Key, LockTable, MvStore, ReplicaMap, TxnId};
use sss_vclock::{NodeId, VectorClock};

use crate::config::SssConfig;
use crate::messages::SssMessage;
use crate::stats::{NodeCounters, NodeStats};

pub(crate) use state::NodeState;

/// One logical SSS server node.
///
/// Nodes are created by [`SssCluster::start`](crate::SssCluster::start); the
/// public surface exposed here is limited to identification and statistics —
/// clients interact with the cluster through
/// [`Session`](crate::Session)s.
pub struct SssNode {
    id: NodeId,
    config: SssConfig,
    replicas: ReplicaMap,
    transport: Arc<ChannelTransport<SssMessage>>,
    state: Mutex<NodeState>,
    /// Multi-version data repository. Sharded and internally synchronized,
    /// held *outside* the state mutex: prepare-phase validation reads it
    /// concurrently from every worker (the 2PC locks pin the validated
    /// versions), while handlers that hold the state mutex read and write
    /// it with only an uncontended per-shard lock on top.
    store: MvStore,
    locks: LockTable,
    counters: NodeCounters,
    next_txn_seq: AtomicU64,
    /// Epoch-grouped external-commit confirmation state (see
    /// [`confirm`] module docs); used when `config.confirm_epoch_max > 1`.
    confirm: confirm::ConfirmCoalescer,
    /// `false` while the node is inside a crash window or restarted but not
    /// yet recovered from its peers. Colocated clients consult this before
    /// starting work and degrade to
    /// [`SssError::NodeUnavailable`](crate::SssError::NodeUnavailable)
    /// after bounded retries.
    available: AtomicBool,
}

impl SssNode {
    pub(crate) fn new(
        id: NodeId,
        config: SssConfig,
        transport: Arc<ChannelTransport<SssMessage>>,
    ) -> Self {
        let replicas = config.replica_map();
        let state = NodeState::new(id.index(), config.nodes, config.nlog_capacity);
        SssNode {
            id,
            replicas,
            transport,
            state: Mutex::new(state),
            store: MvStore::with_shards(config.storage_shards),
            locks: LockTable::with_shards(config.storage_shards),
            counters: NodeCounters::default(),
            next_txn_seq: AtomicU64::new(0),
            confirm: confirm::ConfirmCoalescer::default(),
            available: AtomicBool::new(true),
            config,
        }
    }

    /// `true` while the node serves colocated clients (not crashed and not
    /// mid-recovery).
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::Acquire)
    }

    /// Crash-stop: wipes the node's *volatile* protocol state and marks the
    /// node unavailable. Called by the cluster's crash hook right after the
    /// mailbox was purged.
    ///
    /// The durable/volatile split mirrors classic 2PC write-ahead logging —
    /// what a real node would have forced to its log (and its data files)
    /// before answering survives; everything else is in-memory bookkeeping
    /// a restart legitimately forgets:
    ///
    /// * **Durable**: the store's versions and the lock table (installed
    ///   data and prepare records), `prepared` / `commit_q` / `nlog` /
    ///   `node_vc` (prepare and commit records), the idempotency sets
    ///   (`prepared_ever` etc. — replay guards a WAL recovery rebuilds) and
    ///   the transaction-id counter.
    /// * **Volatile**: deferred and parked reads (their reply channels die
    ///   with the process; with reliable delivery the *requests* are
    ///   retransmitted and served after restart), Pre-Commit holds
    ///   (`waiting_external` — the coordinator's ack times out, the
    ///   degraded path it already handles), the snapshot-queues and forward
    ///   targets (read-only bookkeeping), the confirmation coalescer
    ///   (pending waiters observe a failed round), and `confirmed_vc` —
    ///   re-learned from peers by [`SssNode::recover_from_peers`] before
    ///   the node comes back available.
    pub(crate) fn on_crash(&self) {
        self.available.store(false, Ordering::Release);
        let mut state = self.state.lock();
        state.pending_reads.clear();
        state.parked_reads.clear();
        state.waiting_external.clear();
        state.squeues = crate::squeue::SnapshotQueues::new();
        state.ro_forward_targets.clear();
        state.confirmed_vc = VectorClock::new(self.config.nodes);
        drop(state);
        self.confirm.reset();
    }

    /// Recovery round: re-learns the confirmed snapshot from peers via
    /// `StateQuery`/`StateReply`, then marks the node available again.
    /// Called by the cluster's restart hook on a dedicated task (never on a
    /// mailbox worker — the round blocks on replies).
    ///
    /// Waits up to `config.recovery_timeout` for every peer; peers that are
    /// themselves down simply do not answer in time, and the node comes
    /// back with whatever subset it merged (the same guarantee degradation
    /// as a confirmation-round timeout).
    pub(crate) fn recover_from_peers(&self) {
        let peers: Vec<NodeId> = (0..self.config.nodes)
            .map(NodeId)
            .filter(|n| *n != self.id)
            .collect();
        if !peers.is_empty() {
            let (reply, receiver) = reply_channel(peers.len());
            let sent = self
                .transport
                .multicast(
                    self.id,
                    peers.iter().copied(),
                    SssMessage::StateQuery { reply },
                    Priority::High,
                )
                .is_ok();
            if sent {
                let deadline = sss_vclock::runtime::now() + self.config.recovery_timeout;
                let mut merged = VectorClock::new(self.config.nodes);
                let mut seen = vec![false; self.config.nodes];
                let mut distinct = 0;
                while distinct < peers.len() {
                    let remaining = deadline.saturating_duration_since(sss_vclock::runtime::now());
                    match receiver.recv_timeout(remaining) {
                        Some(answer) => {
                            let slot = answer.from.index();
                            if slot < seen.len() && !seen[slot] {
                                seen[slot] = true;
                                distinct += 1;
                            }
                            merged.merge(&answer.vc);
                        }
                        None => break,
                    }
                }
                self.state.lock().confirmed_vc.merge(&merged);
            }
        }
        self.available.store(true, Ordering::Release);
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Snapshot of this node's protocol counters.
    pub fn stats(&self) -> NodeStats {
        self.counters.snapshot()
    }

    /// Number of entries currently stored across this node's
    /// snapshot-queues (diagnostic; should converge to zero when idle).
    pub fn snapshot_queue_entries(&self) -> usize {
        self.state.lock().squeues.total_entries()
    }

    /// Number of update transactions currently held in their Pre-Commit
    /// phase on this node.
    pub fn waiting_external_commits(&self) -> usize {
        self.state.lock().waiting_external.len()
    }

    /// Number of versions currently retained by this node's store.
    pub fn retained_versions(&self) -> usize {
        self.store.retained_versions()
    }

    /// Snapshot of this node's storage-layer counters (multi-version store
    /// and lock table, with per-shard contention breakdowns).
    pub fn storage_stats(&self) -> sss_storage::StorageStats {
        sss_storage::StorageStats {
            mv: Some(self.store.stats()),
            sv: None,
            locks: Some(self.locks.stats()),
        }
    }

    pub(crate) fn config(&self) -> &SssConfig {
        &self.config
    }

    pub(crate) fn replica_map(&self) -> &ReplicaMap {
        &self.replicas
    }

    pub(crate) fn transport(&self) -> &Arc<ChannelTransport<SssMessage>> {
        &self.transport
    }

    pub(crate) fn counters(&self) -> &NodeCounters {
        &self.counters
    }

    pub(crate) fn lock_table(&self) -> &LockTable {
        &self.locks
    }

    pub(crate) fn store(&self) -> &MvStore {
        &self.store
    }

    /// Allocates a fresh transaction identifier originating on this node.
    pub(crate) fn next_txn_id(&self) -> TxnId {
        TxnId::new(self.id, self.next_txn_seq.fetch_add(1, Ordering::Relaxed))
    }

    /// The vector clock a transaction beginning on this node starts from:
    /// `NLog.mostRecentVC` (Algorithm 5 line 6) merged with the node's
    /// `confirmed_vc`, so the initial snapshot covers every update
    /// transaction whose client response has already been delivered
    /// anywhere in the cluster.
    pub(crate) fn begin_vc(&self) -> VectorClock {
        let state = self.state.lock();
        state.nlog.most_recent_vc().merged(&state.confirmed_vc)
    }

    /// Called by a colocated client when its read-only transaction returns:
    /// marks the transaction completed and sends `Remove` to every node that
    /// may hold one of its snapshot-queue entries (replicas of the read keys
    /// plus any registered forward targets, §III-C).
    pub(crate) fn finish_read_only(&self, txn: TxnId, read_keys: &[Key]) {
        let extra: Vec<NodeId> = {
            let mut state = self.state.lock();
            state.completed_ro.insert(txn);
            state
                .ro_forward_targets
                .remove(&txn)
                .map(|set| set.into_iter().collect())
                .unwrap_or_default()
        };
        // Piggyback (round-reduction optimisation): when a grouped
        // confirmation round is already in flight, the `Remove` rides its
        // broadcast — which covers every node, a superset of the targeted
        // multicast — instead of travelling as dedicated messages. Bounded
        // delay: the leader is actively looping, so the remove is sent at
        // the next round boundary.
        if self.config.confirm_epoch_max > 1
            && self.config.piggyback
            && self.queue_remove_on_next_round(txn)
        {
            return;
        }
        let mut targets = self.replicas.replicas_of_all(read_keys.iter());
        targets.extend(extra);
        targets.sort();
        targets.dedup();
        let _ = self.transport.multicast(
            self.id,
            targets,
            SssMessage::Remove { txns: vec![txn] },
            Priority::High,
        );
    }

    /// Garbage-collects old versions on this node, keeping the configured
    /// number of versions per key. Returns how many versions were dropped.
    /// The store is internally synchronized, so collection runs without
    /// taking the node's protocol-state mutex.
    pub fn collect_garbage(&self) -> usize {
        self.store.prune_all(self.config.versions_per_key)
    }

    /// Human-readable dump of the transactions currently held in their
    /// Pre-Commit phase on this node and of the snapshot-queue entries
    /// blocking them. Intended for debugging and operational visibility.
    pub fn pending_external_report(&self) -> String {
        let state = self.state.lock();
        let mut out = String::new();
        if !state.commit_q.is_empty() {
            let entries: Vec<String> = state
                .commit_q
                .entries()
                .iter()
                .map(|e| format!("{}:{:?}@{}", e.txn, e.status, e.vc.get(self.id.index())))
                .collect();
            out.push_str(&format!(
                "{}: CommitQ = [{}]\n",
                self.id,
                entries.join(", ")
            ));
        }
        for waiting in &state.waiting_external {
            let sid = waiting.commit_vc.get(self.id.index());
            out.push_str(&format!(
                "{}: txn {} waiting {:?} (sid {}) on keys:",
                self.id,
                waiting.txn,
                sss_vclock::runtime::now().saturating_duration_since(waiting.since),
                sid
            ));
            for key in &waiting.write_keys {
                if let Some(queue) = state.squeues.get(key) {
                    let blockers: Vec<String> = queue
                        .reads()
                        .iter()
                        .filter(|r| r.sid < sid)
                        .map(|r| format!("{}@{}", r.txn, r.sid))
                        .collect();
                    if !blockers.is_empty() {
                        out.push_str(&format!(" {key}=[{}]", blockers.join(",")));
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

impl NodeService<SssMessage> for SssNode {
    fn handle(&self, envelope: Envelope<SssMessage>) {
        if let Some(scheduler) = sss_vclock::runtime::current() {
            if scheduler.tracing() {
                let mut line = format!("{}<-{} {:?}", envelope.to, envelope.from, envelope.payload);
                line.truncate(400);
                scheduler.trace(&line);
            }
        }
        match envelope.payload {
            SssMessage::ReadRequest {
                txn,
                key,
                vc,
                has_read,
                exclude,
                is_update,
                reply,
            } => self.handle_read_request(txn, key, vc, has_read, exclude, is_update, reply),
            SssMessage::Prepare {
                txn,
                coordinator,
                vc,
                read_set,
                write_set,
                reply,
            } => self.handle_prepare(txn, coordinator, vc, read_set, write_set, reply),
            SssMessage::Decide {
                txn,
                commit_vc,
                outcome,
                propagated,
                ack_reply,
            } => self.handle_decide(txn, commit_vc, outcome, propagated, ack_reply),
            SssMessage::Remove { txns } => self.handle_remove(txns),
            SssMessage::RegisterForward { txn, targets } => {
                self.handle_register_forward(txn, targets)
            }
            SssMessage::ConfirmExternal {
                entries,
                release,
                remove,
                reply,
            } => self.handle_confirm_external(entries, release, remove, reply),
            SssMessage::ReleaseExternal { txns } => self.handle_release_external(txns),
            SssMessage::StateQuery { reply } => {
                // Recovery round: answer with this node's begin snapshot so
                // the restarting peer's `confirmed_vc` covers every update
                // transaction this node knows to be globally confirmed.
                let vc = self.begin_vc();
                reply.send(crate::messages::StateReply { from: self.id, vc });
            }
        }
    }
}

impl std::fmt::Debug for SssNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SssNode")
            .field("id", &self.id)
            .field("nodes", &self.config.nodes)
            .field("replication", &self.config.replication)
            .finish()
    }
}
