//! Read handling: Algorithm 6 (version selection logic in node `Ni`).

use sss_net::ReplySender;
use sss_storage::{Key, TxnId};
use sss_vclock::VectorClock;

use crate::messages::{PropagatedEntry, ReadReturn};
use crate::stats::NodeCounters;

use super::state::{NodeState, PendingRead};
use super::SssNode;

impl SssNode {
    /// Entry point for `READREQUEST` messages.
    pub(super) fn handle_read_request(
        &self,
        txn: TxnId,
        key: Key,
        vc: VectorClock,
        has_read: Vec<bool>,
        is_update: bool,
        reply: ReplySender<ReadReturn>,
    ) {
        let i = self.id().index();
        let mut state = self.state.lock();
        if is_update {
            // Update transactions "simply return the most recent version of
            // their requested keys" (§III-B); the snapshot-queue's read-only
            // entries are returned as the PropagatedSet (Algorithm 6 l. 24-26).
            let response = Self::serve_update_read(&state, self.id(), &key);
            NodeCounters::bump(&self.counters().reads_served);
            drop(state);
            reply.send(response);
            return;
        }

        // Starvation admission control (§III-E): if this read would
        // serialize before an update transaction that has already been held
        // in the key's snapshot-queue for a while, back off briefly so the
        // writer gets a chance to commit externally instead of being starved
        // by an endless chain of read-only transactions.
        let mut backoff = self.config().admission_backoff;
        let mut retries = 0;
        while retries < self.config().admission_max_retries {
            let aged_writer = state
                .squeues
                .get(&key)
                .map(|q| q.has_aged_writer_beyond(vc.get(i), self.config().admission_threshold))
                .unwrap_or(false);
            if !aged_writer {
                break;
            }
            drop(state);
            std::thread::sleep(backoff);
            backoff *= 2;
            retries += 1;
            state = self.state.lock();
        }

        let first_read_here = !has_read[i];
        if first_read_here && state.nlog.most_recent_vc().get(i) < vc.get(i) {
            // Algorithm 6 line 5: transactions already included in T.VC[i]
            // must internally commit before this read can be served. Defer.
            NodeCounters::bump(&self.counters().reads_deferred);
            state.pending_reads.push(PendingRead {
                txn,
                key,
                vc,
                has_read,
                reply,
            });
            return;
        }
        let response = self.serve_read_only_read(&mut state, txn, &key, &vc, &has_read);
        NodeCounters::bump(&self.counters().reads_served);
        drop(state);
        reply.send(response);
    }

    /// Serves deferred read-only reads whose visibility condition became
    /// true after an internal commit advanced the `NLog`.
    pub(super) fn drain_pending_reads(&self, state: &mut NodeState) {
        let i = self.id().index();
        let ready: Vec<PendingRead> = {
            let most_recent = state.nlog.most_recent_vc().clone();
            let (ready, still): (Vec<_>, Vec<_>) = state
                .pending_reads
                .drain(..)
                .partition(|p| most_recent.get(i) >= p.vc.get(i));
            state.pending_reads = still;
            ready
        };
        for pending in ready {
            let response =
                self.serve_read_only_read(state, pending.txn, &pending.key, &pending.vc, &pending.has_read);
            NodeCounters::bump(&self.counters().reads_served);
            pending.reply.send(response);
        }
    }

    /// Algorithm 6, read-only path.
    fn serve_read_only_read(
        &self,
        state: &mut NodeState,
        txn: TxnId,
        key: &Key,
        vc: &VectorClock,
        has_read: &[bool],
    ) -> ReadReturn {
        let i = self.id().index();
        let first_read_here = !has_read[i];

        // Step 1: establish maxVC and the set of excluded writers.
        let (max_vc, excluded_writers) = if first_read_here {
            // Update transactions still in their Pre-Commit phase whose
            // insertion-snapshot is beyond the transaction's visibility
            // bound must be excluded (lines 7-8): serializing the reader
            // before them is what guarantees a unique external schedule for
            // non-conflicting writers (the Adya cross-node anomaly).
            let (excluded_vcs, excluded_writers): (Vec<VectorClock>, Vec<TxnId>) = state
                .squeues
                .get(key)
                .map(|q| {
                    q.writes()
                        .iter()
                        .filter(|w| w.sid > vc.get(i))
                        .map(|w| (w.commit_vc.clone(), w.txn))
                        .unzip()
                })
                .unwrap_or_default();
            let max_vc = state.nlog.visible_max(has_read, vc, &excluded_vcs);
            (max_vc, excluded_writers)
        } else {
            // Subsequent read on this node: the bound is the transaction's
            // own vector clock (lines 16-21).
            (vc.clone(), Vec::new())
        };

        // Step 2: leave a trace in the key's snapshot-queue (lines 10/17).
        //
        // Exception: if this transaction's `Remove` has already been
        // processed on this node, the transaction has returned to its client
        // and this request is a stale duplicate (the fastest replica won the
        // race and a high-priority `Remove` overtook this lower-priority
        // read). Enqueuing now would leave an entry no future `Remove` will
        // ever clear, permanently blocking writers of this key.
        if !state.removed_ro.contains(&txn) {
            state.squeues.entry(key).insert_read(txn, max_vc.get(i));
        }

        // Step 3: walk the version chain newest-to-oldest (lines 11-14 /
        // 18-21) and pick the most recent version within the bound.
        let selected = state.store.chain(key).and_then(|chain| {
            chain
                .latest_matching(|ver| {
                    let within_bound = has_read
                        .iter()
                        .enumerate()
                        .all(|(w, read)| !*read || ver.vc.get(w) <= max_vc.get(w));
                    let excluded = excluded_writers.contains(&ver.writer)
                        && ver.vc.get(i) > max_vc.get(i);
                    within_bound && !excluded
                })
                .map(|ver| (ver.value.clone(), ver.writer))
        });
        let (value, writer) = match selected {
            Some((value, writer)) => (Some(value), Some(writer)),
            None => (None, None),
        };

        ReadReturn {
            from: self.id(),
            value,
            writer,
            vc: max_vc,
            propagated: Vec::new(),
        }
    }

    /// Algorithm 6, update-transaction path (lines 23-27).
    fn serve_update_read(state: &NodeState, from: sss_vclock::NodeId, key: &Key) -> ReadReturn {
        let max_vc = state.nlog.most_recent_vc().clone();
        let propagated: Vec<PropagatedEntry> = state
            .squeues
            .get(key)
            .map(|q| {
                q.reads()
                    .iter()
                    .map(|r| PropagatedEntry {
                        txn: r.txn,
                        sid: r.sid,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let last = state.store.last(key);
        ReadReturn {
            from,
            value: last.map(|v| v.value.clone()),
            writer: last.map(|v| v.writer),
            vc: max_vc,
            propagated,
        }
    }
}
