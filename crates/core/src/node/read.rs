//! Read handling: Algorithm 6 (version selection logic in node `Ni`).

use sss_net::ReplySender;
use sss_storage::{Key, TxnId};
use sss_vclock::VectorClock;

use crate::messages::{PropagatedEntry, ReadReturn};
use crate::stats::NodeCounters;

use super::state::{NodeState, ParkedRead, PendingRead};
use super::SssNode;

impl SssNode {
    /// Entry point for `READREQUEST` messages.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn handle_read_request(
        &self,
        txn: TxnId,
        key: Key,
        vc: VectorClock,
        has_read: Vec<bool>,
        exclude: Vec<std::sync::Arc<VectorClock>>,
        is_update: bool,
        reply: ReplySender<ReadReturn>,
    ) {
        let i = self.id().index();
        let mut state = self.state.lock();
        if is_update {
            // Update transactions "simply return the most recent version of
            // their requested keys" (§III-B); the snapshot-queue's read-only
            // entries are returned as the PropagatedSet (Algorithm 6 l. 24-26).
            let response = self.serve_update_read(&state, &key);
            NodeCounters::bump(&self.counters().reads_served);
            drop(state);
            reply.send(response);
            return;
        }

        // Starvation admission control (§III-E): if this read would
        // serialize before an update transaction that has already been held
        // in the key's snapshot-queue for a while, back off briefly so the
        // writer gets a chance to commit externally instead of being starved
        // by an endless chain of read-only transactions.
        let mut backoff = self.config().admission_backoff;
        let mut retries = 0;
        while retries < self.config().admission_max_retries {
            let aged_writer = state
                .squeues
                .get(&key)
                .map(|q| q.has_aged_writer_beyond(vc.get(i), self.config().admission_threshold))
                .unwrap_or(false);
            if !aged_writer {
                break;
            }
            drop(state);
            sss_vclock::runtime::sleep(backoff);
            backoff *= 2;
            retries += 1;
            state = self.state.lock();
        }

        // If a writer of this key has been held past the bounded Pre-Commit
        // hold, complete it now: read traffic alone must be able to break a
        // wait cycle (see `release_unblocked_external_commits`).
        if state
            .squeues
            .get(&key)
            .map(|q| q.has_aged_writer_beyond(0, self.config().precommit_hold_max))
            .unwrap_or(false)
        {
            self.release_unblocked_external_commits(&mut state);
        }

        // Same traffic-driven pattern for the other unbounded hold: a
        // `pending_global` entry whose coordinator crashed before the
        // release went out must not park this (and every retried) read
        // forever.
        self.expire_stale_pending_global(&mut state);

        let first_read_here = !has_read[i];
        if first_read_here && state.nlog.most_recent_vc().get(i) < vc.get(i) {
            // Algorithm 6 line 5: transactions already included in T.VC[i]
            // must internally commit before this read can be served. Defer.
            NodeCounters::bump(&self.counters().reads_deferred);
            state.pending_reads.push(PendingRead {
                txn,
                key,
                vc,
                has_read,
                exclude,
                newly_excluded: Vec::new(),
                bound_pinned: false,
                reply,
            });
            return;
        }
        self.serve_or_park_read_only(
            &mut state,
            PendingRead {
                txn,
                key,
                vc,
                has_read,
                exclude,
                newly_excluded: Vec::new(),
                bound_pinned: false,
                reply,
            },
        );
    }

    /// Serves deferred read-only reads whose visibility condition became
    /// true after an internal commit advanced the `NLog`.
    pub(super) fn drain_pending_reads(&self, state: &mut NodeState) {
        let i = self.id().index();
        let ready: Vec<PendingRead> = {
            let most_recent = state.nlog.most_recent_vc().clone();
            let (ready, still): (Vec<_>, Vec<_>) = state
                .pending_reads
                .drain(..)
                .partition(|p| most_recent.get(i) >= p.vc.get(i));
            state.pending_reads = still;
            ready
        };
        for pending in ready {
            self.serve_or_park_read_only(state, pending);
        }
    }

    /// Handles a (possibly grouped) `ConfirmExternal`: advances the node's
    /// confirmed snapshot by every entry's commit clock — transactions
    /// beginning here afterwards serialize after the whole group — and
    /// acknowledges the coordinator once per round. Parked reads stay parked
    /// until their writer's release, which arrives in a *later* round's
    /// `release` list (or a standalone `ReleaseExternal`); the piggybacked
    /// `remove` payload is processed first because removes can unblock
    /// waiting external commits.
    pub(super) fn handle_confirm_external(
        &self,
        entries: Vec<(TxnId, std::sync::Arc<VectorClock>)>,
        release: Vec<TxnId>,
        remove: Vec<TxnId>,
        reply: ReplySender<crate::messages::Ack>,
    ) {
        if !remove.is_empty() {
            self.handle_remove(remove);
        }
        let round = entries.first().map(|(txn, _)| *txn);
        let first_copy = {
            let mut state = self.state.lock();
            for (_, commit_vc) in &entries {
                state.confirmed_vc.merge(commit_vc);
            }
            round.is_some_and(|id| state.confirm_acked.insert(id))
        };
        if !release.is_empty() {
            self.handle_release_external(release);
        }
        // Acknowledge only the first delivery of a round: the reply channel
        // is bounded by the node count, so a duplicated confirm whose extra
        // ack filled a slot could crowd out another node's (distinct) ack
        // and fail the coordinator's confirmation round for a committed
        // group. The round id is the first entry's transaction.
        if let (true, Some(id)) = (first_copy, round) {
            reply.send(crate::messages::Ack {
                from: self.id(),
                txn: id,
            });
        }
    }

    /// Handles `ReleaseExternal[T..]`: the writers' confirmation rounds are
    /// complete and their clients are being answered, so their versions may
    /// now reach read-only clients. Releases every read parked on any of
    /// them.
    pub(super) fn handle_release_external(&self, txns: Vec<TxnId>) {
        let mut state = self.state.lock();
        self.release_external_locked(&mut state, &txns);
    }

    /// Marks every transaction of `txns` globally externally committed and
    /// re-serves the reads parked on any of them. Shared by the normal
    /// `ReleaseExternal` path and the staleness sweep.
    fn release_external_locked(&self, state: &mut NodeState, txns: &[TxnId]) {
        for txn in txns {
            state.released_external.insert(*txn);
            state.pending_global.remove(txn);
        }
        let (released, still): (Vec<ParkedRead>, Vec<ParkedRead>) = state
            .parked_reads
            .drain(..)
            .partition(|p| txns.contains(&p.writer));
        state.parked_reads = still;
        for parked in released {
            // Re-run the full selection: the queue and log moved on while
            // the read was parked, and the new selection may park again on a
            // different (newer) unconfirmed writer.
            self.serve_or_park_read_only(state, parked.read);
        }
    }

    /// Liveness valve for `pending_global`: expires entries older than
    /// [`crate::SssConfig::pending_global_hold_max`] as if their
    /// `ReleaseExternal` had arrived. The release is volatile coordinator
    /// state — a crash can drop it *after* the confirmation round completed
    /// (the grouped coalescer buffers completed members' releases for
    /// piggybacking on the next round, and the crash-stop reset discards
    /// that buffer) — and an unreleased writer otherwise parks every read
    /// selecting its version forever. Driven by read traffic, like the
    /// `precommit_hold_max` wait-cycle breaker: the parked readers' own
    /// retries are the clock that eventually fires the sweep. See the
    /// config field for why expiring at this bound preserves the
    /// completion-order guarantee.
    fn expire_stale_pending_global(&self, state: &mut NodeState) {
        let hold_max = self.config().pending_global_hold_max;
        let now = sss_vclock::runtime::now();
        let mut expired: Vec<TxnId> = Vec::new();
        while let Some((txn, since)) = state.pending_global_at.front().copied() {
            if now.saturating_duration_since(since) < hold_max {
                break;
            }
            state.pending_global_at.pop_front();
            // Entries released normally linger in the queue as stale
            // records; only still-pending ones are force-released.
            if state.pending_global.contains(&txn) {
                expired.push(txn);
            }
        }
        if !expired.is_empty() {
            NodeCounters::add(
                &self.counters().pending_global_expired,
                expired.len() as u64,
            );
            self.release_external_locked(state, &expired);
        }
    }

    /// Algorithm 6, read-only path: runs the version selection and either
    /// answers the request or — when the selected version's writer has not
    /// yet globally externally committed — parks it until the writer's
    /// `ConfirmExternal` arrives.
    ///
    /// Holding the read is what keeps client-observed completions consistent
    /// with the serialization order across nodes: without it, a client could
    /// observe a pre-committed version and return while, on a node with a
    /// staler clock, a later-starting read-only transaction still serializes
    /// *before* that writer — an external-consistency cycle.
    fn serve_or_park_read_only(&self, state: &mut NodeState, pending: PendingRead) {
        let i = self.id().index();
        let PendingRead {
            txn,
            key,
            vc,
            has_read,
            mut exclude,
            mut newly_excluded,
            bound_pinned,
            reply,
        } = pending;
        // The snapshot of a read-only transaction is *pinned* by its first
        // read: the reply's `maxVC` is merged into `T.VC` by the client and
        // every subsequent read — on any node — is bounded by that same
        // clock. Letting the bound grow per read (as a per-node `maxVC`
        // recomputation would) admits versions that an earlier read of the
        // same transaction deliberately excluded, which fractures the
        // snapshot (observed as non-repeatable reads of a key and as
        // serialization cycles with concurrent writers).
        let first_read_anywhere = !bound_pinned && !has_read.iter().any(|b| *b);

        // Step 1: establish maxVC.
        //
        // The bound must be *one clock for the whole transaction*: the
        // client merges every reply into `T.VC` and subsequent reads (on
        // any node) are served under that merged clock, so the first read
        // must select under the same merged clock too. Serving the first
        // read under the replica-local visible maximum alone (and letting
        // the client enlarge the effective bound afterwards by merging its
        // begin snapshot into it) fractures the snapshot: a writer
        // invisible to the first read can fall inside the bound of a later
        // read of the same transaction.
        let max_vc = if first_read_anywhere {
            // Update transactions still in their Pre-Commit phase whose
            // insertion-snapshot is beyond the transaction's visibility
            // bound must be excluded (lines 7-8): serializing the reader
            // before them is what guarantees a unique external schedule for
            // non-conflicting writers (the Adya cross-node anomaly). Their
            // commit clocks are reported to the client as exclusion
            // ceilings so no later read of this transaction observes them
            // — or anything that depends on them — on any key (see the
            // ceiling walk in step 3). Cloning an entry's clock clones an
            // `Arc` handle, not the clock.
            if let Some(q) = state.squeues.get(&key) {
                for w in q.writes().iter().filter(|w| w.sid > vc.get(i)) {
                    newly_excluded.push(std::sync::Arc::clone(&w.commit_vc));
                }
            }
            let mut max_vc = state.nlog.visible_max(&has_read, &vc, &newly_excluded);
            max_vc.merge(&vc);
            exclude.extend(newly_excluded.iter().cloned());
            max_vc
        } else {
            // Subsequent read (or a re-serve after a deferral/park): the
            // bound is the transaction's own (pinned) vector clock (lines
            // 16-21) and `exclude` already carries any ceilings a first
            // pass discovered.
            vc.clone()
        };

        // Visibility wait, part 2: the `NLog.mostRecentVC[i] >= T.VC[i]`
        // condition alone is not a reliable witness that every transaction
        // within the bound has been applied here. The xact-vn equalization
        // (Algorithm 1 lines 21-24) can assign two concurrent transactions
        // the same clock entry for this node, so an applied transaction can
        // raise `mostRecentVC[i]` to a value that a *still-queued*
        // transaction's commit vector clock also carries. Serving now would
        // let the snapshot cover that transaction on other nodes while
        // missing its local writes (a fractured read). Defer while any
        // commit-queue entry is at or below the bound; entries only leave
        // the queue by being applied or aborted, and both paths re-drain
        // the deferred reads.
        if crate::protocol::commit_queue_blocks_read(state.commit_q.entries(), i, max_vc.get(i)) {
            // Counted once per request: re-evaluations of a read that is
            // still blocked re-enter with the bound already pinned.
            if !bound_pinned {
                NodeCounters::bump(&self.counters().reads_deferred);
            }
            // Pin the computed bound: re-serving must not chase commits
            // that happened while the read was waiting. `newly_excluded`
            // travels along so the eventual reply still reports the
            // first pass's ceilings to the client.
            state.pending_reads.push(PendingRead {
                txn,
                key,
                vc: max_vc,
                has_read,
                exclude,
                newly_excluded,
                bound_pinned: true,
                reply,
            });
            return;
        }

        // Step 2: leave a trace in the key's snapshot-queue (lines 10/17).
        //
        // Exception: if this transaction's `Remove` has already been
        // processed on this node, the transaction has returned to its client
        // and this request is a stale duplicate (the fastest replica won the
        // race and a high-priority `Remove` overtook this lower-priority
        // read). Enqueuing now would leave an entry no future `Remove` will
        // ever clear, permanently blocking writers of this key.
        if !state.removed_ro.contains(&txn) {
            state.squeues.entry(&key).insert_read(txn, max_vc.get(i));
        }

        // Step 3: walk the version chain newest-to-oldest (lines 11-14 /
        // 18-21) and pick the most recent version within the snapshot: a
        // version is visible only if `maxVC` dominates its commit vector
        // clock. (Bounding on every entry — not only the already-read nodes
        // — guarantees the reader's snapshot genuinely covers everything it
        // observes, which rules out reading "around" an excluded
        // pre-committing writer.)
        // The walk also skips any version whose commit clock dominates one
        // of the transaction's exclusion ceilings: the transaction
        // serialized before those writers, and an update transaction that
        // read an excluded writer's (pre-committed) data carries a commit
        // clock dominating the excluded one — possibly while externally
        // committing *before* the excluded writer — so a ceiling (not a
        // writer-id filter) is required to keep the snapshot consistent
        // under such dependency chains. (A blind overwrite of an excluded
        // writer's key does not carry its clock, but no workload in this
        // repository issues blind writes; the proper wait-cycle-free
        // protocol remains the `precommit_hold_max` TODO.)
        let selected = self.store().chain(&key).and_then(|chain| {
            chain
                .latest_matching(|ver| crate::protocol::version_visible(&ver.vc, &max_vc, &exclude))
                .map(|ver| (ver.value.clone(), ver.writer))
        });
        let (value, writer) = match selected {
            Some((value, writer)) => (Some(value), Some(writer)),
            None => (None, None),
        };

        // Step 4: completion-order barrier. If the selected version's writer
        // is still in its Pre-Commit phase on this node (write entry in the
        // key's snapshot-queue) or has externally committed here but not yet
        // globally (awaiting `ConfirmExternal`), hold the read until the
        // writer's global external commit: the value must not reach a client
        // before the writer's own client response.
        if let Some(w) = writer {
            let writer_unconfirmed = (state
                .squeues
                .get(&key)
                .map(|q| q.writes().iter().any(|e| e.txn == w))
                .unwrap_or(false)
                || state.pending_global.contains(&w))
                && !state.released_external.contains(&w);
            if writer_unconfirmed {
                NodeCounters::bump(&self.counters().reads_parked);
                // Pin the computed bound: when the writer is released, the
                // re-served selection must use this same snapshot — a fresh
                // (larger) bound would land on the next unconfirmed writer
                // and livelock under sustained write traffic.
                state.parked_reads.push(ParkedRead {
                    writer: w,
                    read: PendingRead {
                        txn,
                        key,
                        vc: max_vc,
                        has_read,
                        exclude,
                        newly_excluded,
                        bound_pinned: true,
                        reply,
                    },
                });
                return;
            }
        }

        NodeCounters::bump(&self.counters().reads_served);
        reply.send(ReadReturn {
            from: self.id(),
            value,
            writer,
            vc: max_vc,
            excluded: newly_excluded,
            propagated: Vec::new(),
        });
    }

    /// Algorithm 6, update-transaction path (lines 23-27).
    fn serve_update_read(&self, state: &NodeState, key: &Key) -> ReadReturn {
        let max_vc = state.nlog.most_recent_vc().clone();
        let propagated: Vec<PropagatedEntry> = state
            .squeues
            .get(key)
            .map(|q| {
                q.reads()
                    .iter()
                    .map(|r| PropagatedEntry {
                        txn: r.txn,
                        sid: r.sid,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let last = self.store().last(key);
        ReadReturn {
            from: self.id(),
            value: last.as_ref().map(|v| v.value.clone()),
            writer: last.as_ref().map(|v| v.writer),
            vc: max_vc,
            excluded: Vec::new(),
            propagated,
        }
    }
}
