//! The SSS engine adapter: whole-transaction execution on a cluster, in the
//! shape the workspace's engine layer (`sss-engine`) binds onto its
//! `TransactionEngine` / `EngineSession` traits.
//!
//! The adapter lives here — with the engine it adapts — so that the engine
//! layer can stay a thin binding-and-registry crate. Commit timings are
//! reported as `Option<(latency, internal_latency)>`: `Some` carries the
//! external (client-visible) latency and the internal-commit latency —
//! distinct for SSS, whose clients are answered only at external commit —
//! and `None` means the transaction aborted.

use std::time::Duration;

use sss_storage::{Key, Value};

use crate::cluster::SssCluster;
use crate::config::SssConfig;
use crate::error::SssError;
use crate::session::Session;

/// The SSS engine, ready to be driven one whole transaction at a time.
pub struct SssEngine {
    cluster: SssCluster,
}

impl SssEngine {
    /// Starts an SSS cluster of `nodes` nodes with `replication` replicas
    /// per key and the paper's default timeouts.
    ///
    /// # Panics
    ///
    /// Panics if the cluster fails to boot (worker spawn failure).
    pub fn start(nodes: usize, replication: usize) -> Self {
        Self::with_config(SssConfig::new(nodes).replication(replication))
    }

    /// Starts an SSS cluster with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the cluster fails to boot (worker spawn failure).
    pub fn with_config(config: SssConfig) -> Self {
        SssEngine {
            cluster: SssCluster::start(config).expect("failed to start SSS cluster"),
        }
    }

    /// The underlying cluster (e.g. for protocol statistics).
    pub fn cluster(&self) -> &SssCluster {
        &self.cluster
    }

    /// The fault injector the engine runs under, if any (see
    /// [`SssConfig::faults`]).
    pub fn fault_injector(&self) -> Option<&std::sync::Arc<crate::FaultInjector>> {
        self.cluster.fault_injector()
    }

    /// Number of nodes the engine runs.
    pub fn node_count(&self) -> usize {
        self.cluster.node_count()
    }

    /// Opens an adapter session colocated with `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn open_session(&self, node: usize) -> SssEngineSession {
        SssEngineSession {
            session: self.cluster.session(node),
        }
    }
}

impl std::fmt::Debug for SssEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SssEngine")
            .field("nodes", &self.node_count())
            .finish()
    }
}

/// A per-client adapter session executing whole transactions.
pub struct SssEngineSession {
    session: Session,
}

impl SssEngineSession {
    /// Runs one update transaction reading `read_keys` and writing
    /// `writes`; returns `Some((latency, internal_latency))` on commit.
    pub fn run_update(
        &mut self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> Option<(Duration, Duration)> {
        self.run_update_observed(read_keys, writes).0
    }

    /// [`SssEngineSession::run_update`] that also reports the value each
    /// read observed (parallel to `read_keys`), for history recording.
    pub fn run_update_observed(
        &mut self,
        read_keys: &[Key],
        writes: &[(Key, Value)],
    ) -> (Option<(Duration, Duration)>, Vec<Option<Value>>) {
        let start = sss_vclock::runtime::now();
        let mut observed = Vec::with_capacity(read_keys.len());
        let mut txn = self.session.begin_update();
        for key in read_keys {
            match txn.read(key.clone()) {
                Ok(value) => observed.push(value),
                Err(_) => return (None, Vec::new()),
            }
        }
        for (key, value) in writes {
            txn.write(key.clone(), value.clone());
        }
        match txn.commit() {
            Ok(info) => (
                Some((
                    sss_vclock::runtime::elapsed_since(start),
                    info.internal_latency,
                )),
                observed,
            ),
            // A timed-out external-commit confirmation round is still a
            // *committed* transaction: its writes are installed and visible.
            // Reporting it as aborted would make callers retry a committed
            // transaction, duplicating its effects.
            Err(SssError::ExternalCommitTimeout) => {
                let elapsed = sss_vclock::runtime::elapsed_since(start);
                (Some((elapsed, elapsed)), observed)
            }
            Err(_) => (None, Vec::new()),
        }
    }

    /// Runs one read-only transaction over `read_keys`; returns
    /// `Some((latency, latency))` on commit (read-only transactions have no
    /// internal/external split).
    pub fn run_read_only(&mut self, read_keys: &[Key]) -> Option<(Duration, Duration)> {
        self.run_read_only_observed(read_keys).0
    }

    /// [`SssEngineSession::run_read_only`] that also reports the observed
    /// values (parallel to `read_keys`), for history recording.
    pub fn run_read_only_observed(
        &mut self,
        read_keys: &[Key],
    ) -> (Option<(Duration, Duration)>, Vec<Option<Value>>) {
        let start = sss_vclock::runtime::now();
        let mut observed = Vec::with_capacity(read_keys.len());
        let mut txn = self.session.begin_read_only();
        for key in read_keys {
            match txn.read(key.clone()) {
                Ok(value) => observed.push(value),
                Err(_) => return (None, Vec::new()),
            }
        }
        match txn.commit() {
            Ok(()) => {
                let latency = sss_vclock::runtime::elapsed_since(start);
                (Some((latency, latency)), observed)
            }
            Err(_) => (None, Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_runs_whole_transactions() {
        let engine = SssEngine::start(2, 1);
        let mut session = engine.open_session(0);
        let writes = vec![(Key::new("a"), Value::from_u64(1))];
        assert!(session.run_update(&[], &writes).is_some());
        let (latency, internal) = session
            .run_read_only(&[Key::new("a")])
            .expect("read-only never aborts");
        assert_eq!(latency, internal);
        assert_eq!(engine.node_count(), 2);
        engine.cluster().shutdown();
    }
}
