//! Protocol messages exchanged by SSS nodes.
//!
//! Message names follow the paper: `READREQUEST` / `READRETURN`
//! (Algorithms 5 and 6), `Prepare` / `Vote` / `Decide` (Algorithms 1 and 2),
//! `Ack` (Algorithm 4) and `Remove` (§III-C). One extra message,
//! [`SssMessage::RegisterForward`], implements the Remove-forwarding rule of
//! §III-C for transitively propagated anti-dependencies (see the crate-level
//! documentation for the exact mechanism).
//!
//! Replies (`READRETURN`, `Vote`, `Ack`) are delivered through
//! [`ReplySender`] handles embedded in the request, which reproduces the
//! "fastest replica wins" behaviour of read operations without a separate
//! correlation layer.

use sss_net::{Priority, ReplySender};
use sss_storage::{Key, TxnId, Value};
use sss_vclock::{NodeId, VectorClock};

/// A read-only transaction entry propagated through snapshot-queues
/// (`<T'.id, T'.sid, "R">` in Algorithm 3 line 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropagatedEntry {
    /// The read-only transaction.
    pub txn: TxnId,
    /// Its insertion-snapshot in the queue it was observed in.
    pub sid: u64,
}

/// Reply to a `READREQUEST` (Algorithm 6 line 28).
#[derive(Debug, Clone)]
pub struct ReadReturn {
    /// Node that answered (used to set `T.hasRead`).
    pub from: NodeId,
    /// The selected version's value; `None` if the key has no visible
    /// version (never written within the transaction's visibility bound).
    pub value: Option<Value>,
    /// The transaction that produced the selected version (`None` when no
    /// version was visible). Update transactions remember it in their
    /// read-set so that commit-time validation can check that "the latest
    /// version of a key matches the read one" (paper §III-B).
    pub writer: Option<TxnId>,
    /// `maxVC`, merged into the reader's vector clock (`VC*` in Algorithm 5).
    pub vc: VectorClock,
    /// Commit vector clocks of the pre-committing update transactions this
    /// read *excluded* from the reader's snapshot (their insertion-snapshot
    /// lay beyond the reader's visibility bound, Algorithm 6 lines 7-8).
    /// The client accumulates them into the transaction's exclusion set,
    /// which acts as a family of *ceilings* on every later read: a version
    /// whose commit vector clock dominates an excluded clock is never
    /// returned. The ceiling — rather than a writer-id filter — is what
    /// keeps the snapshot consistent transitively: an update transaction
    /// that read the excluded writer's (pre-committed) data carries a
    /// dominating commit clock, so its versions are filtered too, even
    /// though it may externally commit before the excluded writer does.
    pub excluded: Vec<std::sync::Arc<VectorClock>>,
    /// Read-only entries found in the key's snapshot-queue; only populated
    /// for update-transaction reads (Algorithm 6 line 25).
    pub propagated: Vec<PropagatedEntry>,
}

/// A participant's vote in the 2PC prepare phase (Algorithm 2 lines 5/13).
#[derive(Debug, Clone)]
pub struct Vote {
    /// The voting participant.
    pub from: NodeId,
    /// The transaction being voted on.
    pub txn: TxnId,
    /// `true` if locks were acquired and validation succeeded.
    pub ok: bool,
    /// The participant's proposed commit vector clock.
    pub vc: VectorClock,
}

/// A participant's acknowledgement that the transaction externally committed
/// on its side (Algorithm 4 line 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// The acknowledging write replica.
    pub from: NodeId,
    /// The transaction whose Pre-Commit phase completed at `from`.
    pub txn: TxnId,
}

/// Reply to a [`SssMessage::StateQuery`]: the peer's view of the cluster's
/// confirmed snapshot, merged by a restarting node into its `confirmed_vc`.
#[derive(Debug, Clone)]
pub struct StateReply {
    /// The answering peer.
    pub from: NodeId,
    /// The peer's begin snapshot (`NLog.mostRecentVC` merged with its
    /// `confirmed_vc`): covers every update transaction whose global
    /// external commit the peer has learned of.
    pub vc: VectorClock,
}

/// The SSS wire protocol.
#[derive(Debug, Clone)]
pub enum SssMessage {
    /// `READREQUEST[k, T.VC, T.hasRead, T.isUpdate]` (Algorithm 5 line 9).
    ReadRequest {
        /// The reading transaction.
        txn: TxnId,
        /// Key to read.
        key: Key,
        /// The transaction's current vector clock (`T.VC`).
        vc: VectorClock,
        /// Which nodes the transaction has already read from.
        has_read: Vec<bool>,
        /// Exclusion ceilings accumulated by the transaction so far (see
        /// [`ReadReturn::excluded`]): version selection skips any version
        /// whose commit vector clock dominates one of these, keeping the
        /// snapshot consistent across keys. Always empty for update
        /// transactions.
        exclude: Vec<std::sync::Arc<VectorClock>>,
        /// `true` for update transactions (they always read `k.last`).
        is_update: bool,
        /// Where to deliver the `READRETURN`.
        reply: ReplySender<ReadReturn>,
    },
    /// 2PC `Prepare[T]` (Algorithm 1 line 11).
    Prepare {
        /// The committing update transaction.
        txn: TxnId,
        /// Its coordinator node.
        coordinator: NodeId,
        /// The transaction's vector clock at commit time (used for read
        /// validation).
        vc: VectorClock,
        /// Keys read by the transaction together with the writer of the
        /// version that was observed (each participant validates and locks
        /// the subset it replicates).
        read_set: Vec<(Key, Option<TxnId>)>,
        /// Keys written by the transaction with their new values.
        write_set: Vec<(Key, Value)>,
        /// Where to deliver the `Vote`.
        reply: ReplySender<Vote>,
    },
    /// 2PC `Decide[T, commitVC, outcome]` (Algorithm 1 line 25), extended
    /// with the transitively propagated read-only entries (Algorithm 3
    /// lines 4-6) and the reply handle used for the external-commit `Ack`.
    Decide {
        /// The update transaction.
        txn: TxnId,
        /// Final commit vector clock (meaningful only when `outcome`).
        commit_vc: VectorClock,
        /// `true` to commit, `false` to abort.
        outcome: bool,
        /// `T.PropagatedSet`: read-only entries to re-insert into the
        /// snapshot-queues of the written keys.
        propagated: Vec<PropagatedEntry>,
        /// Where write replicas deliver their external-commit `Ack`.
        ack_reply: ReplySender<Ack>,
    },
    /// `Remove[T..]`: the read-only transactions in `txns` returned to their
    /// clients; delete their entries from every local snapshot-queue
    /// (§III-C). Carrying a batch of transactions per message is the GC
    /// coalescing of the round-reduction optimisation: the per-transaction
    /// multicast becomes one message per destination per epoch.
    Remove {
        /// The completed read-only transactions.
        txns: Vec<TxnId>,
    },
    /// `ConfirmExternal[(T, commitVC)..]`: the coordinator collected the
    /// external-commit `Ack` of **every** write replica for each update
    /// transaction in `entries` — those transactions are now globally
    /// externally committed. Broadcast to every node; each node merges every
    /// entry's `commit_vc` into its `confirmed_vc` (so that transactions
    /// beginning there afterwards start from a snapshot covering the whole
    /// group) and answers with a single `Ack`. The coordinator responds to
    /// the grouped transactions' clients only after every node acknowledged,
    /// so a transaction that *starts* after any of those client responses is
    /// guaranteed to serialize after the corresponding entry — the
    /// cross-node completion-order guarantee, amortized over an epoch of
    /// concurrent committers (one round per coordinator epoch instead of one
    /// per transaction).
    ///
    /// Note that this message does **not** release read-only reads parked on
    /// the entries themselves: it is necessarily processed *before* their
    /// client responses, and a reader that observed an entry's versions must
    /// not respond earlier than that entry does. The `release` list —
    /// transactions whose *previous* confirmation round already completed —
    /// piggybacks that release step on this round instead of a dedicated
    /// [`SssMessage::ReleaseExternal`] broadcast, and `remove` likewise
    /// carries completed read-only transactions whose snapshot-queue entries
    /// can be dropped. Removes are processed first (they can unblock
    /// waiting external commits), then the confirmations, then the releases.
    ConfirmExternal {
        /// The globally externally committed update transactions, each with
        /// its commit vector clock.
        entries: Vec<(TxnId, std::sync::Arc<VectorClock>)>,
        /// Piggybacked `ReleaseExternal` payload: transactions whose
        /// confirmation round completed before this one was sent.
        release: Vec<TxnId>,
        /// Piggybacked `Remove` payload: completed read-only transactions.
        remove: Vec<TxnId>,
        /// Where to deliver this node's acknowledgement. The `Ack.txn` is
        /// the round id: the first entry's transaction.
        reply: ReplySender<Ack>,
    },
    /// `ReleaseExternal[T..]`: the confirmation rounds for `txns` completed
    /// (their clients are being answered); write replicas drop them from
    /// their locally-acked-but-unconfirmed set and serve any read-only read
    /// parked on them. Readers released here respond after the writers'
    /// confirmation rounds, so every transaction starting after *their*
    /// responses also starts after the writers are globally visible.
    ///
    /// Sent standalone only when no follow-up `ConfirmExternal` round is
    /// available as a carrier (the coalescer drained its queue).
    ReleaseExternal {
        /// The update transactions whose parked readers may now be answered.
        txns: Vec<TxnId>,
    },
    /// Registers additional `Remove` targets for a read-only transaction at
    /// its coordinator node. Sent by the coordinator of an update
    /// transaction that propagated `txn`'s entry into the snapshot-queues of
    /// its written keys (the nodes in `targets`), so that `txn`'s completion
    /// eventually reaches them (§III-C, transitive anti-dependencies).
    RegisterForward {
        /// The read-only transaction whose entry was propagated.
        txn: TxnId,
        /// Nodes whose snapshot-queues now hold a propagated entry of `txn`.
        targets: Vec<NodeId>,
    },
    /// Recovery round: a restarting node asks a peer for its view of the
    /// confirmed snapshot. A crash wipes the node's volatile `confirmed_vc`
    /// (the clocks of globally externally committed transactions), and
    /// restarting with a stale snapshot would let fresh read-only
    /// transactions begin *before* already-confirmed writers — an external
    /// consistency violation. The node stays unavailable to colocated
    /// clients until it merged every reachable peer's [`StateReply`].
    StateQuery {
        /// Where to deliver the peer's [`StateReply`].
        reply: ReplySender<StateReply>,
    },
}

impl SssMessage {
    /// The network priority class of this message.
    ///
    /// `Remove`, `Decide` and `RegisterForward` unblock external commits and
    /// are therefore prioritized, mirroring the paper's optimized network
    /// component (§V).
    pub fn priority(&self) -> Priority {
        match self {
            SssMessage::Remove { .. }
            | SssMessage::Decide { .. }
            | SssMessage::RegisterForward { .. }
            | SssMessage::ConfirmExternal { .. }
            | SssMessage::ReleaseExternal { .. }
            | SssMessage::StateQuery { .. } => Priority::High,
            SssMessage::ReadRequest { .. } | SssMessage::Prepare { .. } => Priority::Normal,
        }
    }

    /// Short human-readable name used in traces and statistics.
    pub fn kind(&self) -> &'static str {
        Self::KIND_LABELS[self.kind_index()]
    }

    /// Labels for the per-kind message counters, indexed by
    /// [`SssMessage::kind_index`].
    pub const KIND_LABELS: [&'static str; 8] = [
        "ReadRequest",
        "Prepare",
        "Decide",
        "Remove",
        "RegisterForward",
        "ConfirmExternal",
        "ReleaseExternal",
        "StateQuery",
    ];

    /// Dense index of this message's kind, used as the per-kind counter slot
    /// in [`sss_net::MailboxStats`] (always `< MESSAGE_KIND_SLOTS`).
    pub fn kind_index(&self) -> usize {
        match self {
            SssMessage::ReadRequest { .. } => 0,
            SssMessage::Prepare { .. } => 1,
            SssMessage::Decide { .. } => 2,
            SssMessage::Remove { .. } => 3,
            SssMessage::RegisterForward { .. } => 4,
            SssMessage::ConfirmExternal { .. } => 5,
            SssMessage::ReleaseExternal { .. } => 6,
            SssMessage::StateQuery { .. } => 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_net::reply_channel;

    #[test]
    fn critical_messages_have_high_priority() {
        let remove = SssMessage::Remove {
            txns: vec![TxnId::new(NodeId(0), 1)],
        };
        assert_eq!(remove.priority(), Priority::High);
        assert_eq!(remove.kind(), "Remove");
        assert_eq!(SssMessage::KIND_LABELS[remove.kind_index()], remove.kind());

        let (reply, _rx) = reply_channel(1);
        let read = SssMessage::ReadRequest {
            txn: TxnId::new(NodeId(0), 1),
            key: Key::new("x"),
            vc: VectorClock::new(2),
            has_read: vec![false, false],
            exclude: Vec::new(),
            is_update: false,
            reply,
        };
        assert_eq!(read.priority(), Priority::Normal);
        assert_eq!(read.kind(), "ReadRequest");
    }

    #[test]
    fn messages_are_cloneable_for_multicast() {
        let (reply, rx) = reply_channel(2);
        let msg = SssMessage::ReadRequest {
            txn: TxnId::new(NodeId(1), 7),
            key: Key::new("k"),
            vc: VectorClock::new(2),
            has_read: vec![false, false],
            exclude: Vec::new(),
            is_update: true,
            reply,
        };
        let clone = msg.clone();
        // Both copies answer into the same reply channel.
        for m in [msg, clone] {
            if let SssMessage::ReadRequest { reply, .. } = m {
                reply.send(ReadReturn {
                    from: NodeId(0),
                    value: None,
                    writer: None,
                    vc: VectorClock::new(2),
                    excluded: Vec::new(),
                    propagated: Vec::new(),
                });
            }
        }
        assert!(rx.recv().is_some());
        assert!(rx.recv().is_some());
    }
}
