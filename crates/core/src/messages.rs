//! Protocol messages exchanged by SSS nodes.
//!
//! Message names follow the paper: `READREQUEST` / `READRETURN`
//! (Algorithms 5 and 6), `Prepare` / `Vote` / `Decide` (Algorithms 1 and 2),
//! `Ack` (Algorithm 4) and `Remove` (§III-C). One extra message,
//! [`SssMessage::RegisterForward`], implements the Remove-forwarding rule of
//! §III-C for transitively propagated anti-dependencies (see the crate-level
//! documentation for the exact mechanism).
//!
//! Replies (`READRETURN`, `Vote`, `Ack`) are delivered through
//! [`ReplySender`] handles embedded in the request, which reproduces the
//! "fastest replica wins" behaviour of read operations without a separate
//! correlation layer.

use sss_net::{Priority, ReplySender};
use sss_storage::{Key, TxnId, Value};
use sss_vclock::{NodeId, VectorClock};

/// A read-only transaction entry propagated through snapshot-queues
/// (`<T'.id, T'.sid, "R">` in Algorithm 3 line 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropagatedEntry {
    /// The read-only transaction.
    pub txn: TxnId,
    /// Its insertion-snapshot in the queue it was observed in.
    pub sid: u64,
}

/// Reply to a `READREQUEST` (Algorithm 6 line 28).
#[derive(Debug, Clone)]
pub struct ReadReturn {
    /// Node that answered (used to set `T.hasRead`).
    pub from: NodeId,
    /// The selected version's value; `None` if the key has no visible
    /// version (never written within the transaction's visibility bound).
    pub value: Option<Value>,
    /// The transaction that produced the selected version (`None` when no
    /// version was visible). Update transactions remember it in their
    /// read-set so that commit-time validation can check that "the latest
    /// version of a key matches the read one" (paper §III-B).
    pub writer: Option<TxnId>,
    /// `maxVC`, merged into the reader's vector clock (`VC*` in Algorithm 5).
    pub vc: VectorClock,
    /// Commit vector clocks of the pre-committing update transactions this
    /// read *excluded* from the reader's snapshot (their insertion-snapshot
    /// lay beyond the reader's visibility bound, Algorithm 6 lines 7-8).
    /// The client accumulates them into the transaction's exclusion set,
    /// which acts as a family of *ceilings* on every later read: a version
    /// whose commit vector clock dominates an excluded clock is never
    /// returned. The ceiling — rather than a writer-id filter — is what
    /// keeps the snapshot consistent transitively: an update transaction
    /// that read the excluded writer's (pre-committed) data carries a
    /// dominating commit clock, so its versions are filtered too, even
    /// though it may externally commit before the excluded writer does.
    pub excluded: Vec<std::sync::Arc<VectorClock>>,
    /// Read-only entries found in the key's snapshot-queue; only populated
    /// for update-transaction reads (Algorithm 6 line 25).
    pub propagated: Vec<PropagatedEntry>,
}

/// A participant's vote in the 2PC prepare phase (Algorithm 2 lines 5/13).
#[derive(Debug, Clone)]
pub struct Vote {
    /// The voting participant.
    pub from: NodeId,
    /// The transaction being voted on.
    pub txn: TxnId,
    /// `true` if locks were acquired and validation succeeded.
    pub ok: bool,
    /// The participant's proposed commit vector clock.
    pub vc: VectorClock,
}

/// A participant's acknowledgement that the transaction externally committed
/// on its side (Algorithm 4 line 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// The acknowledging write replica.
    pub from: NodeId,
    /// The transaction whose Pre-Commit phase completed at `from`.
    pub txn: TxnId,
}

/// The SSS wire protocol.
#[derive(Debug, Clone)]
pub enum SssMessage {
    /// `READREQUEST[k, T.VC, T.hasRead, T.isUpdate]` (Algorithm 5 line 9).
    ReadRequest {
        /// The reading transaction.
        txn: TxnId,
        /// Key to read.
        key: Key,
        /// The transaction's current vector clock (`T.VC`).
        vc: VectorClock,
        /// Which nodes the transaction has already read from.
        has_read: Vec<bool>,
        /// Exclusion ceilings accumulated by the transaction so far (see
        /// [`ReadReturn::excluded`]): version selection skips any version
        /// whose commit vector clock dominates one of these, keeping the
        /// snapshot consistent across keys. Always empty for update
        /// transactions.
        exclude: Vec<std::sync::Arc<VectorClock>>,
        /// `true` for update transactions (they always read `k.last`).
        is_update: bool,
        /// Where to deliver the `READRETURN`.
        reply: ReplySender<ReadReturn>,
    },
    /// 2PC `Prepare[T]` (Algorithm 1 line 11).
    Prepare {
        /// The committing update transaction.
        txn: TxnId,
        /// Its coordinator node.
        coordinator: NodeId,
        /// The transaction's vector clock at commit time (used for read
        /// validation).
        vc: VectorClock,
        /// Keys read by the transaction together with the writer of the
        /// version that was observed (each participant validates and locks
        /// the subset it replicates).
        read_set: Vec<(Key, Option<TxnId>)>,
        /// Keys written by the transaction with their new values.
        write_set: Vec<(Key, Value)>,
        /// Where to deliver the `Vote`.
        reply: ReplySender<Vote>,
    },
    /// 2PC `Decide[T, commitVC, outcome]` (Algorithm 1 line 25), extended
    /// with the transitively propagated read-only entries (Algorithm 3
    /// lines 4-6) and the reply handle used for the external-commit `Ack`.
    Decide {
        /// The update transaction.
        txn: TxnId,
        /// Final commit vector clock (meaningful only when `outcome`).
        commit_vc: VectorClock,
        /// `true` to commit, `false` to abort.
        outcome: bool,
        /// `T.PropagatedSet`: read-only entries to re-insert into the
        /// snapshot-queues of the written keys.
        propagated: Vec<PropagatedEntry>,
        /// Where write replicas deliver their external-commit `Ack`.
        ack_reply: ReplySender<Ack>,
    },
    /// `Remove[T]`: the read-only transaction `txn` returned to its client;
    /// delete its entries from every local snapshot-queue (§III-C).
    Remove {
        /// The completed read-only transaction.
        txn: TxnId,
    },
    /// `ConfirmExternal[T, commitVC]`: the coordinator of update transaction
    /// `txn` collected the external-commit `Ack` of **every** write replica —
    /// the transaction is now globally externally committed. Broadcast to
    /// every node; each node merges `commit_vc` into its `confirmed_vc` (so
    /// that transactions beginning there afterwards start from a snapshot
    /// covering `txn`) and answers with an `Ack`. The coordinator responds
    /// to its client only after every node acknowledged, so a transaction
    /// that *starts* after the client response is guaranteed to serialize
    /// after `txn` — the cross-node completion-order guarantee.
    ///
    /// Note that this message does **not** release read-only reads parked on
    /// `txn`: it is necessarily processed *before* `txn`'s client response,
    /// and a reader that observed `txn`'s versions must not respond earlier
    /// than `txn` itself does. The separate [`SssMessage::ReleaseExternal`],
    /// sent after the confirmation round completes, does that.
    ConfirmExternal {
        /// The globally externally committed update transaction.
        txn: TxnId,
        /// Its commit vector clock.
        commit_vc: VectorClock,
        /// Where to deliver this node's acknowledgement.
        reply: ReplySender<Ack>,
    },
    /// `ReleaseExternal[T]`: the confirmation round for `txn` completed (its
    /// client is being answered); write replicas drop `txn` from their
    /// locally-acked-but-unconfirmed set and serve any read-only read parked
    /// on it. Readers released here respond after `txn`'s confirmation
    /// round, so every transaction starting after *their* responses also
    /// starts after `txn` is globally visible.
    ReleaseExternal {
        /// The update transaction whose parked readers may now be answered.
        txn: TxnId,
    },
    /// Registers additional `Remove` targets for a read-only transaction at
    /// its coordinator node. Sent by the coordinator of an update
    /// transaction that propagated `txn`'s entry into the snapshot-queues of
    /// its written keys (the nodes in `targets`), so that `txn`'s completion
    /// eventually reaches them (§III-C, transitive anti-dependencies).
    RegisterForward {
        /// The read-only transaction whose entry was propagated.
        txn: TxnId,
        /// Nodes whose snapshot-queues now hold a propagated entry of `txn`.
        targets: Vec<NodeId>,
    },
}

impl SssMessage {
    /// The network priority class of this message.
    ///
    /// `Remove`, `Decide` and `RegisterForward` unblock external commits and
    /// are therefore prioritized, mirroring the paper's optimized network
    /// component (§V).
    pub fn priority(&self) -> Priority {
        match self {
            SssMessage::Remove { .. }
            | SssMessage::Decide { .. }
            | SssMessage::RegisterForward { .. }
            | SssMessage::ConfirmExternal { .. }
            | SssMessage::ReleaseExternal { .. } => Priority::High,
            SssMessage::ReadRequest { .. } | SssMessage::Prepare { .. } => Priority::Normal,
        }
    }

    /// Short human-readable name used in traces and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            SssMessage::ReadRequest { .. } => "ReadRequest",
            SssMessage::Prepare { .. } => "Prepare",
            SssMessage::Decide { .. } => "Decide",
            SssMessage::Remove { .. } => "Remove",
            SssMessage::RegisterForward { .. } => "RegisterForward",
            SssMessage::ConfirmExternal { .. } => "ConfirmExternal",
            SssMessage::ReleaseExternal { .. } => "ReleaseExternal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_net::reply_channel;

    #[test]
    fn critical_messages_have_high_priority() {
        let remove = SssMessage::Remove {
            txn: TxnId::new(NodeId(0), 1),
        };
        assert_eq!(remove.priority(), Priority::High);
        assert_eq!(remove.kind(), "Remove");

        let (reply, _rx) = reply_channel(1);
        let read = SssMessage::ReadRequest {
            txn: TxnId::new(NodeId(0), 1),
            key: Key::new("x"),
            vc: VectorClock::new(2),
            has_read: vec![false, false],
            exclude: Vec::new(),
            is_update: false,
            reply,
        };
        assert_eq!(read.priority(), Priority::Normal);
        assert_eq!(read.kind(), "ReadRequest");
    }

    #[test]
    fn messages_are_cloneable_for_multicast() {
        let (reply, rx) = reply_channel(2);
        let msg = SssMessage::ReadRequest {
            txn: TxnId::new(NodeId(1), 7),
            key: Key::new("k"),
            vc: VectorClock::new(2),
            has_read: vec![false, false],
            exclude: Vec::new(),
            is_update: true,
            reply,
        };
        let clone = msg.clone();
        // Both copies answer into the same reply channel.
        for m in [msg, clone] {
            if let SssMessage::ReadRequest { reply, .. } = m {
                reply.send(ReadReturn {
                    from: NodeId(0),
                    value: None,
                    writer: None,
                    vc: VectorClock::new(2),
                    excluded: Vec::new(),
                    propagated: Vec::new(),
                });
            }
        }
        assert!(rx.recv().is_some());
        assert!(rx.recv().is_some());
    }
}
