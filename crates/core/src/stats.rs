//! Protocol counters exposed by nodes and the cluster.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters of one node.
#[derive(Debug, Default)]
pub(crate) struct NodeCounters {
    pub reads_served: AtomicU64,
    pub reads_deferred: AtomicU64,
    pub reads_parked: AtomicU64,
    pub prepares: AtomicU64,
    pub votes_ok: AtomicU64,
    pub votes_lock_failed: AtomicU64,
    pub votes_validation_failed: AtomicU64,
    pub internal_commits: AtomicU64,
    pub external_commit_waits: AtomicU64,
    pub removes_processed: AtomicU64,
    pub precommit_wait_nanos: AtomicU64,
    pub pending_global_expired: AtomicU64,
}

impl NodeCounters {
    pub(crate) fn snapshot(&self) -> NodeStats {
        NodeStats {
            reads_served: self.reads_served.load(Ordering::Relaxed),
            reads_deferred: self.reads_deferred.load(Ordering::Relaxed),
            reads_parked: self.reads_parked.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            votes_ok: self.votes_ok.load(Ordering::Relaxed),
            votes_lock_failed: self.votes_lock_failed.load(Ordering::Relaxed),
            votes_validation_failed: self.votes_validation_failed.load(Ordering::Relaxed),
            internal_commits: self.internal_commits.load(Ordering::Relaxed),
            external_commit_waits: self.external_commit_waits.load(Ordering::Relaxed),
            removes_processed: self.removes_processed.load(Ordering::Relaxed),
            precommit_wait_nanos: self.precommit_wait_nanos.load(Ordering::Relaxed),
            pending_global_expired: self.pending_global_expired.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, amount: u64) {
        counter.fetch_add(amount, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of one node's protocol counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeStats {
    /// Read requests answered (including deferred ones once served).
    pub reads_served: u64,
    /// Read requests that had to wait for the visibility condition of
    /// Algorithm 6 line 5.
    pub reads_deferred: u64,
    /// Read requests held because the selected version's writer had not yet
    /// globally externally committed (completion-order barrier).
    pub reads_parked: u64,
    /// 2PC prepare requests processed.
    pub prepares: u64,
    /// Positive votes returned.
    pub votes_ok: u64,
    /// Negative votes due to lock-acquisition timeouts.
    pub votes_lock_failed: u64,
    /// Negative votes due to read validation failures.
    pub votes_validation_failed: u64,
    /// Transactions applied at the head of the commit queue.
    pub internal_commits: u64,
    /// Transactions that had to wait in the Pre-Commit phase because of a
    /// concurrent read-only transaction (snapshot-queuing).
    pub external_commit_waits: u64,
    /// `Remove` messages processed.
    pub removes_processed: u64,
    /// Cumulative time (nanoseconds) update transactions spent held in
    /// snapshot-queues on this node between internal and external commit.
    pub precommit_wait_nanos: u64,
    /// `pending_global` entries force-released by the staleness sweep — the
    /// coordinator's `ReleaseExternal` never arrived within
    /// `pending_global_hold_max` (its node crashed with the release still
    /// buffered). Zero in every crash-free run.
    pub pending_global_expired: u64,
}

impl NodeStats {
    /// Total negative votes (aborted prepares).
    pub fn votes_failed(&self) -> u64 {
        self.votes_lock_failed + self.votes_validation_failed
    }
}

/// Aggregated counters over all nodes of a cluster.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStats {
    /// Sum of every node's counters.
    pub totals: NodeStats,
    /// Number of nodes aggregated.
    pub nodes: usize,
}

impl ClusterStats {
    /// Aggregates per-node snapshots.
    pub fn aggregate(stats: impl IntoIterator<Item = NodeStats>) -> Self {
        let mut totals = NodeStats::default();
        let mut nodes = 0;
        for s in stats {
            nodes += 1;
            totals.reads_served += s.reads_served;
            totals.reads_deferred += s.reads_deferred;
            totals.reads_parked += s.reads_parked;
            totals.prepares += s.prepares;
            totals.votes_ok += s.votes_ok;
            totals.votes_lock_failed += s.votes_lock_failed;
            totals.votes_validation_failed += s.votes_validation_failed;
            totals.internal_commits += s.internal_commits;
            totals.external_commit_waits += s.external_commit_waits;
            totals.removes_processed += s.removes_processed;
            totals.precommit_wait_nanos += s.precommit_wait_nanos;
            totals.pending_global_expired += s.pending_global_expired;
        }
        ClusterStats { totals, nodes }
    }

    /// Fraction of internal commits that entered a snapshot-queue wait
    /// before externally committing.
    pub fn external_wait_ratio(&self) -> f64 {
        if self.totals.internal_commits == 0 {
            0.0
        } else {
            self.totals.external_commit_waits as f64 / self.totals.internal_commits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_roundtrip() {
        let counters = NodeCounters::default();
        NodeCounters::bump(&counters.reads_served);
        NodeCounters::bump(&counters.votes_lock_failed);
        NodeCounters::bump(&counters.votes_validation_failed);
        let snap = counters.snapshot();
        assert_eq!(snap.reads_served, 1);
        assert_eq!(snap.votes_failed(), 2);
    }

    #[test]
    fn aggregation_sums_nodes() {
        let a = NodeStats {
            internal_commits: 10,
            external_commit_waits: 4,
            ..Default::default()
        };
        let b = NodeStats {
            internal_commits: 30,
            external_commit_waits: 6,
            ..Default::default()
        };
        let agg = ClusterStats::aggregate([a, b]);
        assert_eq!(agg.nodes, 2);
        assert_eq!(agg.totals.internal_commits, 40);
        assert!((agg.external_wait_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_aggregation_has_zero_ratio() {
        let agg = ClusterStats::aggregate([]);
        assert_eq!(agg.nodes, 0);
        assert_eq!(agg.external_wait_ratio(), 0.0);
    }
}
