//! Pure protocol-step functions shared by the node handlers and the
//! `sss-model` explicit-state model checker.
//!
//! The model checker (crate `sss-model`) re-implements the SSS node as a
//! synchronous state machine so it can enumerate every interleaving of a
//! small configuration. To keep that model honest, the *decision* logic it
//! exercises — which versions a read may observe, when a read must defer on
//! a commit-queue ambiguity, how the final commit vector clock is
//! equalized, when an external commit is blocked — lives here as pure
//! functions over plain data, and the production handlers call the same
//! functions. A divergence between model and implementation then requires
//! changing a shared function, which both the checker and the chaos suite
//! immediately re-exercise.

use std::sync::Arc;

use sss_vclock::VectorClock;

use crate::commit_queue::{CommitEntry, CommitStatus};
use crate::squeue::SnapshotQueue;

/// Algorithm 1 lines 21-24 (the *xact-vn equalization*): the final commit
/// vector clock carries one common value — the maximum of the merged votes
/// — in every write-replica entry, so all write replicas order the
/// transaction identically in their commit queues. Returns the `xactVN`
/// value that was assigned.
pub fn finalize_commit_vc(commit_vc: &mut VectorClock, write_indices: &[usize]) -> u64 {
    let xact_vn = commit_vc.max_over(write_indices.iter().copied());
    commit_vc.assign_over(write_indices.iter().copied(), xact_vn);
    xact_vn
}

/// Algorithm 6 version-selection predicate: `version_vc` is visible to a
/// read bounded by `bound` unless it escapes the bound or sits at or above
/// one of the transaction's exclusion ceilings (the commit clocks of
/// pre-committing writers an earlier read of the same transaction
/// serialized before — and, transitively, of anything that depends on
/// them).
pub fn version_visible(
    version_vc: &VectorClock,
    bound: &VectorClock,
    ceilings: &[Arc<VectorClock>],
) -> bool {
    bound.dominates(version_vc) && !ceilings.iter().any(|ceiling| version_vc.dominates(ceiling))
}

/// The commit-queue ambiguity deferral: `NLog.mostRecentVC[i] >= T.VC[i]`
/// alone does not witness that every transaction within the bound has been
/// applied, because the xact-vn equalization can assign two concurrent
/// transactions the same clock entry for node `i`. A read bounded by
/// `bound` must defer while *any* queued transaction — pending or ready —
/// carries a clock entry at or below the bound; serving earlier could let
/// the snapshot cover that transaction on other nodes while missing its
/// local writes (a fractured read).
pub fn commit_queue_blocks_read(entries: &[CommitEntry], node_index: usize, bound: u64) -> bool {
    entries.iter().any(|e| e.vc.get(node_index) <= bound)
}

/// The Pre-Commit wait condition of Algorithm 4, per key: an internally
/// committed writer with insertion-snapshot `sid` is held in its
/// Pre-Commit phase while the key's snapshot-queue holds a read-only entry
/// with a smaller insertion-snapshot (a concurrent read-only transaction
/// that serializes before the writer and has not yet returned).
pub fn squeue_blocks_external_commit(queue: &SnapshotQueue, sid: u64) -> bool {
    queue.has_read_before(sid)
}

/// `true` while `entries` holds a *pending* transaction (prepared, decision
/// not yet arrived). Used by diagnostics and the model's deadlock analysis:
/// a terminal state with a pending entry means a Decide was lost or a
/// duplicate Prepare wedged the queue.
pub fn commit_queue_has_pending(entries: &[CommitEntry]) -> bool {
    entries.iter().any(|e| e.status == CommitStatus::Pending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_storage::TxnId;
    use sss_vclock::NodeId;

    fn vc(entries: &[u64]) -> VectorClock {
        VectorClock::from_entries(entries.to_vec())
    }

    #[test]
    fn finalize_equalizes_write_replicas_only() {
        let mut commit_vc = vc(&[3, 9, 7]);
        assert_eq!(finalize_commit_vc(&mut commit_vc, &[0, 2]), 7);
        assert_eq!(commit_vc, vc(&[7, 9, 7]));
    }

    #[test]
    fn visibility_respects_bound_and_ceilings() {
        let bound = vc(&[5, 5]);
        let ceiling = Arc::new(vc(&[4, 0]));
        // Within bound, below ceiling: visible.
        assert!(version_visible(
            &vc(&[3, 2]),
            &bound,
            &[Arc::clone(&ceiling)]
        ));
        // Escapes the bound: invisible.
        assert!(!version_visible(&vc(&[6, 0]), &bound, &[]));
        // The excluded writer itself (dominates its own ceiling): invisible.
        assert!(!version_visible(
            &vc(&[4, 0]),
            &bound,
            &[Arc::clone(&ceiling)]
        ));
        // A dependent later writer (dominates the ceiling): invisible.
        assert!(!version_visible(&vc(&[4, 3]), &bound, &[ceiling]));
    }

    #[test]
    fn equal_clock_entry_is_an_ambiguous_tie() {
        let entries = vec![CommitEntry {
            txn: TxnId::new(NodeId(0), 1),
            vc: vc(&[5, 0]),
            status: CommitStatus::Pending,
        }];
        // The xact-vn tie: a queued transaction carrying exactly the bound
        // must defer the read.
        assert!(commit_queue_blocks_read(&entries, 0, 5));
        assert!(commit_queue_blocks_read(&entries, 0, 9));
        assert!(!commit_queue_blocks_read(&entries, 0, 4));
        assert!(commit_queue_has_pending(&entries));
    }
}
