//! Snapshot-queues: the core new technique of SSS.
//!
//! "Each key is associated with a snapshot-queue. Only transactions that
//! will surely commit are inserted into the snapshot-queues of their
//! accessed keys in order to leave a trace of their existence to other
//! concurrent transactions. Read-only transactions are inserted into their
//! read keys' snapshot-queues at read time, while update transactions into
//! their modified keys' snapshot-queues after the commit decision is
//! reached." (paper §I)
//!
//! Entries carry an *insertion-snapshot*: "the value of T's vector clock in
//! position i at the time T is inserted in the snapshot-queue" on node `Ni`
//! (§III-A). SSS orders transactions with lesser insertion-snapshot before
//! conflicting transactions with higher insertion-snapshot in the external
//! schedule.
//!
//! As in the paper's implementation (§V), every key keeps two queues — one
//! for read-only entries and one for update (write) entries — so that scans
//! issued by read operations stay short in read-dominated workloads.

use std::collections::HashMap;
use std::sync::Arc;

use sss_storage::{Key, TxnId};
use sss_vclock::VectorClock;

/// Type of a snapshot-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// A read-only transaction that read the key ("R").
    Read,
    /// An update transaction that wrote the key and is in its Pre-Commit
    /// phase ("W").
    Write,
}

/// A read-only entry `<T.id, sid, "R">`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadEntry {
    /// The read-only transaction.
    pub txn: TxnId,
    /// Insertion-snapshot: entry `i` of the snapshot used for the read.
    pub sid: u64,
}

/// An update entry `<T.id, sid, "W">` for a transaction in its Pre-Commit
/// phase. The full commit vector clock is retained so that version-selection
/// (Algorithm 6) can exclude the versions this transaction produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteEntry {
    /// The update transaction.
    pub txn: TxnId,
    /// Insertion-snapshot: `commitVC[i]` on this node.
    pub sid: u64,
    /// The transaction's full commit vector clock, shared (`Arc`) with the
    /// versions the transaction installed and with its entries in other
    /// keys' queues — inserting and excluding entries never copies a clock.
    pub commit_vc: Arc<VectorClock>,
    /// When the entry was inserted; used by the starvation admission control
    /// (paper §III-E) to detect writers that have been waiting "for a
    /// pre-determined time".
    pub since: std::time::Instant,
}

/// The snapshot-queue of a single key (split into read and write sides).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotQueue {
    reads: Vec<ReadEntry>,
    writes: Vec<WriteEntry>,
}

impl SnapshotQueue {
    /// An empty queue.
    pub fn new() -> Self {
        SnapshotQueue::default()
    }

    /// Inserts a read-only entry, keeping the queue ordered by
    /// insertion-snapshot (ties broken by transaction id).
    ///
    /// Inserting the same transaction twice (a transaction may read the same
    /// key more than once) is idempotent: the entry with the smaller sid is
    /// kept.
    pub fn insert_read(&mut self, txn: TxnId, sid: u64) {
        if let Some(existing) = self.reads.iter_mut().find(|e| e.txn == txn) {
            existing.sid = existing.sid.min(sid);
        } else {
            self.reads.push(ReadEntry { txn, sid });
        }
        self.reads.sort_by_key(|e| (e.sid, e.txn));
    }

    /// Inserts (or refreshes) an update entry.
    pub fn insert_write(&mut self, txn: TxnId, sid: u64, commit_vc: impl Into<Arc<VectorClock>>) {
        self.writes.retain(|e| e.txn != txn);
        self.writes.push(WriteEntry {
            txn,
            sid,
            commit_vc: commit_vc.into(),
            since: sss_vclock::runtime::now(),
        });
        self.writes.sort_by_key(|a| (a.sid, a.txn));
    }

    /// `true` if an update entry with insertion-snapshot beyond `sid` has
    /// been waiting in this queue for longer than `threshold` — the trigger
    /// of the starvation admission control (paper §III-E).
    pub fn has_aged_writer_beyond(&self, sid: u64, threshold: std::time::Duration) -> bool {
        // Age against `runtime::now`, not `Instant::elapsed`: `since` is a
        // virtual instant under simulation, and the admission decision must
        // replay deterministically by seed.
        let now = sss_vclock::runtime::now();
        self.writes
            .iter()
            .any(|w| w.sid > sid && now.saturating_duration_since(w.since) >= threshold)
    }

    /// Removes every entry (read or write) belonging to `txn`. Returns `true`
    /// if something was removed.
    pub fn remove(&mut self, txn: TxnId) -> bool {
        let before = self.reads.len() + self.writes.len();
        self.reads.retain(|e| e.txn != txn);
        self.writes.retain(|e| e.txn != txn);
        before != self.reads.len() + self.writes.len()
    }

    /// Removes only the write entry of `txn` (done at external commit,
    /// Algorithm 4 line 4). Returns `true` if it was present.
    pub fn remove_write(&mut self, txn: TxnId) -> bool {
        let before = self.writes.len();
        self.writes.retain(|e| e.txn != txn);
        before != self.writes.len()
    }

    /// `true` if a read-only entry with insertion-snapshot strictly smaller
    /// than `sid` exists — the condition that keeps an update transaction in
    /// its Pre-Commit phase (Algorithm 4 / §III-B External Commit).
    pub fn has_read_before(&self, sid: u64) -> bool {
        self.reads.first().map(|e| e.sid < sid).unwrap_or(false)
    }

    /// Read-only entries, ordered by insertion-snapshot.
    pub fn reads(&self) -> &[ReadEntry] {
        &self.reads
    }

    /// Update entries, ordered by insertion-snapshot.
    pub fn writes(&self) -> &[WriteEntry] {
        &self.writes
    }

    /// `true` when the queue holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }
}

/// All snapshot-queues of one node, keyed by the local keys that have (or
/// recently had) concurrent accesses.
///
/// Queues are created lazily and garbage-collected as soon as they become
/// empty — the "positive side effect of the Remove message" described in
/// §III-E.
#[derive(Debug, Default)]
pub struct SnapshotQueues {
    queues: HashMap<Key, SnapshotQueue>,
}

impl SnapshotQueues {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SnapshotQueues::default()
    }

    /// The queue of `key`, if it currently has entries.
    pub fn get(&self, key: &Key) -> Option<&SnapshotQueue> {
        self.queues.get(key)
    }

    /// Mutable access to the queue of `key`, creating it if absent.
    pub fn entry(&mut self, key: &Key) -> &mut SnapshotQueue {
        self.queues.entry(key.clone()).or_default()
    }

    /// Removes every entry of `txn` from every queue, dropping queues that
    /// become empty. Returns the number of queues that were modified.
    pub fn remove_txn_everywhere(&mut self, txn: TxnId) -> usize {
        let mut touched = 0;
        self.queues.retain(|_, q| {
            if q.remove(txn) {
                touched += 1;
            }
            !q.is_empty()
        });
        touched
    }

    /// Removes the write entry of `txn` from the queues of `keys`.
    pub fn remove_write_entries<'a>(
        &mut self,
        txn: TxnId,
        keys: impl IntoIterator<Item = &'a Key>,
    ) {
        for key in keys {
            if let Some(q) = self.queues.get_mut(key) {
                q.remove_write(txn);
                if q.is_empty() {
                    self.queues.remove(key);
                }
            }
        }
    }

    /// Number of keys that currently have a non-empty queue.
    pub fn active_queues(&self) -> usize {
        self.queues.len()
    }

    /// Total number of entries across all queues.
    pub fn total_entries(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_vclock::NodeId;

    fn txn(node: usize, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    fn vc(entries: &[u64]) -> VectorClock {
        VectorClock::from_entries(entries.to_vec())
    }

    #[test]
    fn entries_are_ordered_by_insertion_snapshot() {
        let mut q = SnapshotQueue::new();
        q.insert_read(txn(0, 2), 9);
        q.insert_read(txn(0, 1), 7);
        q.insert_write(txn(1, 1), 8, vc(&[3, 8]));
        assert_eq!(q.reads()[0].sid, 7);
        assert_eq!(q.reads()[1].sid, 9);
        assert_eq!(q.writes()[0].sid, 8);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn paper_figure_1_wait_condition() {
        // Q(y) = {<T1, 7, "R">, <T2, 8, "W">}: T2 must wait because a
        // read-only entry with a smaller insertion-snapshot exists.
        let mut q = SnapshotQueue::new();
        q.insert_read(txn(0, 1), 7);
        q.insert_write(txn(1, 2), 8, vc(&[3, 8]));
        assert!(q.has_read_before(8));
        // After T1's Remove, T2 can commit externally.
        assert!(q.remove(txn(0, 1)));
        assert!(!q.has_read_before(8));
    }

    #[test]
    fn read_only_with_higher_snapshot_does_not_block() {
        let mut q = SnapshotQueue::new();
        q.insert_read(txn(0, 1), 12);
        assert!(!q.has_read_before(8));
    }

    #[test]
    fn duplicate_read_insertions_keep_smallest_sid() {
        let mut q = SnapshotQueue::new();
        q.insert_read(txn(0, 1), 9);
        q.insert_read(txn(0, 1), 7);
        q.insert_read(txn(0, 1), 11);
        assert_eq!(q.reads().len(), 1);
        assert_eq!(q.reads()[0].sid, 7);
    }

    #[test]
    fn remove_write_keeps_read_entries() {
        let mut q = SnapshotQueue::new();
        q.insert_read(txn(0, 1), 7);
        q.insert_write(txn(1, 1), 8, vc(&[1, 8]));
        assert!(q.remove_write(txn(1, 1)));
        assert!(!q.remove_write(txn(1, 1)));
        assert_eq!(q.reads().len(), 1);
    }

    #[test]
    fn registry_garbage_collects_empty_queues() {
        let mut queues = SnapshotQueues::new();
        let x = Key::new("x");
        let y = Key::new("y");
        queues.entry(&x).insert_read(txn(0, 1), 7);
        queues.entry(&y).insert_read(txn(0, 1), 7);
        queues.entry(&y).insert_write(txn(1, 1), 9, vc(&[0, 9]));
        assert_eq!(queues.active_queues(), 2);
        assert_eq!(queues.total_entries(), 3);

        let touched = queues.remove_txn_everywhere(txn(0, 1));
        assert_eq!(touched, 2);
        // x's queue became empty and was dropped; y still holds the writer.
        assert!(queues.get(&x).is_none());
        assert_eq!(queues.get(&y).unwrap().writes().len(), 1);

        queues.remove_write_entries(txn(1, 1), [&y]);
        assert_eq!(queues.active_queues(), 0);
    }
}
