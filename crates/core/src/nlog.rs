//! The per-node commit repository (`NLog`).
//!
//! When an update transaction completes its internal commit on a node, its
//! commit vector clock is appended to the node's `NLog`; "we identify the
//! most recent vc in the NLog as NLog.mostRecentVC" (paper §III-A). The log
//! is the source of:
//!
//! * the initial visibility bound of transactions beginning on this node,
//! * the visibility wait of Algorithm 6 line 5
//!   (`NLog.mostRecentVC[i] >= T.VC[i]`),
//! * the `VisibleSet` / `maxVC` computation of Algorithm 6 lines 6-9.
//!
//! We maintain `mostRecentVC` as the entry-wise maximum of every vector
//! clock ever appended; it is monotone and dominates the last appended
//! entry, which is exactly what the two waits above need.

use std::collections::VecDeque;
use std::sync::Arc;

use sss_storage::TxnId;
use sss_vclock::VectorClock;

/// One internal-commit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NLogEntry {
    /// The committing transaction.
    pub txn: TxnId,
    /// Its commit vector clock, shared (`Arc`) with the versions the
    /// transaction installed.
    pub vc: Arc<VectorClock>,
}

/// The ordered log of internal commits of one node.
#[derive(Debug, Clone)]
pub struct NLog {
    entries: VecDeque<NLogEntry>,
    most_recent: VectorClock,
    capacity: usize,
    appended: u64,
}

impl NLog {
    /// Creates an empty log for a cluster of `width` nodes, retaining at
    /// most `capacity` individual entries for the `VisibleSet` computation.
    ///
    /// `mostRecentVC` is exact regardless of the capacity; only the
    /// per-entry scan used when a transaction has already read from some
    /// nodes is bounded by it. The default capacity used by the cluster
    /// configuration is large enough that pruning never occurs in the tests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(width: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "NLog capacity must be non-zero");
        NLog {
            entries: VecDeque::new(),
            most_recent: VectorClock::new(width),
            capacity,
            appended: 0,
        }
    }

    /// Appends the commit vector clock of `txn` (Algorithm 2, line 33).
    pub fn add(&mut self, txn: TxnId, vc: impl Into<Arc<VectorClock>>) {
        let vc = vc.into();
        self.most_recent.merge(&vc);
        self.entries.push_back(NLogEntry { txn, vc });
        self.appended += 1;
        if self.entries.len() > self.capacity {
            self.entries.pop_front();
        }
    }

    /// `NLog.mostRecentVC`: the entry-wise maximum over every appended
    /// commit vector clock.
    pub fn most_recent_vc(&self) -> &VectorClock {
        &self.most_recent
    }

    /// Computes `maxVC` for a read-only transaction's first read on this
    /// node (Algorithm 6, lines 6-9).
    ///
    /// * `has_read[w]` constrains visibility on nodes the transaction has
    ///   already read from: only entries with `vc[w] <= bound[w]` are
    ///   visible.
    /// * `excluded` lists the commit vector clocks of update transactions
    ///   that are still in their Pre-Commit phase with an insertion-snapshot
    ///   beyond the transaction's bound; their entries — and the entries of
    ///   every transaction whose clock dominates one of them (a dependent
    ///   later writer) — are removed from the visible set.
    ///
    /// Returns the entry-wise maximum over the remaining visible entries
    /// (the zero clock if nothing is visible).
    pub fn visible_max(
        &self,
        has_read: &[bool],
        bound: &VectorClock,
        excluded: &[Arc<VectorClock>],
    ) -> VectorClock {
        let unconstrained = !has_read.iter().any(|b| *b);
        if unconstrained && excluded.is_empty() {
            // Fast path: every entry is visible, so the running maximum is
            // exact even if old entries were pruned.
            return self.most_recent.clone();
        }
        let mut max = VectorClock::new(self.most_recent.width());
        for entry in &self.entries {
            let visible = has_read
                .iter()
                .enumerate()
                .all(|(w, read)| !*read || entry.vc.get(w) <= bound.get(w));
            if !visible {
                continue;
            }
            // Exclusion ceilings share their clocks with squeue write
            // entries; an entry at or above any ceiling (the excluded
            // writer itself, or a later writer that depends on it) stays
            // out of the visible set.
            if excluded.iter().any(|e| entry.vc.dominates(e)) {
                continue;
            }
            max.merge(&entry.vc);
        }
        max
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no commit has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.appended == 0
    }

    /// Total number of internal commits recorded on this node.
    pub fn total_commits(&self) -> u64 {
        self.appended
    }

    /// Iterates over the retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &NLogEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_vclock::NodeId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    fn vc(entries: &[u64]) -> VectorClock {
        VectorClock::from_entries(entries.to_vec())
    }

    #[test]
    fn most_recent_is_entrywise_max() {
        let mut log = NLog::new(2, 16);
        assert!(log.is_empty());
        log.add(txn(1), vc(&[5, 4]));
        log.add(txn(2), vc(&[3, 7]));
        assert_eq!(log.most_recent_vc(), &vc(&[5, 7]));
        assert!(!log.is_empty());
        assert_eq!(log.total_commits(), 2);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn visible_max_without_constraints_sees_everything() {
        let mut log = NLog::new(2, 16);
        log.add(txn(1), vc(&[5, 4]));
        log.add(txn(2), vc(&[3, 7]));
        let max = log.visible_max(&[false, false], &vc(&[0, 0]), &[]);
        assert_eq!(max, vc(&[5, 7]));
    }

    #[test]
    fn visible_max_respects_has_read_bound() {
        let mut log = NLog::new(2, 16);
        log.add(txn(1), vc(&[5, 4]));
        log.add(txn(2), vc(&[6, 9]));
        // The transaction already read from node 1 with bound 4: the entry
        // with vc[1] = 9 is beyond its visibility bound.
        let max = log.visible_max(&[false, true], &vc(&[0, 4]), &[]);
        assert_eq!(max, vc(&[5, 4]));
    }

    #[test]
    fn visible_max_excludes_pre_committing_writers() {
        let mut log = NLog::new(2, 16);
        log.add(txn(1), vc(&[5, 4]));
        log.add(txn(2), vc(&[6, 9]));
        let excluded = vec![Arc::new(vc(&[6, 9]))];
        let max = log.visible_max(&[false, true], &vc(&[0, 9]), &excluded);
        assert_eq!(max, vc(&[5, 4]));
    }

    #[test]
    fn visible_max_of_empty_log_is_zero() {
        let log = NLog::new(3, 4);
        assert_eq!(
            log.visible_max(&[true, false, false], &vc(&[9, 9, 9]), &[]),
            vc(&[0, 0, 0])
        );
    }

    #[test]
    fn pruning_keeps_most_recent_exact() {
        let mut log = NLog::new(1, 4);
        for i in 1..=10 {
            log.add(txn(i), vc(&[i]));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.total_commits(), 10);
        assert_eq!(log.most_recent_vc(), &vc(&[10]));
        // The unconstrained fast path is unaffected by pruning.
        assert_eq!(log.visible_max(&[false], &vc(&[0]), &[]), vc(&[10]));
        let oldest_retained = log.iter().next().unwrap().vc.get(0);
        assert_eq!(oldest_retained, 7);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = NLog::new(1, 0);
    }
}
