//! Cluster configuration.

use std::sync::Arc;
use std::time::Duration;

use sss_faults::{FaultInjector, FaultPlan};
use sss_net::LatencyModel;
use sss_obs::ObsHub;
use sss_storage::ReplicaMap;
use sss_vclock::runtime::SchedulerHandle;

/// Default epoch window of the grouped external-commit confirmation: up to
/// this many update transactions share one `ConfirmExternal` round.
pub const DEFAULT_CONFIRM_EPOCH: usize = 32;

/// Default leader linger between consecutive grouped confirmation rounds of
/// one burst (see [`SssConfig::confirm_linger`]).
pub const DEFAULT_CONFIRM_LINGER: Duration = Duration::from_micros(800);

/// Configuration of an [`SssCluster`](crate::SssCluster).
///
/// The defaults mirror the paper's evaluation setup where applicable: every
/// key is replicated on two nodes, the 2PC lock-acquisition timeout is 1ms
/// (paper §V), and clients are colocated with nodes.
#[derive(Debug, Clone)]
pub struct SssConfig {
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Replication degree (replicas per key).
    pub replication: usize,
    /// Worker threads per node draining the priority mailbox.
    pub workers_per_node: usize,
    /// Lock-acquisition timeout used during the 2PC prepare phase.
    pub lock_timeout: Duration,
    /// How long a coordinator waits for 2PC votes before aborting.
    pub vote_timeout: Duration,
    /// How long a read operation waits for the fastest replica.
    pub read_timeout: Duration,
    /// How long a coordinator waits for external-commit acknowledgements.
    /// This covers the snapshot-queue wait of the Pre-Commit phase, so it is
    /// deliberately generous.
    pub ack_timeout: Duration,
    /// One-way network latency model.
    pub latency: LatencyModel,
    /// Seed for latency sampling.
    pub seed: u64,
    /// Number of internal-commit records each node retains for the
    /// `VisibleSet` computation.
    pub nlog_capacity: usize,
    /// Versions retained per key before garbage collection trims the chain.
    pub versions_per_key: usize,
    /// Starvation admission control (paper §III-E): a read-only read that
    /// would serialize before an update transaction which has already been
    /// waiting in a snapshot-queue for this long is briefly delayed.
    pub admission_threshold: Duration,
    /// Base delay of the exponential back-off applied by the admission
    /// control; doubled on every retry.
    pub admission_backoff: Duration,
    /// Maximum number of back-off rounds before the read proceeds anyway.
    pub admission_max_retries: u32,
    /// Upper bound on the Pre-Commit hold: an update transaction held in a
    /// snapshot-queue by slower read-only transactions externally commits
    /// anyway once it has waited this long. Bounding the hold cannot break
    /// strict serializability — a reader whose entry blocks a writer has a
    /// pinned snapshot that can never cover that writer, so it will not
    /// observe it later — but it breaks wait cycles between writers held by
    /// parked readers and readers parked on unconfirmed writers.
    // TODO(protocol): replace the bound with proper wait-cycle avoidance
    // (e.g. client-side exclusion sets) so the paper's strict
    // completion-order property also holds unconditionally.
    pub precommit_hold_max: Duration,
    /// Optional fault injector interposed on the cluster transport and
    /// attached to the per-node pause gates. Inert until armed — see
    /// [`SssConfig::faults`].
    pub fault_injector: Option<Arc<FaultInjector>>,
    /// Shard arity of every node's storage structures (multi-version store
    /// and lock table). Rounded up to a power of two; higher values reduce
    /// contention between a node's worker threads at a small memory cost.
    pub storage_shards: usize,
    /// Messages a node worker drains from its mailbox per wakeup (clamped
    /// to at least 1). Batch size 1 reproduces one-message-per-wakeup
    /// delivery; larger values amortize the per-message wakeup and lock
    /// cost under load without affecting protocol behaviour.
    pub delivery_batch: usize,
    /// Maximum number of update transactions covered by one grouped
    /// `ConfirmExternal` round (the coordinator *epoch window*). Values `<=
    /// 1` disable grouping entirely and reproduce the per-transaction
    /// confirmation round of the base protocol. Grouping is self-clocking:
    /// a round covers whatever pre-committed while the previous round was
    /// in flight (up to this bound), so idle clusters pay no added latency
    /// and loaded ones amortize one broadcast over the whole window.
    pub confirm_epoch_max: usize,
    /// Whether `ReleaseExternal` and read-only `Remove` traffic piggybacks
    /// on the next grouped `ConfirmExternal` round instead of travelling as
    /// dedicated messages. Only meaningful when `confirm_epoch_max > 1`;
    /// disable for A/B measurement of the piggyback alone.
    pub piggyback: bool,
    /// How long a round leader waits between consecutive rounds of one
    /// burst before launching the next (under-full) round, letting more
    /// committers join and giving piggybacked releases a carrier. Applied
    /// only *after* the leader's first round — a lone committer on an idle
    /// coordinator still confirms immediately, so uncontended latency is
    /// unchanged. Zero disables lingering; values are only meaningful when
    /// `confirm_epoch_max > 1`.
    pub confirm_linger: Duration,
    /// Optional observability hub: when set, client sessions carry a
    /// phase trace through every transaction (spans recorded into the
    /// hub's per-node trace rings and per-phase latency histograms). When
    /// `None` — the default — every instrumentation site reduces to one
    /// branch, keeping the tracing-off cost near zero.
    pub observability: Option<Arc<ObsHub>>,
    /// Force-enables the transport's reliable-delivery layer (per-link
    /// sequence numbers, ack/retransmit with seeded backoff, receiver-side
    /// dedup — see [`sss_net::ReliabilityConfig`]). Off by default: the
    /// bare transport never loses messages, and leaving the layer off keeps
    /// the handler-level idempotency guards exercised by duplicate faults.
    /// The cluster enables the layer automatically whenever its fault
    /// plan expresses message loss or crash windows
    /// ([`sss_faults::FaultPlan::needs_reliable_delivery`]), regardless of
    /// this flag.
    pub reliable_delivery: bool,
    /// How long a restarting node waits for its peers' `StateReply` before
    /// coming back available anyway. Peer answers re-establish the node's
    /// `confirmed_vc` (wiped by the crash); a peer that is itself down when
    /// asked simply does not answer within the timeout.
    pub recovery_timeout: Duration,
    /// Upper bound on how long an externally-committed transaction may sit
    /// in `pending_global` (parking read-only reads on its versions) without
    /// its coordinator's `ReleaseExternal` arriving. The release is volatile
    /// coordinator state: a crash can swallow it after the confirmation
    /// round already completed (the grouped coalescer buffers releases for
    /// piggybacking, and a crash-stop reset drops that buffer), and without
    /// a bound every read selecting such a writer's version parks, times
    /// out and re-parks forever. Expiring the entry is safe by then: the
    /// coordinator's confirmation phase is itself bounded by `ack_timeout`,
    /// so once this (longer) hold elapses the writer's client has either
    /// been answered long ago or received the degraded
    /// `ExternalCommitTimeout` — in both cases serving the version cannot
    /// precede the client response. Mirrors `precommit_hold_max`: a
    /// liveness valve for state whose owner died, swept by read traffic.
    pub pending_global_hold_max: Duration,
    /// How many times a client operation retries (with capped backoff)
    /// against a down colocated node before surfacing
    /// [`SssError::NodeUnavailable`](crate::SssError::NodeUnavailable).
    /// Sized so the retries ride out a typical scheduled crash window.
    pub unavailable_retry_max: u32,
    /// Optional deterministic-simulation scheduler (see `sss-sim`). When
    /// set, the transport delivers messages as virtual-time events, node
    /// workers run as cooperative simulation tasks, and any fault plan's
    /// windows are scheduled on the virtual clock. When `None` — the
    /// default — the cluster runs on real threads and the wall clock.
    pub scheduler: Option<SchedulerHandle>,
}

impl SssConfig {
    /// Configuration for a cluster of `nodes` nodes with the paper's
    /// defaults.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        SssConfig {
            nodes,
            replication: 2.min(nodes),
            workers_per_node: 4,
            lock_timeout: Duration::from_millis(1),
            vote_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(1),
            ack_timeout: Duration::from_secs(10),
            latency: LatencyModel::ZERO,
            seed: 0,
            nlog_capacity: 4096,
            versions_per_key: 64,
            admission_threshold: Duration::from_millis(2),
            admission_backoff: Duration::from_micros(250),
            admission_max_retries: 5,
            precommit_hold_max: Duration::from_millis(250),
            fault_injector: None,
            storage_shards: sss_storage::DEFAULT_SHARDS,
            delivery_batch: sss_net::DEFAULT_DELIVERY_BATCH,
            confirm_epoch_max: DEFAULT_CONFIRM_EPOCH,
            piggyback: true,
            confirm_linger: DEFAULT_CONFIRM_LINGER,
            observability: None,
            reliable_delivery: false,
            recovery_timeout: Duration::from_secs(1),
            pending_global_hold_max: Duration::from_secs(30),
            unavailable_retry_max: 100,
            scheduler: None,
        }
    }

    /// Runs the cluster under `plan`: a [`FaultInjector`] is created,
    /// interposed on the transport and attached to every node's pause gate.
    ///
    /// The plan is **inert until armed**: call
    /// [`SssCluster::fault_injector`](crate::SssCluster::fault_injector)
    /// and [`FaultInjector::arm`] once the cluster is populated, so the
    /// plan's scheduled windows cover the measured phase instead of the
    /// warm-up. Cluster shutdown disarms the injector.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.fault_injector = Some(FaultInjector::new(plan));
        self
    }

    /// Like [`SssConfig::faults`] but with a caller-owned injector, so a
    /// harness can keep the handle and arm it at the right moment.
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.fault_injector = Some(injector);
        self
    }

    /// Sets the replication degree.
    pub fn replication(mut self, degree: usize) -> Self {
        self.replication = degree;
        self
    }

    /// Sets the number of worker threads per node.
    pub fn workers_per_node(mut self, workers: usize) -> Self {
        self.workers_per_node = workers;
        self
    }

    /// Sets the 2PC lock-acquisition timeout.
    pub fn lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// Sets the network latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the random seed used by the latency model.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the shard arity of every node's storage structures (rounded up
    /// to a power of two at construction).
    pub fn storage_shards(mut self, shards: usize) -> Self {
        self.storage_shards = shards;
        self
    }

    /// Sets the per-wakeup mailbox delivery batch size of every node's
    /// workers (clamped to at least 1).
    pub fn delivery_batch(mut self, batch: usize) -> Self {
        self.delivery_batch = batch;
        self
    }

    /// Sets the epoch window of the grouped external-commit confirmation
    /// (`<= 1` disables grouping, reproducing per-transaction rounds).
    pub fn confirm_epoch_max(mut self, window: usize) -> Self {
        self.confirm_epoch_max = window;
        self
    }

    /// Enables or disables piggybacking release/remove traffic on grouped
    /// confirmation rounds.
    pub fn piggyback(mut self, enabled: bool) -> Self {
        self.piggyback = enabled;
        self
    }

    /// Sets the leader linger between consecutive grouped confirmation
    /// rounds of one burst (zero disables lingering).
    pub fn confirm_linger(mut self, linger: Duration) -> Self {
        self.confirm_linger = linger;
        self
    }

    /// Attaches an observability hub: sessions trace protocol phases into
    /// its rings and histograms (see [`sss_obs::ObsHub`]).
    pub fn observability(mut self, hub: Arc<ObsHub>) -> Self {
        self.observability = Some(hub);
        self
    }

    /// Force-enables the transport's reliable-delivery layer (see the
    /// field documentation; plans with loss or crash windows enable it
    /// automatically).
    pub fn reliable_delivery(mut self, enabled: bool) -> Self {
        self.reliable_delivery = enabled;
        self
    }

    /// Sets how long a restarting node waits for peer `StateReply` answers
    /// before coming back available.
    pub fn recovery_timeout(mut self, timeout: Duration) -> Self {
        self.recovery_timeout = timeout;
        self
    }

    /// Sets the client-side retry budget against a down colocated node.
    pub fn unavailable_retry_max(mut self, retries: u32) -> Self {
        self.unavailable_retry_max = retries;
        self
    }

    /// Runs the cluster under a deterministic-simulation scheduler: message
    /// delivery, worker execution and every protocol timeout move in virtual
    /// time (see `sss-sim`).
    pub fn scheduler(mut self, scheduler: SchedulerHandle) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Builds the key-placement map described by this configuration.
    pub fn replica_map(&self) -> ReplicaMap {
        ReplicaMap::new(self.nodes, self.replication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let cfg = SssConfig::new(5);
        assert_eq!(cfg.nodes, 5);
        assert_eq!(cfg.replication, 2);
        assert_eq!(cfg.storage_shards, sss_storage::DEFAULT_SHARDS);
        assert_eq!(cfg.lock_timeout, Duration::from_millis(1));
        assert!(cfg.latency.is_zero());
        assert_eq!(cfg.replica_map().degree(), 2);
        assert_eq!(cfg.confirm_epoch_max, DEFAULT_CONFIRM_EPOCH);
        assert!(cfg.piggyback);
        assert_eq!(cfg.confirm_linger, DEFAULT_CONFIRM_LINGER);
    }

    #[test]
    fn single_node_cluster_caps_replication() {
        let cfg = SssConfig::new(1);
        assert_eq!(cfg.replication, 1);
    }

    #[test]
    fn builder_methods_override_defaults() {
        let cfg = SssConfig::new(4)
            .replication(3)
            .workers_per_node(2)
            .lock_timeout(Duration::from_millis(5))
            .latency(LatencyModel::cloudlab_like())
            .seed(99);
        assert_eq!(cfg.replication, 3);
        assert_eq!(cfg.workers_per_node, 2);
        assert_eq!(cfg.lock_timeout, Duration::from_millis(5));
        assert_eq!(cfg.seed, 99);
        assert!(!cfg.latency.is_zero());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = SssConfig::new(0);
    }

    #[test]
    fn fault_plans_create_an_inert_injector() {
        let cfg = SssConfig::new(2).faults(FaultPlan::new(3));
        let injector = cfg.fault_injector.as_ref().expect("injector created");
        assert!(!injector.is_armed(), "plans must stay inert until armed");
        assert!(SssConfig::new(2).fault_injector.is_none());
    }
}
