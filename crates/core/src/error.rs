//! Error types of the SSS client API.

use sss_storage::Key;

/// Why an update transaction aborted.
///
/// Read-only transactions never abort due to concurrency (paper §I); only
/// update transactions can fail, and only at commit time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// A participant could not acquire the required locks within the lock
    /// timeout (contention / deadlock avoidance, §III-E).
    LockTimeout,
    /// Commit-time validation failed: a read key was overwritten by a
    /// concurrent transaction (Algorithm 1, `validate`).
    ValidationFailed {
        /// The stale key, when the participant reported it.
        key: Option<Key>,
    },
    /// A participant did not vote before the coordinator's vote timeout.
    VoteTimeout,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::LockTimeout => write!(f, "lock acquisition timed out"),
            AbortReason::ValidationFailed { key: Some(k) } => {
                write!(f, "validation failed: key {k} was overwritten")
            }
            AbortReason::ValidationFailed { key: None } => write!(f, "validation failed"),
            AbortReason::VoteTimeout => write!(f, "a participant did not vote in time"),
        }
    }
}

/// Errors surfaced by the SSS client API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SssError {
    /// The transaction aborted; it can simply be retried.
    Aborted(AbortReason),
    /// A read did not receive any replica response in time.
    ReadTimeout {
        /// The key being read.
        key: Key,
    },
    /// The external-commit acknowledgement did not arrive in time. The
    /// transaction *is* internally committed; the client must not assume
    /// its position in the external schedule.
    ExternalCommitTimeout,
    /// The cluster has been shut down.
    ClusterShutdown,
    /// The session's colocated node is down (inside a crash window, or
    /// restarted but not yet recovered from its peers) and stayed down
    /// through the client's bounded retries. The transaction performed no
    /// work; the client may retry later against the same session or open a
    /// session on another node.
    NodeUnavailable,
    /// The operation is not valid in the transaction's current state (e.g.
    /// writing inside a read-only transaction).
    InvalidOperation(&'static str),
}

impl SssError {
    /// `true` if the error is a transient abort that the client may retry.
    pub fn is_abort(&self) -> bool {
        matches!(self, SssError::Aborted(_))
    }

    /// `true` if the error reports a down (crashed or recovering) node.
    pub fn is_unavailable(&self) -> bool {
        matches!(self, SssError::NodeUnavailable)
    }
}

impl std::fmt::Display for SssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SssError::Aborted(reason) => write!(f, "transaction aborted: {reason}"),
            SssError::ReadTimeout { key } => write!(f, "read of key {key} timed out"),
            SssError::ExternalCommitTimeout => {
                write!(f, "external commit acknowledgement timed out")
            }
            SssError::ClusterShutdown => write!(f, "cluster has been shut down"),
            SssError::NodeUnavailable => {
                write!(f, "colocated node is down (crashed or recovering)")
            }
            SssError::InvalidOperation(what) => write!(f, "invalid operation: {what}"),
        }
    }
}

impl std::error::Error for SssError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_classification() {
        assert!(SssError::Aborted(AbortReason::LockTimeout).is_abort());
        assert!(!SssError::ClusterShutdown.is_abort());
    }

    #[test]
    fn display_messages_are_informative() {
        let e = SssError::Aborted(AbortReason::ValidationFailed {
            key: Some(Key::new("account-7")),
        });
        assert!(e.to_string().contains("account-7"));
        assert!(SssError::Aborted(AbortReason::VoteTimeout)
            .to_string()
            .contains("vote"));
        assert!(SssError::ReadTimeout { key: Key::new("x") }
            .to_string()
            .contains("x"));
        assert!(SssError::InvalidOperation("write in read-only txn")
            .to_string()
            .contains("read-only"));
        assert!(!SssError::ExternalCommitTimeout.to_string().is_empty());
        assert!(!SssError::ClusterShutdown.to_string().is_empty());
        assert!(!AbortReason::ValidationFailed { key: None }
            .to_string()
            .is_empty());
        assert!(!AbortReason::LockTimeout.to_string().is_empty());
    }
}
