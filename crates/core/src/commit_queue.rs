//! The per-node commit queue (`CommitQ`).
//!
//! "CommitQ is an ordered queue, one per node, which is used by SSS to
//! ensure that non-conflicting transactions are ordered in the same way on
//! the nodes where they commit" (paper §III-A). A transaction enters the
//! queue as *pending* during the 2PC prepare phase and becomes *ready* when
//! the Decide message carries its final commit vector clock; transactions
//! are applied (internal commit) strictly in the order of their commit
//! vector clock entry for this node, and only when they reach the head.

use sss_storage::TxnId;
use sss_vclock::VectorClock;

/// Status of a transaction in the commit queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitStatus {
    /// Prepared (voted) but the commit decision has not arrived yet.
    Pending,
    /// Commit decision received; waiting to reach the head of the queue.
    Ready,
}

/// One entry of the commit queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitEntry {
    /// The update transaction.
    pub txn: TxnId,
    /// Its (proposed or final) commit vector clock.
    pub vc: VectorClock,
    /// Whether the final decision has been received.
    pub status: CommitStatus,
}

/// The ordered commit queue of one node.
///
/// Entries are ordered by `vc[i]` (the entry of this node), with the
/// transaction identifier as a deterministic tie-breaker.
#[derive(Debug, Clone, Default)]
pub struct CommitQueue {
    node_index: usize,
    entries: Vec<CommitEntry>,
}

impl CommitQueue {
    /// Creates the commit queue of node `node_index`.
    pub fn new(node_index: usize) -> Self {
        CommitQueue {
            node_index,
            entries: Vec::new(),
        }
    }

    fn sort_key(&self, entry: &CommitEntry) -> (u64, TxnId) {
        (entry.vc.get(self.node_index), entry.txn)
    }

    fn resort(&mut self) {
        let idx = self.node_index;
        self.entries.sort_by_key(|e| (e.vc.get(idx), e.txn));
    }

    /// Inserts a transaction with its proposed vector clock as *pending*
    /// (Algorithm 2, line 11).
    pub fn put(&mut self, txn: TxnId, vc: VectorClock) {
        debug_assert!(
            !self.entries.iter().any(|e| e.txn == txn),
            "transaction {txn} inserted twice into CommitQ"
        );
        self.entries.push(CommitEntry {
            txn,
            vc,
            status: CommitStatus::Pending,
        });
        self.resort();
    }

    /// Updates a transaction to *ready* with its final commit vector clock,
    /// repositioning it in the queue (Algorithm 2, line 20).
    ///
    /// Returns `false` if the transaction is not in the queue (e.g. it was
    /// already removed by an abort).
    pub fn update(&mut self, txn: TxnId, vc: VectorClock) -> bool {
        let Some(entry) = self.entries.iter_mut().find(|e| e.txn == txn) else {
            return false;
        };
        entry.vc = vc;
        entry.status = CommitStatus::Ready;
        self.resort();
        true
    }

    /// Removes a transaction (abort path, Algorithm 2 line 25). Returns
    /// `true` if it was present.
    pub fn remove(&mut self, txn: TxnId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.txn != txn);
        before != self.entries.len()
    }

    /// The current head of the queue, if any.
    pub fn head(&self) -> Option<&CommitEntry> {
        self.entries.first()
    }

    /// Pops the head if (and only if) it is *ready* — the trigger of the
    /// "upon head ∧ ready" rule (Algorithm 2, lines 29-36).
    pub fn pop_ready_head(&mut self) -> Option<CommitEntry> {
        match self.entries.first() {
            Some(e) if e.status == CommitStatus::Ready => Some(self.entries.remove(0)),
            _ => None,
        }
    }

    /// Number of queued transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no transaction is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in queue order (for diagnostics).
    pub fn entries(&self) -> &[CommitEntry] {
        debug_assert!(self
            .entries
            .windows(2)
            .all(|w| self.sort_key(&w[0]) <= self.sort_key(&w[1])));
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_vclock::NodeId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    fn vc(entries: &[u64]) -> VectorClock {
        VectorClock::from_entries(entries.to_vec())
    }

    #[test]
    fn ordering_follows_the_local_vc_entry() {
        let mut q = CommitQueue::new(1);
        q.put(txn(1), vc(&[0, 9]));
        q.put(txn(2), vc(&[0, 4]));
        q.put(txn(3), vc(&[0, 7]));
        let order: Vec<u64> = q.entries().iter().map(|e| e.vc.get(1)).collect();
        assert_eq!(order, vec![4, 7, 9]);
        assert_eq!(q.head().unwrap().txn, txn(2));
    }

    #[test]
    fn pending_head_blocks_ready_followers() {
        let mut q = CommitQueue::new(0);
        q.put(txn(1), vc(&[3]));
        q.put(txn(2), vc(&[5]));
        assert!(q.update(txn(2), vc(&[5])));
        // txn(1) is still pending at the head, so nothing pops.
        assert!(q.pop_ready_head().is_none());
        assert!(q.update(txn(1), vc(&[3])));
        assert_eq!(q.pop_ready_head().unwrap().txn, txn(1));
        assert_eq!(q.pop_ready_head().unwrap().txn, txn(2));
        assert!(q.is_empty());
    }

    #[test]
    fn decide_can_reposition_a_transaction() {
        // The final commit vector clock may be larger than the proposed one
        // (Algorithm 1 computes the max across participants), which can move
        // the transaction behind a later-prepared one.
        let mut q = CommitQueue::new(0);
        q.put(txn(1), vc(&[4]));
        q.put(txn(2), vc(&[5]));
        assert!(q.update(txn(1), vc(&[8])));
        let order: Vec<TxnId> = q.entries().iter().map(|e| e.txn).collect();
        assert_eq!(order, vec![txn(2), txn(1)]);
    }

    #[test]
    fn remove_handles_aborts() {
        let mut q = CommitQueue::new(0);
        q.put(txn(1), vc(&[4]));
        assert!(q.remove(txn(1)));
        assert!(!q.remove(txn(1)));
        assert!(q.is_empty());
        // Updating a removed transaction is a no-op.
        assert!(!q.update(txn(1), vc(&[4])));
    }

    #[test]
    fn ties_are_broken_deterministically_by_txn_id() {
        let mut q = CommitQueue::new(0);
        q.put(txn(7), vc(&[5]));
        q.put(txn(3), vc(&[5]));
        let order: Vec<TxnId> = q.entries().iter().map(|e| e.txn).collect();
        assert_eq!(order, vec![txn(3), txn(7)]);
        assert_eq!(q.len(), 2);
    }
}
