//! # SSS concurrency control
//!
//! A from-scratch implementation of **SSS** (Kishi, Peluso, Korth, Palmieri —
//! ICDCS 2019): a scalable transactional key-value store whose distributed
//! concurrency control provides *external consistency* for all transactions
//! and *abort-free* read-only transactions, without specialized hardware
//! (no TrueTime), without a centralized synchronization source, and without
//! ordering communication primitives.
//!
//! ## How it works (paper §III)
//!
//! * Every node keeps a vector clock (`NodeVC`), a log of internally
//!   committed transactions (`NLog`) and a commit queue (`CommitQ`) that
//!   orders transactions by their commit vector clock entry for that node.
//! * Every key keeps a **snapshot-queue**: read-only transactions enqueue at
//!   read time, update transactions enqueue after their commit decision.
//!   Entries carry an *insertion-snapshot*; transactions with lesser
//!   insertion-snapshots serialize before conflicting ones with higher
//!   insertion-snapshots.
//! * Update transactions commit in three stages: **internal commit** (2PC,
//!   written versions become visible), **pre-commit** (the transaction sits
//!   in the snapshot-queues of its written keys while concurrent read-only
//!   transactions that must serialize before it are still running) and
//!   **external commit** (the client is finally answered). Delaying only the
//!   *client response* — not the visibility of the written data — is what
//!   lets SSS keep its throughput while guaranteeing that the order of
//!   client-observed completions matches the serialization order.
//! * Read-only transactions never abort and never block update transactions;
//!   their reads select versions within a vector-clock visibility bound and
//!   exclude writers that are still in their pre-commit phase beyond that
//!   bound.
//!
//! ## Quick example
//!
//! ```rust
//! use sss_core::{SssCluster, SssConfig};
//! use sss_storage::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = SssCluster::start(SssConfig::new(4).replication(2))?;
//! let session = cluster.session(0);
//!
//! let mut t = session.begin_update();
//! t.write("x", Value::from_u64(1));
//! t.write("y", Value::from_u64(2));
//! let info = t.commit()?;
//! assert!(info.external_latency >= info.internal_latency);
//!
//! let mut ro = session.begin_read_only();
//! let x = ro.read("x")?.and_then(|v| v.to_u64());
//! let y = ro.read("y")?.and_then(|v| v.to_u64());
//! assert_eq!((x, y), (Some(1), Some(2)));
//! ro.commit()?;
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod adapter;
mod cluster;
pub mod coalescer;
mod commit_queue;
mod config;
mod error;
mod messages;
mod nlog;
mod node;
pub mod protocol;
mod session;
mod squeue;
mod stats;

pub use cluster::SssCluster;
pub use coalescer::{CoalescerCore, PendingConfirm, RoundPlan};
pub use commit_queue::{CommitEntry, CommitQueue, CommitStatus};
pub use config::{SssConfig, DEFAULT_CONFIRM_EPOCH};
pub use error::{AbortReason, SssError};
pub use messages::{Ack, PropagatedEntry, ReadReturn, SssMessage, StateReply, Vote};
pub use nlog::{NLog, NLogEntry};
pub use node::SssNode;
pub use session::{CommitInfo, ReadOnlyTransaction, Session, UpdateTransaction};
pub use squeue::{EntryKind, ReadEntry, SnapshotQueue, SnapshotQueues, WriteEntry};
pub use stats::{ClusterStats, NodeStats};

pub use sss_faults::{FaultInjector, FaultPlan};
pub use sss_storage::{Key, TxnId, Value};
pub use sss_vclock::{NodeId, VectorClock};
