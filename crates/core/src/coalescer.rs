//! The pure decision core of the epoch-grouped confirmation coalescer.
//!
//! [`CoalescerCore`] is the state machine the real coalescer
//! (`node/confirm.rs`) drives under its mutex: membership pushes, the
//! leader's round planning (exit / linger / standalone flush / full round)
//! and the completion bookkeeping are all decided here, over plain data,
//! with no locks, threads, timers or transport. The production code wraps
//! one `Mutex<CoalescerCore<ReplySender<bool>>>`; the `sss-model`
//! interleaving harness drives the very same type step by step through
//! every schedule of a membership push racing a leader drain, which is how
//! the leadership-handoff ("no lost wakeup") and
//! release-never-overtakes-confirmation obligations are checked
//! exhaustively rather than probabilistically.
//!
//! Invariants encoded here (and asserted by the harness):
//!
//! * **Single leader**: [`CoalescerCore::enqueue`] returns `true` (caller
//!   must lead) iff no leader was active; the flag is cleared only by the
//!   leader's own [`RoundPlan::Exit`] decision.
//! * **No lost wakeup**: [`CoalescerCore::next_round`] returns `Exit` only
//!   when every queue is empty, under the same critical section as the
//!   pushes — a member enqueued before the exit check is always covered by
//!   a later plan of the same leader.
//! * **Release never overtakes confirmation**: members enter
//!   `pending_release` only via [`CoalescerCore::round_completed`], i.e.
//!   only after their own round collected its acks, so a release list can
//!   never carry a transaction whose confirmation round is still in
//!   flight.

use std::sync::Arc;

use sss_storage::TxnId;
use sss_vclock::VectorClock;

/// One update transaction waiting for a grouped confirmation round.
/// `W` is the caller's completion handle (a reply channel in production,
/// a plain marker in the model).
#[derive(Debug, Clone)]
pub struct PendingConfirm<W> {
    /// The committing update transaction.
    pub txn: TxnId,
    /// Its final commit vector clock (shared with the round's envelope).
    pub commit_vc: Arc<VectorClock>,
    /// Where the round leader reports the round outcome.
    pub waiter: W,
}

/// What the leader must do next, decided under the coalescer lock.
#[derive(Debug)]
pub enum RoundPlan<W> {
    /// Every queue is empty: clear the leader flag and return. Decided in
    /// the same critical section as membership pushes, so no member can be
    /// stranded behind the exit.
    Exit,
    /// The pending window is under-full and the caller may wait for it to
    /// fill: drop the lock, linger, and plan again. Never chosen twice in a
    /// row, and never before the leader's first round.
    Linger,
    /// No confirm batch, but piggyback payloads remain and no carrier is
    /// coming: flush them as standalone `Remove` / `ReleaseExternal`
    /// broadcasts (removes first — they can unblock waiting external
    /// commits).
    Flush {
        /// Completed members awaiting their `ReleaseExternal`.
        release: Vec<TxnId>,
        /// Completed read-only transactions awaiting their `Remove`.
        remove: Vec<TxnId>,
    },
    /// Run a confirmation round carrying `batch`, with the release/remove
    /// payloads of *previously completed* rounds piggybacked.
    Round {
        /// The members of this round (at most the window size).
        batch: Vec<PendingConfirm<W>>,
        /// Piggybacked releases of already-completed rounds.
        release: Vec<TxnId>,
        /// Piggybacked removes of completed read-only transactions.
        remove: Vec<TxnId>,
    },
}

/// The coalescer's decision state. See the module documentation.
#[derive(Debug, Clone)]
pub struct CoalescerCore<W> {
    /// `true` while a leader is driving rounds.
    in_flight: bool,
    pending: Vec<PendingConfirm<W>>,
    /// Completed rounds' members awaiting their `ReleaseExternal`.
    pending_release: Vec<TxnId>,
    /// Completed read-only transactions whose `Remove` rides the next
    /// round.
    pending_remove: Vec<TxnId>,
}

impl<W> Default for CoalescerCore<W> {
    fn default() -> Self {
        CoalescerCore {
            in_flight: false,
            pending: Vec::new(),
            pending_release: Vec::new(),
            pending_remove: Vec::new(),
        }
    }
}

impl<W> CoalescerCore<W> {
    /// An idle coalescer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a committing transaction for the next round. Returns `true`
    /// iff the caller observed no active leader and must lead rounds itself
    /// (the flag is set atomically with the push, so exactly one caller
    /// leads).
    pub fn enqueue(&mut self, txn: TxnId, commit_vc: Arc<VectorClock>, waiter: W) -> bool {
        self.pending.push(PendingConfirm {
            txn,
            commit_vc,
            waiter,
        });
        !std::mem::replace(&mut self.in_flight, true)
    }

    /// Piggybacks a completed read-only transaction's `Remove` on the next
    /// round if a leader is active. Returns `false` when idle — the caller
    /// must send a targeted `Remove` itself (parking the remove on an idle
    /// coalescer would hold blocked writers indefinitely).
    pub fn queue_remove(&mut self, txn: TxnId) -> bool {
        if self.in_flight {
            self.pending_remove.push(txn);
            true
        } else {
            false
        }
    }

    /// The leader's per-iteration decision. `window` bounds the batch size;
    /// `may_linger` is `true` when the caller is willing to pause for the
    /// window to fill (the production leader passes `false` before its
    /// first round and after having already lingered once).
    ///
    /// `Exit` clears the leader flag; every other plan keeps it set.
    pub fn next_round(&mut self, window: usize, may_linger: bool) -> RoundPlan<W> {
        if self.pending.is_empty()
            && self.pending_release.is_empty()
            && self.pending_remove.is_empty()
        {
            self.in_flight = false;
            return RoundPlan::Exit;
        }
        if may_linger && self.pending.len() < window {
            return RoundPlan::Linger;
        }
        let take = self.pending.len().min(window.max(1));
        let batch: Vec<PendingConfirm<W>> = self.pending.drain(..take).collect();
        let release = std::mem::take(&mut self.pending_release);
        let remove = std::mem::take(&mut self.pending_remove);
        if batch.is_empty() {
            RoundPlan::Flush { release, remove }
        } else {
            RoundPlan::Round {
                batch,
                release,
                remove,
            }
        }
    }

    /// Records a completed round: with piggybacking, its members' releases
    /// ride the next plan (returns `None`); without it, the caller must
    /// broadcast the returned release list immediately.
    pub fn round_completed(&mut self, members: Vec<TxnId>, piggyback: bool) -> Option<Vec<TxnId>> {
        if piggyback {
            self.pending_release.extend(members);
            None
        } else {
            Some(members)
        }
    }

    /// `true` while a leader is driving rounds.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// Queued members not yet covered by a round plan.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Completed members whose release has not yet found a carrier.
    pub fn pending_release_len(&self) -> usize {
        self.pending_release.len()
    }

    /// Completed read-only transactions whose remove has not yet found a
    /// carrier.
    pub fn pending_remove_len(&self) -> usize {
        self.pending_remove.len()
    }

    /// Queued members in arrival order (model-checker state encoding).
    pub fn pending_txns(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.pending.iter().map(|p| p.txn)
    }

    /// Releases awaiting a carrier, in completion order.
    pub fn pending_release_txns(&self) -> &[TxnId] {
        &self.pending_release
    }

    /// Removes awaiting a carrier, in completion order.
    pub fn pending_remove_txns(&self) -> &[TxnId] {
        &self.pending_remove
    }
}

/// The round identifier used by the handler-side ack dedup: the first
/// member's transaction.
pub fn round_id<W>(batch: &[PendingConfirm<W>]) -> Option<TxnId> {
    batch.first().map(|p| p.txn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_vclock::NodeId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    fn vc() -> Arc<VectorClock> {
        Arc::new(VectorClock::new(2))
    }

    fn members<W>(plan: &RoundPlan<W>) -> Vec<TxnId> {
        match plan {
            RoundPlan::Round { batch, .. } => batch.iter().map(|p| p.txn).collect(),
            _ => Vec::new(),
        }
    }

    #[test]
    fn first_enqueue_leads_followers_do_not() {
        let mut core: CoalescerCore<()> = CoalescerCore::new();
        assert!(core.enqueue(txn(1), vc(), ()));
        assert!(!core.enqueue(txn(2), vc(), ()));
        assert!(core.in_flight());
    }

    #[test]
    fn window_one_is_singleton_round_per_txn_in_order() {
        // `confirm_epoch_max == 1` must reproduce the base protocol: one
        // round per transaction, in arrival order.
        let mut core: CoalescerCore<()> = CoalescerCore::new();
        assert!(core.enqueue(txn(1), vc(), ()));
        assert!(!core.enqueue(txn(2), vc(), ()));
        let plan = core.next_round(1, false);
        assert_eq!(members(&plan), vec![txn(1)]);
        assert!(core.round_completed(vec![txn(1)], false).is_some());
        let plan = core.next_round(1, false);
        assert_eq!(members(&plan), vec![txn(2)]);
        assert!(core.round_completed(vec![txn(2)], false).is_some());
        assert!(matches!(core.next_round(1, false), RoundPlan::Exit));
        assert!(!core.in_flight());
    }

    #[test]
    fn exit_only_with_all_queues_empty() {
        let mut core: CoalescerCore<()> = CoalescerCore::new();
        assert!(core.enqueue(txn(1), vc(), ()));
        let plan = core.next_round(8, false);
        assert_eq!(members(&plan), vec![txn(1)]);
        // Piggybacked release left behind: the leader must not exit.
        assert!(core.round_completed(vec![txn(1)], true).is_none());
        match core.next_round(8, false) {
            RoundPlan::Flush { release, remove } => {
                assert_eq!(release, vec![txn(1)]);
                assert!(remove.is_empty());
            }
            other => panic!("expected a standalone flush, got {other:?}"),
        }
        assert!(matches!(core.next_round(8, false), RoundPlan::Exit));
    }

    #[test]
    fn remove_piggybacks_only_while_a_leader_is_active() {
        let mut core: CoalescerCore<()> = CoalescerCore::new();
        assert!(!core.queue_remove(txn(9)), "idle coalescer must refuse");
        assert!(core.enqueue(txn(1), vc(), ()));
        assert!(core.queue_remove(txn(9)));
        match core.next_round(8, false) {
            RoundPlan::Round { remove, .. } => assert_eq!(remove, vec![txn(9)]),
            other => panic!("expected a round, got {other:?}"),
        }
    }

    #[test]
    fn linger_is_offered_only_on_underfull_windows() {
        let mut core: CoalescerCore<()> = CoalescerCore::new();
        assert!(core.enqueue(txn(1), vc(), ()));
        assert!(matches!(core.next_round(8, true), RoundPlan::Linger));
        // The linger did not consume the member.
        assert_eq!(core.pending_len(), 1);
        assert!(!core.enqueue(txn(2), vc(), ()));
        let plan = core.next_round(2, true);
        assert_eq!(members(&plan), vec![txn(1), txn(2)]);
    }
}
