//! Cluster bootstrap: spins up the nodes, their worker pools and the
//! transport, and hands out client sessions.

use std::sync::Arc;

use parking_lot::Mutex;
use sss_faults::{FaultInjector, FaultInterposer};
use sss_net::{ChannelTransport, NodeRuntime, NodeService, ReliabilityConfig, TransportConfig};
use sss_vclock::NodeId;

use crate::config::SssConfig;
use crate::error::SssError;
use crate::messages::SssMessage;
use crate::node::SssNode;
use crate::session::Session;
use crate::stats::{ClusterStats, NodeStats};

/// A running SSS cluster (in-process: every node is an actor with its own
/// worker pool, communicating only through the message transport).
///
/// # Example
///
/// ```rust
/// use sss_core::{SssCluster, SssConfig};
/// use sss_storage::Value;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cluster = SssCluster::start(SssConfig::new(3))?;
/// let session = cluster.session(0);
///
/// let mut txn = session.begin_update();
/// txn.write("greeting", "hello");
/// txn.commit()?;
///
/// let mut ro = session.begin_read_only();
/// assert_eq!(ro.read("greeting")?, Some(Value::from("hello")));
/// ro.commit()?;
/// cluster.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct SssCluster {
    config: SssConfig,
    transport: Arc<ChannelTransport<SssMessage>>,
    nodes: Vec<Arc<SssNode>>,
    runtimes: Mutex<Vec<NodeRuntime>>,
    injector: Option<Arc<FaultInjector>>,
    /// Recovery tasks spawned by the restart hook (threaded runtime only;
    /// under the simulator recovery runs as a non-daemon sim task whose
    /// completion quiescence already waits for). Joined at shutdown.
    recovery_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl SssCluster {
    /// Boots a cluster with the given configuration.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice, but kept fallible for forward
    /// compatibility (e.g. resource exhaustion while spawning workers).
    pub fn start(config: SssConfig) -> Result<Self, SssError> {
        let injector = config.fault_injector.clone();
        let mut transport_config = TransportConfig::new(config.nodes)
            .latency(config.latency)
            .seed(config.seed);
        // The reliable-delivery layer is enabled on explicit request or
        // automatically whenever the fault plan can actually lose messages
        // (link loss, or crash windows that purge mailboxes) — running such
        // a plan on the bare transport would wedge the protocol by design.
        let needs_reliable = config.reliable_delivery
            || injector
                .as_ref()
                .is_some_and(|i| i.fault_plan().needs_reliable_delivery());
        if needs_reliable {
            transport_config = transport_config.reliable(ReliabilityConfig::default());
        }
        if let Some(injector) = &injector {
            transport_config =
                transport_config.interposer(Arc::clone(injector) as Arc<dyn FaultInterposer>);
        }
        if let Some(scheduler) = &config.scheduler {
            transport_config = transport_config.scheduler(Arc::clone(scheduler));
            if let Some(injector) = &injector {
                injector.set_scheduler(Arc::clone(scheduler));
            }
        }
        let transport = Arc::new(ChannelTransport::new(transport_config));
        // Per-kind message accounting: every send is attributed to its
        // protocol message type, so harnesses can attribute round-reduction
        // wins per kind.
        transport.set_message_classifier(|message: &SssMessage| message.kind_index());
        if let Some(injector) = &injector {
            injector.attach_pause_controls(
                (0..config.nodes)
                    .map(|i| transport.mailbox(NodeId(i)).pause_control())
                    .collect(),
            );
        }
        let nodes: Vec<Arc<SssNode>> = (0..config.nodes)
            .map(|i| {
                Arc::new(SssNode::new(
                    NodeId(i),
                    config.clone(),
                    Arc::clone(&transport),
                ))
            })
            .collect();
        // Self-addressed messages (the coordinator is its own participant,
        // confirmation rounds cover every node) skip the mailbox and run
        // the handler on the sending thread via the transport's local
        // fast path — registered before the workers start so the path is
        // available from the first send.
        // The closure captures a `Weak` handle: the node itself holds the
        // transport, so a strong capture would form an `Arc` cycle and leak
        // every node (and its stores) when the cluster is dropped.
        for node in &nodes {
            let handler = Arc::downgrade(node);
            transport.set_local_dispatch(
                node.id(),
                Arc::new(move |envelope| {
                    if let Some(node) = handler.upgrade() {
                        node.handle(envelope);
                    }
                }),
            );
        }
        let recovery_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        if let Some(injector) = &injector {
            // Crash-stop hook: a crash purges the node's mailbox (undelivered
            // messages stay outstanding in the reliable layer and are
            // retransmitted after restart) and wipes its volatile protocol
            // state; a restart re-opens the mailbox and runs the peer
            // recovery round on its own task — never on the fault
            // scheduler, which must move on to the next window, and never
            // on a mailbox worker, which must not block on replies.
            //
            // Weak captures: every node holds the injector through its
            // config, so strong handles here would cycle and leak the
            // cluster.
            let hook_nodes: Vec<std::sync::Weak<SssNode>> =
                nodes.iter().map(Arc::downgrade).collect();
            let hook_transport = Arc::downgrade(&transport);
            let hook_scheduler = config.scheduler.clone();
            let hook_recovery = Arc::clone(&recovery_threads);
            injector.attach_crash_hook(Arc::new(move |index, down| {
                let (Some(node), Some(transport)) = (
                    hook_nodes.get(index).and_then(std::sync::Weak::upgrade),
                    hook_transport.upgrade(),
                ) else {
                    return;
                };
                if down {
                    transport.mailbox(NodeId(index)).crash();
                    node.on_crash();
                } else {
                    transport.mailbox(NodeId(index)).restart();
                    match &hook_scheduler {
                        Some(scheduler) => {
                            // Non-daemon sim task: quiescence waits for the
                            // recovery round, so a seeded run always replays
                            // it to completion.
                            let _ = scheduler.spawn_task(
                                format!("sss-recovery-{index}"),
                                false,
                                Box::new(move || node.recover_from_peers()),
                            );
                        }
                        None => {
                            let handle = std::thread::Builder::new()
                                .name(format!("sss-recovery-{index}"))
                                .spawn(move || node.recover_from_peers())
                                .expect("failed to spawn recovery task");
                            hook_recovery.lock().push(handle);
                        }
                    }
                }
            }));
        }
        let runtimes = nodes
            .iter()
            .map(|node| {
                NodeRuntime::spawn_batched(
                    node.id(),
                    transport.mailbox(node.id()),
                    Arc::clone(node),
                    config.workers_per_node,
                    config.delivery_batch,
                )
            })
            .collect();
        Ok(SssCluster {
            config,
            transport,
            nodes,
            runtimes: Mutex::new(runtimes),
            injector,
            recovery_threads,
        })
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The configuration the cluster was started with.
    pub fn config(&self) -> &SssConfig {
        &self.config
    }

    /// Opens a client session colocated with node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn session(&self, node: usize) -> Session {
        Session::new(Arc::clone(&self.nodes[node]))
    }

    /// Per-node protocol counters.
    pub fn node_stats(&self) -> Vec<NodeStats> {
        self.nodes.iter().map(|n| n.stats()).collect()
    }

    /// Aggregated protocol counters.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats::aggregate(self.node_stats())
    }

    /// Aggregated storage-layer counters (multi-version store and lock
    /// table, with per-shard contention breakdowns) summed over every node.
    /// The counters are monotonic; harnesses snapshot them at window
    /// boundaries and diff (see `sss_storage::StorageStats::diff`).
    pub fn storage_stats(&self) -> sss_storage::StorageStats {
        let mut total = sss_storage::StorageStats::default();
        for node in &self.nodes {
            total.merge(&node.storage_stats());
        }
        total
    }

    /// Aggregated mailbox traffic counters summed over every node, for
    /// per-window message accounting by benchmark harnesses.
    pub fn mailbox_totals(&self) -> sss_net::MailboxStats {
        let mut total = sss_net::MailboxStats::default();
        for node in &self.nodes {
            total.merge(&self.transport.mailbox_stats(node.id()));
        }
        total
    }

    /// Total number of snapshot-queue entries across the cluster
    /// (diagnostic; converges to zero when the system is idle, thanks to the
    /// implicit garbage collection performed by `Remove`).
    pub fn snapshot_queue_entries(&self) -> usize {
        self.nodes.iter().map(|n| n.snapshot_queue_entries()).sum()
    }

    /// Runs multi-version garbage collection on every node; returns the
    /// number of versions discarded.
    pub fn collect_garbage(&self) -> usize {
        self.nodes.iter().map(|n| n.collect_garbage()).sum()
    }

    /// Concatenated [`SssNode::pending_external_report`] of every node —
    /// transactions currently held in their Pre-Commit phase and the
    /// read-only entries blocking them. Diagnostic aid.
    pub fn pending_reports(&self) -> String {
        self.nodes
            .iter()
            .map(|n| n.pending_external_report())
            .collect()
    }

    /// The observability hub the cluster was started with, if any (see
    /// [`SssConfig::observability`]): phase traces, per-phase latency
    /// histograms and the per-node trace rings.
    pub fn observability(&self) -> Option<std::sync::Arc<sss_obs::ObsHub>> {
        self.config.observability.clone()
    }

    /// The fault injector the cluster was started under, if any. Arm it
    /// once the key space is populated so that the plan's scheduled windows
    /// cover the measured phase.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Per-node liveness classification for stuck-run reports: `Crashed`
    /// while a crash window is open or a restarted node is still running
    /// its recovery round, `Paused` while a pause window holds the mailbox,
    /// `Alive` otherwise. Lets a watchdog distinguish "the fault plan took
    /// a node down" from a genuine protocol livelock.
    pub fn node_liveness(&self) -> Vec<sss_obs::NodeLiveness> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(index, node)| {
                let crashed = !node.is_available()
                    || self
                        .injector
                        .as_ref()
                        .is_some_and(|i| i.is_node_crashed(index));
                if crashed {
                    sss_obs::NodeLiveness::Crashed
                } else if self
                    .transport
                    .mailbox(NodeId(index))
                    .pause_control()
                    .is_paused()
                {
                    sss_obs::NodeLiveness::Paused
                } else {
                    sss_obs::NodeLiveness::Alive
                }
            })
            .collect()
    }

    /// Per-node liveness diagnostics: mailbox traffic and queue depth,
    /// pause and availability state, snapshot-queue entries and commits
    /// awaiting external acknowledgement. Used by stuck-run detectors to
    /// explain *where* a faulted scenario wedged.
    pub fn diagnostics(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for node in &self.nodes {
            let id = node.id();
            let mailbox = self.transport.mailbox(id);
            let stats = mailbox.stats();
            let _ = writeln!(
                out,
                "node {}: mailbox depth={} enqueued={} dequeued={} paused={} available={} \
                 snapshot-queue-entries={} waiting-external-commits={}",
                id.index(),
                mailbox.len(),
                stats.total_enqueued(),
                stats.total_dequeued(),
                mailbox.pause_control().is_paused(),
                node.is_available(),
                node.snapshot_queue_entries(),
                node.waiting_external_commits(),
            );
        }
        out.push_str(&self.pending_reports());
        out
    }

    /// Shuts the cluster down: disarms any fault injector, closes the
    /// transport and joins every worker. Idempotent.
    pub fn shutdown(&self) {
        if let Some(injector) = &self.injector {
            injector.disarm();
        }
        self.transport.shutdown();
        let runtimes = std::mem::take(&mut *self.runtimes.lock());
        for runtime in runtimes {
            runtime.join();
        }
        // Joined after the transport shutdown: a recovery round still
        // waiting for peer replies unblocks as soon as its channels die.
        let recoveries = std::mem::take(&mut *self.recovery_threads.lock());
        for handle in recoveries {
            let _ = handle.join();
        }
    }
}

impl Drop for SssCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for SssCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SssCluster")
            .field("nodes", &self.nodes.len())
            .field("replication", &self.config.replication)
            .finish()
    }
}
