//! Client-side transaction execution (the coordinator logic of
//! Algorithms 1 and 5).
//!
//! Clients are colocated with nodes (paper §II): a [`Session`] is bound to
//! one node and issues transactions whose coordinator is that node. The
//! programmer declares up front whether a transaction is an update or a
//! read-only transaction (paper §II), by calling
//! [`Session::begin_update`] or [`Session::begin_read_only`].

use std::collections::BTreeMap;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sss_net::{reply_channel, Priority, Transport, TransportExt};
use sss_obs::{ObsHub, Phase, TxnTrace};
use sss_storage::{Key, TxnId, Value};
use sss_vclock::{NodeId, VectorClock};

use crate::error::{AbortReason, SssError};
use crate::messages::{PropagatedEntry, SssMessage};
use crate::node::SssNode;

/// Latency breakdown of a committed update transaction, mirroring the
/// measurements of Figure 5 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommitInfo {
    /// Time from the transaction's begin to its *internal* commit (the 2PC
    /// decision being reached and disseminated).
    pub internal_latency: Duration,
    /// Time from the transaction's begin to its *external* commit (all write
    /// replicas acknowledged that no concurrent read-only transaction holds
    /// it in a snapshot-queue).
    pub external_latency: Duration,
}

impl CommitInfo {
    /// Time spent in the Pre-Commit phase (the snapshot-queue wait).
    pub fn pre_commit_wait(&self) -> Duration {
        self.external_latency.saturating_sub(self.internal_latency)
    }
}

/// A client handle bound to (colocated with) one node of the cluster.
#[derive(Debug, Clone)]
pub struct Session {
    node: Arc<SssNode>,
    /// Observability hub and this session's trace lane, when tracing is on.
    obs: Option<(Arc<ObsHub>, u64)>,
}

impl Session {
    pub(crate) fn new(node: Arc<SssNode>) -> Self {
        let obs = node
            .config()
            .observability
            .as_ref()
            .map(|hub| (Arc::clone(hub), hub.next_lane()));
        Session { node, obs }
    }

    fn begin_trace(&self, txn: TxnId) -> Option<TxnTrace> {
        self.obs.as_ref().map(|(hub, lane)| {
            TxnTrace::begin(Arc::clone(hub), self.node.id().index(), *lane, txn.seq)
        })
    }

    /// The node this session is colocated with.
    pub fn node_id(&self) -> NodeId {
        self.node.id()
    }

    /// Begins an update transaction.
    pub fn begin_update(&self) -> UpdateTransaction {
        let id = self.node.next_txn_id();
        let vc = self.node.begin_vc();
        UpdateTransaction {
            node: Arc::clone(&self.node),
            id,
            vc,
            has_read: vec![false; self.node.config().nodes],
            read_set: Vec::new(),
            write_set: BTreeMap::new(),
            propagated: Vec::new(),
            started: sss_vclock::runtime::now(),
            trace: self.begin_trace(id),
        }
    }

    /// Begins an abort-free read-only transaction.
    pub fn begin_read_only(&self) -> ReadOnlyTransaction {
        let id = self.node.next_txn_id();
        ReadOnlyTransaction {
            node: Arc::clone(&self.node),
            id,
            vc: None,
            has_read: vec![false; self.node.config().nodes],
            read_keys: Vec::new(),
            excluded: Vec::new(),
            finished: false,
            trace: self.begin_trace(id),
        }
    }
}

/// Waits out a colocated node's crash window: retries the availability
/// check with capped exponential backoff up to the configured budget, then
/// degrades to a typed [`SssError::NodeUnavailable`] instead of letting the
/// client hang against a dead node (or begin from a wiped — stale —
/// snapshot).
fn ensure_available(node: &SssNode) -> Result<(), SssError> {
    if node.is_available() {
        return Ok(());
    }
    let backoff = sss_vclock::runtime::Backoff::exponential(
        Duration::from_micros(50),
        Duration::from_millis(2),
    );
    for attempt in 1..=node.config().unavailable_retry_max {
        backoff.pause(attempt);
        if node.is_available() {
            return Ok(());
        }
    }
    Err(SssError::NodeUnavailable)
}

/// Issues a read request to every replica of `key` and returns the fastest
/// answer (Algorithm 5 line 9-10).
fn remote_read(
    node: &SssNode,
    txn: TxnId,
    key: &Key,
    vc: &VectorClock,
    has_read: &[bool],
    exclude: &[Arc<VectorClock>],
    is_update: bool,
) -> Result<crate::messages::ReadReturn, SssError> {
    let replicas = node.replica_map().replicas(key);
    let (reply, receiver) = reply_channel(replicas.len());
    let message = SssMessage::ReadRequest {
        txn,
        key: key.clone(),
        vc: vc.clone(),
        has_read: has_read.to_vec(),
        exclude: exclude.to_vec(),
        is_update,
        reply,
    };
    node.transport()
        .multicast(
            node.id(),
            replicas.iter().copied(),
            message,
            Priority::Normal,
        )
        .map_err(|_| SssError::ClusterShutdown)?;
    receiver
        .recv_timeout(node.config().read_timeout)
        .ok_or_else(|| SssError::ReadTimeout { key: key.clone() })
}

/// Collects `Ack` replies for `txn` from `expected` distinct nodes, waiting
/// at most `timeout`. Returns `false` on timeout or channel loss.
fn collect_acks(
    receiver: &sss_net::ReplyReceiver<crate::messages::Ack>,
    txn: TxnId,
    expected: usize,
    timeout: Duration,
) -> bool {
    let deadline = sss_vclock::runtime::now() + timeout;
    let mut seen: HashSet<NodeId> = HashSet::new();
    while seen.len() < expected {
        let remaining = deadline.saturating_duration_since(sss_vclock::runtime::now());
        match receiver.recv_timeout(remaining) {
            Some(ack) if ack.txn == txn => {
                seen.insert(ack.from);
            }
            Some(_) => continue,
            None => return false,
        }
    }
    true
}

/// An update transaction: reads observe the most recent committed versions,
/// writes are buffered and installed at commit time through 2PC.
#[derive(Debug)]
pub struct UpdateTransaction {
    node: Arc<SssNode>,
    id: TxnId,
    vc: VectorClock,
    has_read: Vec<bool>,
    read_set: Vec<(Key, Option<TxnId>)>,
    write_set: BTreeMap<Key, Value>,
    propagated: Vec<PropagatedEntry>,
    started: Instant,
    /// Phase trace flushed to the observability hub at commit/abort.
    trace: Option<TxnTrace>,
}

impl UpdateTransaction {
    /// This transaction's identifier.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Reads `key`, returning `None` if it has never been written.
    ///
    /// Reads of keys previously written by this transaction observe the
    /// buffered value (Algorithm 5 lines 2-4).
    ///
    /// # Errors
    ///
    /// Returns [`SssError::ReadTimeout`] if no replica answered in time and
    /// [`SssError::ClusterShutdown`] if the cluster was shut down.
    pub fn read(&mut self, key: impl Into<Key>) -> Result<Option<Value>, SssError> {
        let key = key.into();
        if let Some(value) = self.write_set.get(&key) {
            return Ok(Some(value.clone()));
        }
        ensure_available(&self.node)?;
        if let Some(trace) = self.trace.as_mut() {
            trace.enter(Phase::Read);
        }
        let response = remote_read(
            &self.node,
            self.id,
            &key,
            &self.vc,
            &self.has_read,
            &[],
            true,
        )?;
        self.has_read[response.from.index()] = true;
        self.vc.merge(&response.vc);
        self.propagated.extend(response.propagated.iter().copied());
        self.read_set.push((key, response.writer));
        Ok(response.value)
    }

    /// Buffers a write of `value` under `key`; it becomes visible only when
    /// the transaction commits.
    pub fn write(&mut self, key: impl Into<Key>, value: impl Into<Value>) {
        self.write_set.insert(key.into(), value.into());
    }

    /// Keys read so far, with the writer of the version each read observed.
    pub fn read_set(&self) -> &[(Key, Option<TxnId>)] {
        &self.read_set
    }

    /// Number of buffered writes.
    pub fn write_set_len(&self) -> usize {
        self.write_set.len()
    }

    /// Discards the transaction without attempting to commit. Nothing was
    /// made visible to other transactions, so this is always safe.
    pub fn rollback(self) {}

    /// Commits the transaction (Algorithm 1).
    ///
    /// The call returns only at the *external* commit: once every write
    /// replica confirmed that no concurrent read-only transaction serialized
    /// before this transaction is still in flight. The returned
    /// [`CommitInfo`] exposes the internal/external latency split.
    ///
    /// # Errors
    ///
    /// Returns [`SssError::Aborted`] when locks could not be acquired, a
    /// read key was overwritten (validation), or a participant did not vote
    /// in time. Aborted transactions can simply be retried by the client.
    pub fn commit(mut self) -> Result<CommitInfo, SssError> {
        let mut trace = self.trace.take();
        let node = &self.node;
        ensure_available(node)?;
        let replica_map = node.replica_map();

        if self.write_set.is_empty() {
            // A declared-update transaction that performed no writes
            // degenerates to a read-only commit (Algorithm 1 lines 2-8).
            // Its reads did not enqueue in any snapshot-queue, so there is
            // nothing to remove.
            if let Some(trace) = trace {
                trace.finish(true);
            }
            return Ok(CommitInfo {
                internal_latency: sss_vclock::runtime::elapsed_since(self.started),
                external_latency: sss_vclock::runtime::elapsed_since(self.started),
            });
        }

        let write_keys: Vec<Key> = self.write_set.keys().cloned().collect();
        let write_set: Vec<(Key, Value)> = self
            .write_set
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();

        // Participants: replicas of every accessed key plus the coordinator.
        let read_keys: Vec<Key> = self.read_set.iter().map(|(k, _)| k.clone()).collect();
        let mut participants =
            replica_map.replicas_of_all(read_keys.iter().chain(write_keys.iter()));
        if !participants.contains(&node.id()) {
            participants.push(node.id());
            participants.sort();
        }
        let write_replicas = replica_map.replicas_of_all(write_keys.iter());

        // Prepare phase. The multicast moves the message into the last
        // send, so a fan-out to N participants clones it N-1 times.
        if let Some(trace) = trace.as_mut() {
            trace.enter(Phase::PreCommit);
        }
        let (vote_reply, vote_receiver) = reply_channel(participants.len());
        let prepare = SssMessage::Prepare {
            txn: self.id,
            coordinator: node.id(),
            vc: self.vc.clone(),
            read_set: self.read_set.clone(),
            write_set: write_set.clone(),
            reply: vote_reply,
        };
        node.transport()
            .multicast(
                node.id(),
                participants.iter().copied(),
                prepare,
                Priority::Normal,
            )
            .map_err(|_| SssError::ClusterShutdown)?;

        let mut commit_vc = self.vc.clone();
        let mut outcome = true;
        let mut abort_reason = None;
        let deadline = sss_vclock::runtime::now() + node.config().vote_timeout;
        let mut voted: HashSet<NodeId> = HashSet::new();
        while voted.len() < participants.len() {
            let remaining = deadline.saturating_duration_since(sss_vclock::runtime::now());
            match vote_receiver.recv_timeout(remaining) {
                Some(vote) if vote.txn == self.id => {
                    if !voted.insert(vote.from) {
                        continue;
                    }
                    if vote.ok {
                        commit_vc.merge(&vote.vc);
                    } else {
                        outcome = false;
                        abort_reason = Some(AbortReason::ValidationFailed { key: None });
                        break;
                    }
                }
                Some(_) => continue,
                None => {
                    outcome = false;
                    abort_reason = Some(AbortReason::VoteTimeout);
                    break;
                }
            }
        }

        // Compute the final commit vector clock (Algorithm 1 lines 21-24,
        // via the pure step shared with the model checker).
        if outcome {
            let write_indices: Vec<usize> = write_replicas.iter().map(|n| n.index()).collect();
            crate::protocol::finalize_commit_vc(&mut commit_vc, &write_indices);
        }

        // Decide phase. On a commit, the RegisterForward messages that
        // register extra Remove targets for propagated read-only entries
        // (§III-C, transitive anti-dependencies) ride in the same
        // per-destination batch as the Decide — both are high priority, so
        // a destination that is a participant *and* a read-only origin gets
        // one enqueue and one wakeup instead of two.
        if let Some(trace) = trace.as_mut() {
            trace.enter(Phase::CommitQueueWait);
        }
        let (ack_reply, ack_receiver) = reply_channel(write_replicas.len().max(1));
        let decide = SssMessage::Decide {
            txn: self.id,
            commit_vc: commit_vc.clone(),
            outcome,
            propagated: self.propagated.clone(),
            ack_reply,
        };
        let mut per_dest: BTreeMap<NodeId, Vec<SssMessage>> = BTreeMap::new();
        for target in &participants {
            per_dest.entry(*target).or_default().push(decide.clone());
        }
        if outcome {
            // BTreeSet, not HashSet: several propagated read-only entries can
            // share an origin, and hash-order iteration would put their
            // RegisterForward messages on the wire in a run-dependent order,
            // breaking seeded-replay determinism under the simulator.
            let distinct_ro: std::collections::BTreeSet<TxnId> =
                self.propagated.iter().map(|p| p.txn).collect();
            for ro in distinct_ro {
                per_dest
                    .entry(ro.origin)
                    .or_default()
                    .push(SssMessage::RegisterForward {
                        txn: ro,
                        targets: write_replicas.clone(),
                    });
            }
        }
        // The coordinator's own batch goes last: a self-addressed send can
        // run the handler inline (local fast path), and internally
        // committing here mid-loop would delay the remote destinations'
        // Decides behind it.
        let own_batch = per_dest.remove(&node.id());
        for (target, batch) in per_dest {
            node.transport()
                .send_batch(node.id(), target, batch, Priority::High)
                .map_err(|_| SssError::ClusterShutdown)?;
        }
        if let Some(batch) = own_batch {
            node.transport()
                .send_batch(node.id(), node.id(), batch, Priority::High)
                .map_err(|_| SssError::ClusterShutdown)?;
        }

        if !outcome {
            if let Some(trace) = trace {
                trace.finish(false);
            }
            return Err(SssError::Aborted(
                abort_reason.unwrap_or(AbortReason::ValidationFailed { key: None }),
            ));
        }

        let internal_latency = sss_vclock::runtime::elapsed_since(self.started);

        // External commit: wait for every write replica's acknowledgement.
        let timed_out = !collect_acks(
            &ack_receiver,
            self.id,
            write_replicas.len(),
            node.config().ack_timeout,
        );

        // Global external-commit confirmation round (completion-order
        // barrier, see `serve_or_park_read_only` and `begin_vc`): broadcast
        // `ConfirmExternal` to every node and wait for the acknowledgements
        // before answering the client. This guarantees that any transaction
        // starting *after* this client response — on any node — begins from
        // a snapshot that covers this transaction, and that read-only
        // transactions never return this transaction's versions before this
        // response. The confirmations are also sent on the ack-timeout path
        // so that parked reads are eventually released even when this
        // coordinator gave up waiting — by then the system has been wedged
        // for the whole (very generous) ack timeout and consistency is
        // best-effort anyway.
        let all_nodes = node.config().nodes;
        if let Some(trace) = trace.as_mut() {
            trace.enter(Phase::ConfirmWait);
        }
        let confirm_failed = if node.config().confirm_epoch_max > 1 {
            // Grouped path: the coalescer runs one round per coordinator
            // epoch covering every transaction that pre-committed in that
            // window, and handles the release phase itself (piggybacked on
            // the next round or flushed standalone), on success and failure
            // alike — for rounds it *finished*. A round that died without
            // an answer (the leader's node crashed and the reset coalescer
            // dropped its waiters, or the wait timed out) never releases
            // its members, and a never-released writer wedges the write
            // replicas permanently: every read-only attempt selecting its
            // version parks in `pending_global` until the read timeout,
            // aborts, and parks again on retry. Mirror the singleton
            // path's failure behavior and release explicitly before
            // answering the client; `handle_release_external` is
            // idempotent, so racing a late round that does complete is
            // harmless.
            let confirmed = node.confirm_external_grouped(self.id, commit_vc);
            if !confirmed {
                let _ = node.transport().multicast(
                    node.id(),
                    write_replicas.iter().copied(),
                    SssMessage::ReleaseExternal {
                        txns: vec![self.id],
                    },
                    Priority::High,
                );
            }
            timed_out || !confirmed
        } else {
            // Per-transaction path (epoch window <= 1): one singleton round
            // and a standalone release, reproducing the base protocol's
            // message sequence exactly.
            let (confirm_reply, confirm_receiver) = reply_channel(all_nodes);
            let confirm = SssMessage::ConfirmExternal {
                entries: vec![(self.id, Arc::new(commit_vc))],
                release: Vec::new(),
                remove: Vec::new(),
                reply: confirm_reply,
            };
            let _ = node.transport().multicast(
                node.id(),
                (0..all_nodes).map(NodeId),
                confirm,
                Priority::High,
            );
            let failed = timed_out
                || !collect_acks(
                    &confirm_receiver,
                    self.id,
                    all_nodes,
                    node.config().ack_timeout,
                );

            // Release phase: the confirmation round is done (the client
            // response is next), so readers parked on this transaction's
            // versions may be answered. Sent to the write replicas — the
            // only nodes that can hold parked reads for this transaction —
            // and also on the failure paths, so a timed-out commit never
            // leaves readers parked forever.
            if let Some(trace) = trace.as_mut() {
                trace.enter(Phase::Release);
            }
            let _ = node.transport().multicast(
                node.id(),
                write_replicas.iter().copied(),
                SssMessage::ReleaseExternal {
                    txns: vec![self.id],
                },
                Priority::High,
            );
            failed
        };

        // The transaction is committed from here on (even a timed-out
        // confirmation round installed its writes), so the trace reports a
        // commit on both return paths.
        if let Some(trace) = trace {
            trace.finish(true);
        }

        if confirm_failed {
            return Err(SssError::ExternalCommitTimeout);
        }

        Ok(CommitInfo {
            internal_latency,
            external_latency: sss_vclock::runtime::elapsed_since(self.started),
        })
    }
}

/// A read-only transaction. Never aborts due to concurrency; every read
/// observes a consistent snapshot that is also externally consistent with
/// every committed update transaction.
#[derive(Debug)]
pub struct ReadOnlyTransaction {
    node: Arc<SssNode>,
    id: TxnId,
    vc: Option<VectorClock>,
    has_read: Vec<bool>,
    read_keys: Vec<Key>,
    /// Exclusion ceilings of this transaction's snapshot (commit clocks of
    /// pre-committing writers its first read excluded): the transaction
    /// serialized before them, so no later read may observe their versions
    /// — or any version carrying a dominating clock — on any key.
    excluded: Vec<Arc<VectorClock>>,
    finished: bool,
    /// Phase trace flushed to the observability hub at completion.
    trace: Option<TxnTrace>,
}

impl ReadOnlyTransaction {
    /// This transaction's identifier.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Reads `key`, returning `None` if no version is visible.
    ///
    /// # Errors
    ///
    /// Returns [`SssError::ReadTimeout`] if no replica answered in time and
    /// [`SssError::ClusterShutdown`] if the cluster was shut down.
    pub fn read(&mut self, key: impl Into<Key>) -> Result<Option<Value>, SssError> {
        if self.finished {
            return Err(SssError::InvalidOperation(
                "read on an already committed read-only transaction",
            ));
        }
        let key = key.into();
        // Algorithm 5 lines 5-7: the first read pins the visibility bound to
        // the latest snapshot committed on the colocated node. The node must
        // be available for the bound to be trustworthy: a crash wipes
        // `confirmed_vc`, and pinning against the wiped clock would start
        // the snapshot *before* already-confirmed writers.
        if self.vc.is_none() {
            ensure_available(&self.node)?;
            self.vc = Some(self.node.begin_vc());
        }
        // Track the key *before* issuing the request: even when the read
        // fails (e.g. times out while deferred or parked on a replica), the
        // replicas may already hold this transaction's snapshot-queue entry
        // for the key, and the `Remove`s sent at completion must reach them
        // or a writer could be blocked forever.
        if let Some(trace) = self.trace.as_mut() {
            trace.enter(Phase::Read);
        }
        self.read_keys.push(key.clone());
        let vc = self.vc.as_ref().expect("initialized above");
        let response = remote_read(
            &self.node,
            self.id,
            &key,
            vc,
            &self.has_read,
            &self.excluded,
            false,
        )?;
        self.has_read[response.from.index()] = true;
        for ceiling in response.excluded {
            if !self.excluded.contains(&ceiling) {
                self.excluded.push(ceiling);
            }
        }
        let vc = self.vc.as_mut().expect("initialized above");
        vc.merge(&response.vc);
        Ok(response.value)
    }

    /// Keys read so far.
    pub fn read_set(&self) -> &[Key] {
        &self.read_keys
    }

    /// Commits the transaction. This never fails due to concurrency: the
    /// client is answered immediately and the `Remove` notifications are
    /// sent to the nodes holding this transaction's snapshot-queue entries.
    ///
    /// # Errors
    ///
    /// Returns [`SssError::InvalidOperation`] if called twice.
    pub fn commit(mut self) -> Result<(), SssError> {
        if self.finished {
            return Err(SssError::InvalidOperation(
                "commit on an already committed read-only transaction",
            ));
        }
        self.finish();
        Ok(())
    }

    fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            if !self.read_keys.is_empty() {
                self.node.finish_read_only(self.id, &self.read_keys);
            }
            if let Some(trace) = self.trace.take() {
                trace.finish(true);
            }
        }
    }
}

impl Drop for ReadOnlyTransaction {
    fn drop(&mut self) {
        // An abandoned read-only transaction must still release the update
        // transactions it may be holding in their Pre-Commit phase.
        self.finish();
    }
}
