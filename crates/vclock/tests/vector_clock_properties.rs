//! Property-based tests of the vector-clock laws the SSS proofs rely on
//! (paper §IV uses the entry-wise partial order `v1 <= v2`).

use proptest::prelude::*;
use sss_vclock::{VcOrdering, VectorClock};

const WIDTH: usize = 6;

fn clock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u64..50, WIDTH).prop_map(VectorClock::from_entries)
}

proptest! {
    #[test]
    fn merge_is_commutative(a in clock(), b in clock()) {
        prop_assert_eq!(a.merged(&b), b.merged(&a));
    }

    #[test]
    fn merge_is_associative(a in clock(), b in clock(), c in clock()) {
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    #[test]
    fn merge_is_idempotent_and_dominating(a in clock(), b in clock()) {
        let merged = a.merged(&b);
        prop_assert_eq!(merged.merged(&a), merged.clone());
        prop_assert!(merged.dominates(&a));
        prop_assert!(merged.dominates(&b));
    }

    #[test]
    fn merge_is_the_least_upper_bound(a in clock(), b in clock(), c in clock()) {
        // Any clock dominating both inputs also dominates their merge.
        if c.dominates(&a) && c.dominates(&b) {
            prop_assert!(c.dominates(&a.merged(&b)));
        }
    }

    #[test]
    fn partial_order_is_antisymmetric(a in clock(), b in clock()) {
        if a.le(&b) && b.le(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn partial_order_is_transitive(a in clock(), b in clock(), c in clock()) {
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c));
        }
    }

    #[test]
    fn comparison_is_consistent_with_le(a in clock(), b in clock()) {
        match a.partial_cmp_vc(&b) {
            VcOrdering::Equal => prop_assert_eq!(a, b),
            VcOrdering::Before => {
                prop_assert!(a.lt(&b));
                prop_assert!(!b.lt(&a));
            }
            VcOrdering::After => {
                prop_assert!(b.lt(&a));
                prop_assert!(!a.lt(&b));
            }
            VcOrdering::Concurrent => {
                prop_assert!(!a.le(&b));
                prop_assert!(!b.le(&a));
                prop_assert!(a.concurrent_with(&b));
            }
        }
    }

    #[test]
    fn increment_strictly_advances(mut a in clock(), idx in 0usize..WIDTH) {
        let before = a.clone();
        a.increment(idx);
        prop_assert!(before.lt(&a));
        prop_assert_eq!(a.get(idx), before.get(idx) + 1);
    }

    #[test]
    fn xact_vn_assignment_equalizes_write_replicas(
        mut vc in clock(),
        indices in prop::collection::btree_set(0usize..WIDTH, 1..WIDTH),
    ) {
        // Mirrors Algorithm 1 lines 21-24.
        let indices: Vec<usize> = indices.into_iter().collect();
        let xact_vn = vc.max_over(indices.iter().copied());
        let before = vc.clone();
        vc.assign_over(indices.iter().copied(), xact_vn);
        for i in 0..WIDTH {
            if indices.contains(&i) {
                prop_assert_eq!(vc.get(i), xact_vn);
            } else {
                prop_assert_eq!(vc.get(i), before.get(i));
            }
        }
        prop_assert!(vc.dominates(&before));
    }
}
