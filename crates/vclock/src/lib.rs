//! Vector clock primitives for the SSS key-value store.
//!
//! SSS tracks dependencies among events originated on different nodes with
//! per-transaction and per-node vector clocks (paper §III-A). This crate
//! provides the [`VectorClock`] type together with the partial-order
//! comparison ([`VcOrdering`]) that the protocol proofs (paper §IV) rely on:
//! `v1 <= v2` iff every entry of `v1` is `<=` the corresponding entry of `v2`.
//!
//! # Example
//!
//! ```rust
//! use sss_vclock::{VectorClock, VcOrdering};
//!
//! let mut a = VectorClock::new(3);
//! let mut b = VectorClock::new(3);
//! a.increment(0);
//! b.increment(1);
//!
//! // Concurrent events are incomparable.
//! assert_eq!(a.partial_cmp_vc(&b), VcOrdering::Concurrent);
//!
//! // Merging yields the entry-wise maximum, which dominates both inputs.
//! let merged = a.merged(&b);
//! assert!(merged.dominates(&a) && merged.dominates(&b));
//! ```

#![deny(missing_docs)]

pub mod runtime;
mod vector_clock;

pub use vector_clock::{VcOrdering, VectorClock, INLINE_WIDTH};

/// Identifier of a node (site) in the cluster.
///
/// Node identifiers are dense indices in `0..n` where `n` is the cluster
/// size; they double as indices into [`VectorClock`] entries.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let n = NodeId(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.to_string(), "N7");
        assert_eq!(NodeId::from(7usize), n);
    }

    #[test]
    fn node_id_ordering_is_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(3), NodeId(3));
    }
}
