//! The runtime abstraction behind every blocking or time-reading primitive
//! in the stack: real threads and the wall clock by default, a deterministic
//! discrete-event simulator (`sss-sim`) when a [`SimScheduler`] is installed.
//!
//! # Why this lives in `sss-vclock`
//!
//! Every crate that blocks or reads time — `sss-net` (mailboxes, reply
//! channels, the transport delay wheel), `sss-storage` (lock-table waits),
//! `sss-faults` (fault-plan timing), `sss-core`/`sss-baselines` (protocol
//! timeouts and backoffs) — already depends on this crate for [`crate::NodeId`]
//! and [`crate::VectorClock`]. Hosting the scheduler trait here lets all of
//! them consult the simulation hooks without introducing a single new
//! dependency edge.
//!
//! # The two modes
//!
//! **Threaded (default).** No scheduler is installed anywhere. The free
//! functions [`now`] and [`sleep`] fall through to [`Instant::now`] and
//! [`std::thread::sleep`]; mailboxes and lock tables block on their
//! condvars. Behavior is byte-identical to the pre-abstraction code.
//!
//! **Simulated.** A [`SimScheduler`] implementation (the `SimRuntime` in
//! `sss-sim`) owns a virtual clock and a seeded run queue. Node workers and
//! workload clients run as *cooperative tasks*: exactly one task executes at
//! any moment, and a task gives up its turn only at a blocking point
//! ([`SimScheduler::park`], [`SimScheduler::sleep`]). Each task's thread has
//! the scheduler installed in thread-local storage (see [`current`]), so
//! deep call sites — a lock-table wait inside a prepare handler, a protocol
//! timeout in a session — discover the simulation without any plumbing.
//! Blocking primitives created on host threads (mailboxes, transports) are
//! additionally handed an explicit [`SchedulerHandle`] at construction so
//! host-side operations such as `close()` can wake parked tasks.
//!
//! # Virtual instants
//!
//! A simulated clock still hands out [`std::time::Instant`] values so that
//! every existing `Instant`-typed API (fault-plan epochs, history records,
//! snapshot-queue ages, trace timestamps) works unchanged: the simulator
//! anchors a real `Instant` at construction and returns
//! `anchor + virtual_elapsed`. Virtual instants from one simulation compare
//! and subtract exactly like real ones; they must simply never be compared
//! against `Instant::now()` taken outside the simulation — which is why all
//! protocol code reads time through [`now`].

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A scheduler that owns time and task execution for one simulated world.
///
/// Implementations must be internally synchronized: methods are called from
/// the simulation's task threads (which carry the thread-local handle) *and*
/// from host threads (e.g. `Mailbox::close` during shutdown).
///
/// # Parking protocol
///
/// [`park`](SimScheduler::park) is level-triggered with spurious wakeups,
/// exactly like a condvar: a caller re-checks its predicate in a loop.
/// [`wake`](SimScheduler::wake) makes *all* parked tasks runnable. Because
/// only one task executes at a time, the check-then-park race of real
/// condvars cannot occur: no other task can run (and thus no wakeup can be
/// produced) between a task's predicate check and its park.
pub trait SimScheduler: Send + Sync {
    /// The current virtual time, as a fabricated [`Instant`].
    fn now(&self) -> Instant;

    /// Blocks the calling task for `duration` of virtual time. Must be
    /// called from a simulation task (a thread spawned via
    /// [`spawn_task`](SimScheduler::spawn_task)).
    fn sleep(&self, duration: Duration);

    /// Parks the calling task until a [`wake`](SimScheduler::wake) or until
    /// virtual time reaches `deadline` (if given). Spurious returns are
    /// allowed; callers loop on their predicate. Must be called from a
    /// simulation task.
    fn park(&self, deadline: Option<Instant>);

    /// Makes every parked task runnable. Callable from any thread,
    /// including host threads and event closures; kick-starts the scheduler
    /// if it was idle.
    fn wake(&self);

    /// Schedules `event` to run when virtual time reaches `at` (clamped to
    /// the current time if already past). Events scheduled for the same
    /// instant run in scheduling order. Returns a token for
    /// [`cancel`](SimScheduler::cancel).
    fn schedule(&self, at: Instant, event: Box<dyn FnOnce() + Send>) -> u64;

    /// Cancels a scheduled event. Returns `true` if the event had not yet
    /// run (and now never will).
    fn cancel(&self, token: u64) -> bool;

    /// Spawns a cooperative task on its own OS thread. The task starts
    /// runnable, executes only when the scheduler hands it the turn, and
    /// carries the scheduler in its thread-local storage.
    ///
    /// `daemon` tasks (node workers, service loops) are expected to park
    /// indefinitely while idle and do not count toward quiescence; a
    /// deadlock is declared only when a *non-daemon* (foreground) task is
    /// parked forever with no timer or runnable task left.
    fn spawn_task(&self, name: String, daemon: bool, f: Box<dyn FnOnce() + Send>)
        -> JoinHandle<()>;

    /// Appends `line` to the scheduler's debug trace, if one is active
    /// (see the simulator's `SSS_SIM_TRACE`). Instrumentation points in
    /// protocol code use this to interleave data-level events (message
    /// sends, state transitions) with the schedule when chasing a
    /// determinism bug; the default is a no-op.
    fn trace(&self, line: &str) {
        let _ = line;
    }

    /// `true` when a debug trace is active, so instrumentation points can
    /// skip formatting their (possibly expensive) trace lines.
    fn tracing(&self) -> bool {
        false
    }
}

impl std::fmt::Debug for dyn SimScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimScheduler")
    }
}

/// Shared handle to a scheduler.
pub type SchedulerHandle = Arc<dyn SimScheduler>;

thread_local! {
    static CURRENT: std::cell::RefCell<Option<SchedulerHandle>> =
        const { std::cell::RefCell::new(None) };
}

/// Returns the scheduler installed on this thread, if any. Simulation task
/// threads carry one; host threads and threaded-mode workers return `None`.
pub fn current() -> Option<SchedulerHandle> {
    CURRENT.with(|cell| cell.borrow().clone())
}

/// Runs `f` with `scheduler` installed as this thread's current scheduler,
/// restoring the previous value afterwards (also on panic). Used by the
/// simulator's task wrappers; tests may use it to run inline code "inside"
/// a simulation.
pub fn enter<R>(scheduler: &SchedulerHandle, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SchedulerHandle>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|cell| *cell.borrow_mut() = self.0.take());
        }
    }
    let previous = CURRENT.with(|cell| cell.borrow_mut().replace(Arc::clone(scheduler)));
    let _restore = Restore(previous);
    f()
}

/// The current time: virtual when called on a simulation task, real
/// otherwise. Protocol code reads time through this so the same binary runs
/// under both runtimes.
pub fn now() -> Instant {
    match current() {
        Some(scheduler) => scheduler.now(),
        None => Instant::now(),
    }
}

/// Time elapsed since `start`, measured against [`now`] — virtual when
/// called on a simulation task, real otherwise. Protocol code must use this
/// instead of [`Instant::elapsed`]: under simulation `start` is a virtual
/// instant, and measuring it against the real clock both yields a
/// meaningless duration and (when the result gates a decision) makes runs
/// wall-clock-dependent, breaking seeded replay.
pub fn elapsed_since(start: Instant) -> Duration {
    now().saturating_duration_since(start)
}

/// Sleeps for `duration`: virtual when called on a simulation task (other
/// tasks run and the clock advances), real otherwise.
pub fn sleep(duration: Duration) {
    match current() {
        Some(scheduler) => scheduler.sleep(duration),
        None => std::thread::sleep(duration),
    }
}

/// An attempt-scaled pause policy shared by every retry loop in the stack:
/// scenario-driver abort retries, client unavailable-node retries, and the
/// reliable-delivery retransmission timers.
///
/// Two growth modes — linear (`base * attempt`) and exponential
/// (`base * 2^(attempt-1)`) — both clamped to `cap`, with optional
/// *deterministic* jitter: the jitter for `(seed, attempt)` is a pure hash,
/// so seeded replays (and the simulator's fingerprint checks) observe
/// identical pauses. Attempt numbering starts at 1; attempt 0 yields
/// [`Duration::ZERO`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    exponential: bool,
    /// Jitter seed; `None` disables jitter entirely.
    jitter_seed: Option<u64>,
}

impl Backoff {
    /// Linear backoff: `base * attempt`, clamped to `cap`, no jitter.
    pub fn linear(base: Duration, cap: Duration) -> Self {
        Backoff {
            base,
            cap,
            exponential: false,
            jitter_seed: None,
        }
    }

    /// Exponential backoff: `base * 2^(attempt-1)`, clamped to `cap`,
    /// no jitter.
    pub fn exponential(base: Duration, cap: Duration) -> Self {
        Backoff {
            base,
            cap,
            exponential: true,
            jitter_seed: None,
        }
    }

    /// Adds deterministic jitter seeded by `seed`: each attempt's pause is
    /// scaled by a factor in `[0.5, 1.0)` derived from a pure hash of
    /// `(seed, attempt)`.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The pause before retry number `attempt` (1-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let nanos = self.base.as_nanos() as u64;
        let scaled = if self.exponential {
            nanos.saturating_mul(1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX))
        } else {
            nanos.saturating_mul(attempt as u64)
        };
        let clamped = scaled.min(self.cap.as_nanos() as u64);
        let jittered = match self.jitter_seed {
            // Factor in [1/2, 1): full-throughput retries keep their order
            // of magnitude while seeded runs stay reproducible.
            Some(seed) => clamped / 2 + mix(seed, attempt as u64) % (clamped / 2).max(1),
            None => clamped,
        };
        Duration::from_nanos(jittered)
    }

    /// Sleeps for [`Backoff::delay`]`(attempt)` on the current runtime
    /// (virtual time under simulation).
    pub fn pause(&self, attempt: u32) {
        let delay = self.delay(attempt);
        if !delay.is_zero() {
            sleep(delay);
        }
    }
}

/// SplitMix64-style finalizer over `(seed, attempt)`; a pure function so
/// jittered backoff stays deterministic under seeded replay.
fn mix(seed: u64, attempt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A scheduler stub that only records calls; enough to test the
    /// thread-local plumbing without pulling in the simulator.
    struct Stub {
        base: Instant,
        offset: Duration,
        slept: AtomicU64,
    }

    impl SimScheduler for Stub {
        fn now(&self) -> Instant {
            self.base + self.offset
        }
        fn sleep(&self, duration: Duration) {
            self.slept
                .fetch_add(duration.as_nanos() as u64, Ordering::Relaxed);
        }
        fn park(&self, _deadline: Option<Instant>) {}
        fn wake(&self) {}
        fn schedule(&self, _at: Instant, _event: Box<dyn FnOnce() + Send>) -> u64 {
            0
        }
        fn cancel(&self, _token: u64) -> bool {
            false
        }
        fn spawn_task(
            &self,
            name: String,
            _daemon: bool,
            f: Box<dyn FnOnce() + Send>,
        ) -> JoinHandle<()> {
            std::thread::Builder::new().name(name).spawn(f).unwrap()
        }
    }

    #[test]
    fn now_falls_back_to_real_time_without_a_scheduler() {
        assert!(current().is_none());
        let before = Instant::now();
        let observed = now();
        assert!(observed >= before);
    }

    #[test]
    fn enter_installs_and_restores_the_scheduler() {
        let base = Instant::now();
        let stub: SchedulerHandle = Arc::new(Stub {
            base,
            offset: Duration::from_secs(1000),
            slept: AtomicU64::new(0),
        });
        assert!(current().is_none());
        enter(&stub, || {
            assert!(current().is_some());
            assert_eq!(now(), base + Duration::from_secs(1000));
            sleep(Duration::from_millis(5));
        });
        assert!(current().is_none());
    }

    #[test]
    fn sleep_routes_to_the_installed_scheduler() {
        let stub = Arc::new(Stub {
            base: Instant::now(),
            offset: Duration::ZERO,
            slept: AtomicU64::new(0),
        });
        let handle: SchedulerHandle = Arc::clone(&stub) as SchedulerHandle;
        enter(&handle, || sleep(Duration::from_nanos(42)));
        assert_eq!(stub.slept.load(Ordering::Relaxed), 42);
    }

    #[test]
    fn linear_backoff_scales_and_caps() {
        let b = Backoff::linear(Duration::from_micros(50), Duration::from_millis(2));
        assert_eq!(b.delay(0), Duration::ZERO);
        assert_eq!(b.delay(1), Duration::from_micros(50));
        assert_eq!(b.delay(3), Duration::from_micros(150));
        assert_eq!(b.delay(40), Duration::from_millis(2));
        assert_eq!(b.delay(10_000), Duration::from_millis(2));
    }

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let b = Backoff::exponential(Duration::from_millis(1), Duration::from_millis(100));
        assert_eq!(b.delay(1), Duration::from_millis(1));
        assert_eq!(b.delay(2), Duration::from_millis(2));
        assert_eq!(b.delay(5), Duration::from_millis(16));
        assert_eq!(b.delay(32), Duration::from_millis(100));
        assert_eq!(b.delay(1_000), Duration::from_millis(100));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let b =
            Backoff::exponential(Duration::from_millis(4), Duration::from_secs(1)).with_jitter(42);
        for attempt in 1..16 {
            let d = b.delay(attempt);
            assert_eq!(d, b.delay(attempt), "same (seed, attempt) → same delay");
            let full = Backoff::exponential(Duration::from_millis(4), Duration::from_secs(1))
                .delay(attempt);
            assert!(d >= full / 2 && d < full, "jitter stays in [full/2, full)");
        }
        let other =
            Backoff::exponential(Duration::from_millis(4), Duration::from_secs(1)).with_jitter(43);
        assert_ne!(b.delay(3), other.delay(3), "different seeds differ");
    }

    #[test]
    fn enter_restores_on_nesting() {
        let a: SchedulerHandle = Arc::new(Stub {
            base: Instant::now(),
            offset: Duration::from_secs(1),
            slept: AtomicU64::new(0),
        });
        let b: SchedulerHandle = Arc::new(Stub {
            base: Instant::now(),
            offset: Duration::from_secs(2),
            slept: AtomicU64::new(0),
        });
        enter(&a, || {
            let outer = now();
            enter(&b, || {
                assert_ne!(now(), outer);
            });
            assert_eq!(now(), outer);
        });
    }
}
