//! The [`VectorClock`] type and its partial order.

use serde::{Deserialize, Serialize};
use smallvec::SmallVec;

/// Number of entries a [`VectorClock`] stores inline (without heap
/// allocation). Clusters up to this size — which covers every configuration
/// the paper evaluates — never allocate for a clock, and clock clones on the
/// message hot path are plain `memcpy`s. Larger clusters transparently spill
/// to the heap.
pub const INLINE_WIDTH: usize = 8;

/// Result of comparing two vector clocks under the entry-wise partial order.
///
/// The paper (§IV) defines `v1 <= v2` iff `∀i, v1[i] <= v2[i]`, and
/// `v1 < v2` when additionally some entry is strictly smaller. Two clocks
/// that are ordered in neither direction are *concurrent*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VcOrdering {
    /// Every entry is equal.
    Equal,
    /// `self < other`: `self` happened-before `other`.
    Before,
    /// `self > other`: `other` happened-before `self`.
    After,
    /// Neither dominates the other.
    Concurrent,
}

/// A fixed-width vector clock with one entry per node of the cluster.
///
/// In SSS a transaction `T` carries `T.VC` (its visibility bound) and every
/// node `Ni` maintains `NodeVC`; committed versions are stamped with the
/// commit vector clock of the transaction that produced them (paper §III-A).
///
/// The width of the clock is fixed at construction and all binary operations
/// panic if the widths differ — mixing clocks from clusters of different
/// sizes is always a logic error.
///
/// Entries are stored inline for clusters of up to [`INLINE_WIDTH`] nodes
/// (spilling to the heap beyond that), so creating, cloning and dropping
/// clocks — which happens on every protocol message — does not touch the
/// allocator in the common case.
///
/// # Example
///
/// ```rust
/// use sss_vclock::VectorClock;
///
/// let mut node_vc = VectorClock::new(4);
/// node_vc.increment(2);
/// assert_eq!(node_vc.get(2), 1);
/// assert_eq!(node_vc.get(0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock {
    entries: SmallVec<[u64; INLINE_WIDTH]>,
}

impl VectorClock {
    /// Creates a zeroed vector clock with `width` entries (one per node).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero: a cluster always has at least one node.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "vector clock width must be non-zero");
        VectorClock {
            entries: SmallVec::from_elem(0, width),
        }
    }

    /// Creates a vector clock from explicit entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn from_entries(entries: Vec<u64>) -> Self {
        assert!(!entries.is_empty(), "vector clock width must be non-zero");
        VectorClock {
            entries: SmallVec::from_vec(entries),
        }
    }

    /// `true` when the entries are stored inline (width at most
    /// [`INLINE_WIDTH`]): no heap allocation backs this clock.
    pub fn is_inline(&self) -> bool {
        !self.entries.spilled()
    }

    /// Number of entries (equals the number of nodes in the cluster).
    pub fn width(&self) -> usize {
        self.entries.len()
    }

    /// Returns entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn get(&self, i: usize) -> u64 {
        self.entries[i]
    }

    /// Sets entry `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set(&mut self, i: usize, value: u64) {
        self.entries[i] = value;
    }

    /// Increments entry `i` by one and returns the new value.
    ///
    /// This is the `NodeVC[i]++` step performed by a write replica during the
    /// 2PC prepare phase (paper, Algorithm 2 line 9).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn increment(&mut self, i: usize) -> u64 {
        self.entries[i] += 1;
        self.entries[i]
    }

    /// Entry-wise maximum with `other`, in place (`self := max(self, other)`).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(
            self.width(),
            other.width(),
            "cannot merge vector clocks of different widths"
        );
        for (a, b) in self.entries.iter_mut().zip(other.entries.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Returns the entry-wise maximum of `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn merged(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// `true` iff `∀i, self[i] >= other[i]` (i.e. `other <= self`).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn dominates(&self, other: &VectorClock) -> bool {
        assert_eq!(
            self.width(),
            other.width(),
            "cannot compare vector clocks of different widths"
        );
        self.entries
            .iter()
            .zip(other.entries.iter())
            .all(|(a, b)| a >= b)
    }

    /// `true` iff `self <= other` under the entry-wise order.
    pub fn le(&self, other: &VectorClock) -> bool {
        other.dominates(self)
    }

    /// `true` iff `self < other`: `self <= other` and at least one entry is
    /// strictly smaller.
    pub fn lt(&self, other: &VectorClock) -> bool {
        self.le(other) && self.entries != other.entries
    }

    /// Compares two clocks under the partial order.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn partial_cmp_vc(&self, other: &VectorClock) -> VcOrdering {
        let le = self.le(other);
        let ge = self.dominates(other);
        match (le, ge) {
            (true, true) => VcOrdering::Equal,
            (true, false) => VcOrdering::Before,
            (false, true) => VcOrdering::After,
            (false, false) => VcOrdering::Concurrent,
        }
    }

    /// `true` iff the two clocks are concurrent (neither dominates).
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.partial_cmp_vc(other) == VcOrdering::Concurrent
    }

    /// Iterates over the entries in node-index order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().copied()
    }

    /// Returns the entries as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }

    /// Sum of all entries; a cheap scalar proxy used for diagnostics only.
    pub fn total(&self) -> u64 {
        self.entries.iter().sum()
    }

    /// Returns the maximum entry among the node indices in `indices`.
    ///
    /// This computes `xactVN = max{commitVC[w] : Nw ∈ replicas(T.ws)}`
    /// (paper, Algorithm 1 line 21).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn max_over(&self, indices: impl IntoIterator<Item = usize>) -> u64 {
        indices
            .into_iter()
            .map(|i| self.entries[i])
            .max()
            .unwrap_or(0)
    }

    /// Sets every entry in `indices` to `value`.
    ///
    /// This is the `commitVC[j] ← xactVN` assignment over all write replicas
    /// (paper, Algorithm 1 lines 22-24).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn assign_over(&mut self, indices: impl IntoIterator<Item = usize>, value: u64) {
        for i in indices {
            self.entries[i] = value;
        }
    }
}

impl std::fmt::Display for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl AsRef<[u64]> for VectorClock {
    fn as_ref(&self) -> &[u64] {
        &self.entries
    }
}

impl From<Vec<u64>> for VectorClock {
    fn from(entries: Vec<u64>) -> Self {
        VectorClock::from_entries(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(entries: &[u64]) -> VectorClock {
        VectorClock::from_entries(entries.to_vec())
    }

    #[test]
    fn new_clock_is_zero() {
        let c = VectorClock::new(4);
        assert_eq!(c.width(), 4);
        assert!(c.iter().all(|e| e == 0));
        assert_eq!(c.total(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_panics() {
        let _ = VectorClock::new(0);
    }

    #[test]
    fn increment_and_get() {
        let mut c = VectorClock::new(3);
        assert_eq!(c.increment(1), 1);
        assert_eq!(c.increment(1), 2);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn set_overwrites_entry() {
        let mut c = VectorClock::new(2);
        c.set(0, 9);
        assert_eq!(c.get(0), 9);
    }

    #[test]
    fn merge_is_entrywise_max() {
        let a = vc(&[5, 4, 0]);
        let b = vc(&[3, 7, 1]);
        assert_eq!(a.merged(&b), vc(&[5, 7, 1]));
        assert_eq!(b.merged(&a), vc(&[5, 7, 1]));
    }

    #[test]
    fn domination_and_ordering() {
        let lo = vc(&[1, 2, 3]);
        let hi = vc(&[2, 2, 4]);
        assert!(hi.dominates(&lo));
        assert!(lo.le(&hi));
        assert!(lo.lt(&hi));
        assert!(!hi.lt(&lo));
        assert_eq!(lo.partial_cmp_vc(&hi), VcOrdering::Before);
        assert_eq!(hi.partial_cmp_vc(&lo), VcOrdering::After);
        assert_eq!(lo.partial_cmp_vc(&lo), VcOrdering::Equal);
    }

    #[test]
    fn concurrent_clocks_detected() {
        let a = vc(&[2, 0]);
        let b = vc(&[0, 2]);
        assert!(a.concurrent_with(&b));
        assert_eq!(a.partial_cmp_vc(&b), VcOrdering::Concurrent);
    }

    #[test]
    fn max_over_and_assign_over_match_commit_vc_computation() {
        // Mirrors Algorithm 1 lines 21-24: write replicas are {0, 2}.
        let mut commit_vc = vc(&[3, 9, 7]);
        let xact_vn = commit_vc.max_over([0usize, 2usize]);
        assert_eq!(xact_vn, 7);
        commit_vc.assign_over([0usize, 2usize], xact_vn);
        assert_eq!(commit_vc, vc(&[7, 9, 7]));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(vc(&[5, 4]).to_string(), "[5,4]");
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merging_mismatched_widths_panics() {
        let mut a = VectorClock::new(2);
        a.merge(&VectorClock::new(3));
    }

    #[test]
    fn conversion_from_vec() {
        let c: VectorClock = vec![1, 2, 3].into();
        assert_eq!(c.as_slice(), &[1, 2, 3]);
        assert_eq!(c.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn small_clusters_stay_inline() {
        assert!(VectorClock::new(1).is_inline());
        assert!(VectorClock::new(INLINE_WIDTH).is_inline());
        let mut c = VectorClock::new(4);
        c.increment(3);
        assert!(c.clone().is_inline(), "clones stay inline too");
    }

    #[test]
    fn wide_clusters_spill_but_behave_identically() {
        let width = INLINE_WIDTH + 3;
        let mut wide = VectorClock::new(width);
        assert!(!wide.is_inline());
        wide.increment(INLINE_WIDTH);
        wide.set(0, 5);
        let mut other = VectorClock::new(width);
        other.set(1, 7);
        let merged = wide.merged(&other);
        assert_eq!(merged.get(0), 5);
        assert_eq!(merged.get(1), 7);
        assert_eq!(merged.get(INLINE_WIDTH), 1);
        assert!(merged.dominates(&wide) && merged.dominates(&other));
        let from_vec = VectorClock::from_entries(vec![1; width]);
        assert!(!from_vec.is_inline());
        assert_eq!(from_vec.width(), width);
    }
}
