//! Micro-benchmarks of the vector-clock operations on the protocol's hot
//! paths (merge on every message receipt, dominance checks on every read).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use sss_vclock::VectorClock;

fn bench_vector_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_clock");
    for width in [5usize, 20, 100] {
        let a = VectorClock::from_entries((0..width as u64).collect());
        let b = VectorClock::from_entries((0..width as u64).rev().collect());
        group.bench_function(format!("merge_width_{width}"), |bencher| {
            bencher.iter_batched(
                || a.clone(),
                |mut clock| clock.merge(&b),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("dominates_width_{width}"), |bencher| {
            bencher.iter(|| std::hint::black_box(a.dominates(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vector_clock);
criterion_main!(benches);
