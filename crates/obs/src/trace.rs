//! Per-transaction phase tracing: spans, per-node trace rings, and the
//! [`ObsHub`] that engines thread through their sessions.
//!
//! A client session carries a [`TxnTrace`] through each transaction and
//! flips it between [`Phase`]s at protocol boundaries; on finish the spans
//! land in the owning node's [`TraceRing`] (fixed capacity, wait-free slot
//! allocation, oldest entries overwritten) and each span's duration is
//! recorded into the hub's per-phase latency [`Histogram`]. Server-side
//! phases that never pass through a client session (2PC/Walter lock
//! acquisition) are pushed as standalone spans on a reserved per-node lane.
//!
//! Drained spans serialize to Chrome-trace JSON (`chrome://tracing`,
//! Perfetto): see [`chrome_trace_json`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::hist::Histogram;
use crate::metrics::{Counter, MetricsRegistry, SharedHistogram};

/// A protocol phase a transaction can spend time in. One flat enum covers
/// every engine; [`Phase::for_engine`] lists which subset an engine's spans
/// can use (the span taxonomy CI validates trace coverage against).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Reading the transaction's read set (all engines).
    Read,
    /// SSS Pre-Commit: prepare multicast through vote collection.
    PreCommit,
    /// SSS: decide multicast through install acknowledgements (the
    /// commit-queue wait of the write replicas, observed from the client).
    CommitQueueWait,
    /// SSS: external-commit confirmation round(s), including the leader
    /// linger of the grouped path.
    ConfirmWait,
    /// SSS: standalone `ReleaseExternal` broadcast (singleton-confirmation
    /// path only; the grouped path piggybacks releases).
    Release,
    /// 2PC/Walter: prepare multicast through vote collection.
    Prepare,
    /// 2PC/Walter: decide multicast (2PC: until the decide is sent).
    Decide,
    /// 2PC: waiting for the write replicas' install acknowledgements.
    InstallAck,
    /// 2PC/Walter server-side: lock acquisition inside prepare handling.
    LockAcquire,
    /// ROCOCO: first round — dispatching update pieces to key owners.
    Dispatch,
    /// ROCOCO: second round — commit messages and piece execution.
    Execute,
}

impl Phase {
    /// Number of phases (size of per-phase arrays).
    pub const COUNT: usize = 11;

    /// Every phase, in label order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Read,
        Phase::PreCommit,
        Phase::CommitQueueWait,
        Phase::ConfirmWait,
        Phase::Release,
        Phase::Prepare,
        Phase::Decide,
        Phase::InstallAck,
        Phase::LockAcquire,
        Phase::Dispatch,
        Phase::Execute,
    ];

    /// Stable snake_case label used in traces and the throughput JSON.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Read => "read",
            Phase::PreCommit => "pre_commit",
            Phase::CommitQueueWait => "commit_queue_wait",
            Phase::ConfirmWait => "confirm_wait",
            Phase::Release => "release",
            Phase::Prepare => "prepare",
            Phase::Decide => "decide",
            Phase::InstallAck => "install_ack",
            Phase::LockAcquire => "lock_acquire",
            Phase::Dispatch => "dispatch",
            Phase::Execute => "execute",
        }
    }

    /// Dense index into per-phase arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Read => 0,
            Phase::PreCommit => 1,
            Phase::CommitQueueWait => 2,
            Phase::ConfirmWait => 3,
            Phase::Release => 4,
            Phase::Prepare => 5,
            Phase::Decide => 6,
            Phase::InstallAck => 7,
            Phase::LockAcquire => 8,
            Phase::Dispatch => 9,
            Phase::Execute => 10,
        }
    }

    /// `true` for phases measured inside a server's message handler rather
    /// than across a client-observed protocol step. Server-scope spans
    /// overlap the client-scope ones covering the same wall-clock time, so
    /// per-phase *share* computations exclude them from the denominator.
    pub fn is_server_scope(self) -> bool {
        matches!(self, Phase::LockAcquire)
    }

    /// The span taxonomy of the engine registered under `engine` (the
    /// `TransactionEngine::name` labels): every phase this engine's traces
    /// can emit. Empty for unknown names. The `release` phase only appears
    /// on SSS's singleton-confirmation path (`confirm_epoch <= 1`).
    pub fn for_engine(engine: &str) -> &'static [Phase] {
        match engine {
            "SSS" => &[
                Phase::Read,
                Phase::PreCommit,
                Phase::CommitQueueWait,
                Phase::ConfirmWait,
                Phase::Release,
            ],
            "2PC" => &[
                Phase::Read,
                Phase::LockAcquire,
                Phase::Prepare,
                Phase::Decide,
                Phase::InstallAck,
            ],
            "Walter" => &[
                Phase::Read,
                Phase::LockAcquire,
                Phase::Prepare,
                Phase::Decide,
            ],
            "ROCOCO" => &[Phase::Dispatch, Phase::Execute, Phase::Read],
            _ => &[],
        }
    }
}

/// One completed span: a transaction spent `dur_ns` in `phase` starting at
/// `start_ns` (nanoseconds since the hub's epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// The protocol phase.
    pub phase: Phase,
    /// Node the span is attributed to (the client's colocated node, or the
    /// handling server for server-scope spans).
    pub node: u32,
    /// Trace lane (one per client session; server-scope spans use a
    /// reserved per-node lane). Becomes the Chrome-trace thread id.
    pub lane: u64,
    /// Transaction sequence number (0 for server-scope spans that are not
    /// attributed to one transaction).
    pub txn: u64,
    /// Span start, nanoseconds since the hub epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Whether the owning transaction eventually committed (server-scope
    /// spans report `true`).
    pub committed: bool,
}

/// Default per-node trace-ring capacity (spans).
pub const DEFAULT_RING_CAPACITY: usize = 32_768;

/// Base of the reserved server lanes (see [`ObsHub::server_lane`]); client
/// lanes are allocated densely from zero and never reach it.
const SERVER_LANE_BASE: u64 = 1 << 32;

/// A fixed-capacity ring of completed spans. Slot allocation is a single
/// `fetch_add` (no lock, no allocation on the push path beyond the slot
/// write), and the ring overwrites its oldest entries when full — tracing
/// never blocks or grows, it just forgets the distant past.
pub struct TraceRing {
    slots: Vec<Mutex<Option<TraceSpan>>>,
    head: AtomicUsize,
    pushed: AtomicU64,
}

impl TraceRing {
    /// Creates a ring holding up to `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            pushed: AtomicU64::new(0),
        }
    }

    /// Records a span, overwriting the oldest entry when full.
    pub fn push(&self, span: TraceSpan) {
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[slot].lock() = Some(span);
        self.pushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Total spans ever pushed (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Takes every retained span out of the ring, ordered by start time.
    pub fn drain(&self) -> Vec<TraceSpan> {
        let mut spans: Vec<TraceSpan> = self.slots.iter().filter_map(|s| s.lock().take()).collect();
        spans.sort_by_key(|s| (s.start_ns, s.lane));
        spans
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.pushed())
            .finish()
    }
}

/// The per-cluster observability hub: the time base, lane allocator,
/// metrics registry, per-phase latency histograms and per-node trace rings
/// shared by every session and node of one engine instance.
///
/// Engines carry an `Option<Arc<ObsHub>>` in their configuration; `None`
/// reduces every instrumentation site to a single branch, which is what
/// keeps the tracing-off cost near zero.
pub struct ObsHub {
    epoch: Instant,
    lanes: AtomicU64,
    registry: MetricsRegistry,
    phase_hist: Vec<Arc<SharedHistogram>>,
    rings: Vec<TraceRing>,
    committed: Arc<Counter>,
    aborted: Arc<Counter>,
}

impl ObsHub {
    /// Creates a hub for a cluster of `nodes` nodes with the default
    /// per-node ring capacity.
    pub fn new(nodes: usize) -> Arc<Self> {
        ObsHub::with_ring_capacity(nodes, DEFAULT_RING_CAPACITY)
    }

    /// Creates a hub with an explicit per-node ring capacity. The time base
    /// is the runtime clock's "now": virtual time when called from inside a
    /// simulation task, wall-clock time otherwise.
    pub fn with_ring_capacity(nodes: usize, capacity: usize) -> Arc<Self> {
        Self::with_epoch(nodes, capacity, sss_vclock::runtime::now())
    }

    /// Creates a hub whose trace time base starts at `epoch`. Simulated
    /// clusters pass the scheduler's virtual "now" so that trace timestamps
    /// are virtual (and reproducible per seed) even though the hub itself
    /// is constructed on a host thread outside the simulation.
    pub fn with_epoch(nodes: usize, capacity: usize, epoch: Instant) -> Arc<Self> {
        let registry = MetricsRegistry::new();
        let phase_hist = Phase::ALL
            .iter()
            .map(|p| registry.histogram(&format!("phase/{}", p.label())))
            .collect();
        let committed = registry.counter("txn/committed");
        let aborted = registry.counter("txn/aborted");
        Arc::new(ObsHub {
            epoch,
            lanes: AtomicU64::new(0),
            registry,
            phase_hist,
            rings: (0..nodes.max(1))
                .map(|_| TraceRing::new(capacity))
                .collect(),
            committed,
            aborted,
        })
    }

    /// Nanoseconds since the hub was created (the trace time base), read
    /// from the runtime clock so simulated clusters record virtual time.
    pub fn now_ns(&self) -> u64 {
        sss_vclock::runtime::now()
            .saturating_duration_since(self.epoch)
            .as_nanos() as u64
    }

    /// Allocates a fresh client trace lane (one per session).
    pub fn next_lane(&self) -> u64 {
        self.lanes.fetch_add(1, Ordering::Relaxed)
    }

    /// The reserved lane server-scope spans of `node` are recorded on.
    pub fn server_lane(node: usize) -> u64 {
        SERVER_LANE_BASE + node as u64
    }

    /// The hub's metrics registry (phase histograms are registered as
    /// `phase/<label>`, transaction outcomes as `txn/committed` and
    /// `txn/aborted`).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Records a completed span into the owning node's ring and the
    /// per-phase latency histogram (microseconds).
    pub fn record_span(&self, span: TraceSpan) {
        self.phase_hist[span.phase.index()].record(span.dur_ns / 1_000);
        let ring = &self.rings[(span.node as usize).min(self.rings.len() - 1)];
        ring.push(span);
    }

    /// Records a server-scope span (e.g. 2PC lock acquisition) measured
    /// around `started` on `node`.
    pub fn record_server_span(&self, node: usize, phase: Phase, started: Instant) {
        let dur_ns = sss_vclock::runtime::now()
            .saturating_duration_since(started)
            .as_nanos() as u64;
        let end_ns = self.now_ns();
        self.record_span(TraceSpan {
            phase,
            node: node as u32,
            lane: ObsHub::server_lane(node),
            txn: 0,
            start_ns: end_ns.saturating_sub(dur_ns),
            dur_ns,
            committed: true,
        });
    }

    /// Marks a transaction outcome on the hub's counters.
    pub fn record_outcome(&self, committed: bool) {
        if committed {
            self.committed.inc();
        } else {
            self.aborted.inc();
        }
    }

    /// Snapshot of every per-phase latency histogram (microseconds), in
    /// [`Phase::ALL`] order.
    pub fn phase_snapshot(&self) -> Vec<(Phase, Histogram)> {
        Phase::ALL
            .iter()
            .map(|&p| (p, self.phase_hist[p.index()].snapshot()))
            .collect()
    }

    /// Drains every node's trace ring into one start-time-ordered list.
    pub fn drain_spans(&self) -> Vec<TraceSpan> {
        let mut spans: Vec<TraceSpan> = self.rings.iter().flat_map(|r| r.drain()).collect();
        spans.sort_by_key(|s| (s.start_ns, s.lane));
        spans
    }

    /// Total spans recorded so far (including ring-overwritten ones).
    pub fn spans_recorded(&self) -> u64 {
        self.rings.iter().map(|r| r.pushed()).sum()
    }
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHub")
            .field("nodes", &self.rings.len())
            .field("lanes", &self.lanes.load(Ordering::Relaxed))
            .field("spans_recorded", &self.spans_recorded())
            .finish()
    }
}

/// The phase trace of one in-flight transaction. At most one phase is open
/// at a time; entering a phase closes the previous one, and
/// [`TxnTrace::finish`] closes the last span and flushes everything to the
/// hub. Dropping an unfinished trace discards it (aborted paths call
/// `finish(false)` explicitly where the outcome is known).
pub struct TxnTrace {
    hub: Arc<ObsHub>,
    node: u32,
    lane: u64,
    txn: u64,
    open: Option<(Phase, u64)>,
    spans: Vec<(Phase, u64, u64)>,
}

impl TxnTrace {
    /// Starts a trace for transaction `txn` on client lane `lane` of
    /// `node`. No span is open until the first [`TxnTrace::enter`].
    pub fn begin(hub: Arc<ObsHub>, node: usize, lane: u64, txn: u64) -> Self {
        TxnTrace {
            hub,
            node: node as u32,
            lane,
            txn,
            open: None,
            spans: Vec::with_capacity(4),
        }
    }

    /// Enters `phase`, closing the currently open span (if any). Re-entering
    /// the open phase is a no-op, so per-operation call sites (e.g. one per
    /// read) cost one branch after the first.
    pub fn enter(&mut self, phase: Phase) {
        if let Some((open, _)) = self.open {
            if open == phase {
                return;
            }
        }
        let now = self.hub.now_ns();
        if let Some((open, start)) = self.open.take() {
            self.spans.push((open, start, now.saturating_sub(start)));
        }
        self.open = Some((phase, now));
    }

    /// Closes the open span without entering a new phase (protocol gaps the
    /// taxonomy does not attribute).
    pub fn exit(&mut self) {
        if let Some((open, start)) = self.open.take() {
            let now = self.hub.now_ns();
            self.spans.push((open, start, now.saturating_sub(start)));
        }
    }

    /// Closes the open span, flushes every span to the hub tagged with the
    /// transaction's outcome, and records the outcome counters.
    pub fn finish(mut self, committed: bool) {
        self.exit();
        for (phase, start_ns, dur_ns) in self.spans.drain(..) {
            self.hub.record_span(TraceSpan {
                phase,
                node: self.node,
                lane: self.lane,
                txn: self.txn,
                start_ns,
                dur_ns,
                committed,
            });
        }
        self.hub.record_outcome(committed);
    }
}

impl std::fmt::Debug for TxnTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnTrace")
            .field("node", &self.node)
            .field("lane", &self.lane)
            .field("txn", &self.txn)
            .field("open", &self.open.map(|(p, _)| p))
            .field("spans", &self.spans.len())
            .finish()
    }
}

fn push_json_escaped(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serializes labelled span groups as Chrome-trace JSON (the
/// `{"traceEvents": [...]}` format `chrome://tracing` and Perfetto load).
///
/// Each `(label, spans)` group gets its own process-id space so several
/// benchmark cells can share one trace file: a span of node `n` in group
/// `g` renders as pid `g * 64 + n` with a `process_name` metadata record
/// of `"<label> node<n>"`. Lanes become thread ids; timestamps and
/// durations are microseconds (fractional).
pub fn chrome_trace_json(groups: &[(String, Vec<TraceSpan>)]) -> String {
    use std::collections::BTreeSet;
    use std::fmt::Write as _;

    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    for (group_index, (label, spans)) in groups.iter().enumerate() {
        let nodes: BTreeSet<u32> = spans.iter().map(|s| s.node).collect();
        for node in nodes {
            let pid = group_index as u64 * 64 + node as u64;
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ");
            let _ = write!(out, "{pid}");
            out.push_str(", \"args\": {\"name\": \"");
            push_json_escaped(&mut out, label);
            let _ = write!(out, " node{node}");
            out.push_str("\"}}");
        }
        for span in spans {
            let pid = group_index as u64 * 64 + span.node as u64;
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"pid\": {}, \"tid\": {}, \"args\": {{\"txn\": {}, \"committed\": {}}}}}",
                span.phase.label(),
                span.start_ns as f64 / 1_000.0,
                span.dur_ns as f64 / 1_000.0,
                pid,
                span.lane,
                span.txn,
                span.committed,
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_and_indices_are_dense() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
        let labels: std::collections::BTreeSet<&str> =
            Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), Phase::COUNT, "labels must be unique");
    }

    #[test]
    fn engine_taxonomies_cover_known_engines() {
        for engine in ["SSS", "2PC", "Walter", "ROCOCO"] {
            assert!(!Phase::for_engine(engine).is_empty(), "{engine}");
        }
        assert!(Phase::for_engine("SSS").contains(&Phase::ConfirmWait));
        assert!(Phase::for_engine("2PC").contains(&Phase::InstallAck));
        assert!(Phase::for_engine("nope").is_empty());
        assert!(Phase::LockAcquire.is_server_scope());
        assert!(!Phase::ConfirmWait.is_server_scope());
    }

    #[test]
    fn trace_spans_flow_to_ring_and_histograms() {
        let hub = ObsHub::new(2);
        let lane = hub.next_lane();
        let mut trace = TxnTrace::begin(Arc::clone(&hub), 1, lane, 7);
        trace.enter(Phase::Read);
        trace.enter(Phase::Read); // no-op re-entry
        trace.enter(Phase::PreCommit);
        trace.finish(true);
        let spans = hub.drain_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, Phase::Read);
        assert_eq!(spans[1].phase, Phase::PreCommit);
        assert!(spans
            .iter()
            .all(|s| s.node == 1 && s.txn == 7 && s.committed));
        let phases = hub.phase_snapshot();
        assert_eq!(phases[Phase::Read.index()].1.count(), 1);
        assert_eq!(phases[Phase::PreCommit.index()].1.count(), 1);
        assert_eq!(hub.registry().snapshot().counters["txn/committed"], 1);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let ring = TraceRing::new(2);
        let span = |txn| TraceSpan {
            phase: Phase::Read,
            node: 0,
            lane: 0,
            txn,
            start_ns: txn,
            dur_ns: 1,
            committed: true,
        };
        for txn in 0..5 {
            ring.push(span(txn));
        }
        assert_eq!(ring.pushed(), 5);
        let spans = ring.drain();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.txn >= 3), "oldest overwritten");
        assert!(ring.drain().is_empty(), "drain takes the spans out");
    }

    #[test]
    fn server_spans_use_the_reserved_lane() {
        let hub = ObsHub::new(1);
        hub.record_server_span(0, Phase::LockAcquire, Instant::now());
        let spans = hub.drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].lane, ObsHub::server_lane(0));
        assert_eq!(spans[0].phase, Phase::LockAcquire);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let hub = ObsHub::new(1);
        let mut trace = TxnTrace::begin(Arc::clone(&hub), 0, hub.next_lane(), 1);
        trace.enter(Phase::Read);
        trace.finish(false);
        let json = chrome_trace_json(&[("SSS e32".to_string(), hub.drain_spans())]);
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\": \"read\""));
        assert!(json.contains("\"committed\": false"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn dropped_trace_records_nothing() {
        let hub = ObsHub::new(1);
        let mut trace = TxnTrace::begin(Arc::clone(&hub), 0, 0, 1);
        trace.enter(Phase::Read);
        drop(trace);
        assert_eq!(hub.spans_recorded(), 0);
    }
}
