//! Observability substrate shared by every engine in the workspace.
//!
//! The paper's §V cost analysis reasons about *where* a transaction's
//! latency lives — read, prepare/vote, commit-queue wait, external-commit
//! confirmation — but the reproduction so far only exposed end-of-run
//! counter totals. This crate supplies the missing layer, in three parts:
//!
//! * **Phase tracing** ([`trace`]): a [`TxnTrace`] carried through a client
//!   session opens and closes [`Phase`] spans at protocol boundaries;
//!   completed spans land in per-node fixed-capacity [`TraceRing`]s (the
//!   push path is a `fetch_add` plus one slot write) and drain as
//!   Chrome-trace JSON ([`chrome_trace_json`]). The [`ObsHub`] is the
//!   per-cluster share point: time base, lane allocator, rings, metrics.
//! * **Metrics** ([`metrics`], [`hist`]): a log-bucketed [`Histogram`] with
//!   exact count/sum/min/max, bounded quantile error and a deterministic
//!   (associative, commutative) merge; a [`MetricsRegistry`] of named
//!   counters/gauges/histograms with one snapshot-and-diff surface
//!   ([`MetricsSnapshot`]) that harnesses fold their typed stats into.
//! * **Liveness** ([`watchdog`]): a passive [`WatchdogCore`] that turns a
//!   driver-supplied progress counter plus diagnostics closure into stall
//!   verdicts and a bounded history of progress snapshots.
//!
//! Everything here is engine-agnostic and dependency-light; engines carry
//! an `Option<Arc<ObsHub>>` in their configuration so the tracing-off cost
//! is a single branch per instrumentation site.

#![deny(missing_docs)]

pub mod hist;
pub mod metrics;
pub mod trace;
pub mod watchdog;

pub use hist::Histogram;
pub use metrics::{Counter, Gauge, MetricsRegistry, MetricsSnapshot, SharedHistogram};
pub use trace::{chrome_trace_json, ObsHub, Phase, TraceRing, TraceSpan, TxnTrace};
pub use watchdog::{NodeLiveness, ProgressSnapshot, WatchdogConfig, WatchdogCore, WatchdogVerdict};
