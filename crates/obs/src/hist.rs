//! Log-bucketed latency histogram with a deterministic merge.
//!
//! The bucket layout is HDR-style: values below [`SUB_BUCKETS`] get one
//! bucket each (exact), and every power-of-two octave above that is split
//! into [`SUB_BUCKETS`] equal sub-buckets, so the relative quantization
//! error is bounded by `1/SUB_BUCKETS` at every magnitude. Counts, the sum,
//! the minimum and the maximum are exact; only quantiles are quantized.
//!
//! [`Histogram::merge`] is an element-wise add, which makes it associative
//! and commutative — per-client histograms can be merged in any order (or
//! grouping) and always produce the same aggregate, a property the harness
//! relies on for deterministic multi-trial reports (and which the property
//! tests in this module pin down).

/// Sub-buckets per power-of-two octave; also the count of exact unit
/// buckets at the bottom of the range.
pub const SUB_BUCKETS: usize = 16;

/// Total number of buckets needed to cover the whole `u64` range.
///
/// Octave `o >= 1` (values in `[16 << (o-1), 16 << o)`) contributes
/// [`SUB_BUCKETS`] buckets; the top octave is capped by the width of `u64`.
pub const NUM_BUCKETS: usize = 61 * SUB_BUCKETS;

/// A fixed-size log-bucketed histogram of `u64` samples (the harness
/// records latencies in microseconds).
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Index of the bucket covering `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros() as usize; // >= 4
        (exp - 3) * SUB_BUCKETS + (value >> (exp - 4)) as usize - SUB_BUCKETS
    }
}

/// Lowest value covered by bucket `index` (the inverse of
/// [`bucket_index`], rounded down to the bucket boundary).
fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let octave = index / SUB_BUCKETS;
        let offset = (index % SUB_BUCKETS) as u64;
        (SUB_BUCKETS as u64 + offset) << (octave - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum += value.saturating_mul(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of every recorded sample (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact smallest recorded sample; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`, quantized to its bucket's
    /// lower bound (and clamped into `[min, max]`, so `q = 0` and `q = 1`
    /// are exact). Uses the same rank convention as sorting the samples and
    /// indexing at `floor((count - 1) * q)`, so it agrees with an exact
    /// percentile within one bucket width. Returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).floor() as u64;
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen > rank {
                return bucket_lower_bound(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Width of the bucket covering `value` — the quantization bound of
    /// [`Histogram::value_at_quantile`] at that magnitude.
    pub fn bucket_width(value: u64) -> u64 {
        let index = bucket_index(value);
        if index + 1 < NUM_BUCKETS {
            bucket_lower_bound(index + 1) - bucket_lower_bound(index)
        } else {
            u64::MAX - bucket_lower_bound(index)
        }
    }

    /// Element-wise merge of `other` into `self`. Associative and
    /// commutative: any merge order over a set of histograms yields the
    /// same result, which keeps multi-client aggregation deterministic.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference `self - earlier` for window accounting over a
    /// histogram that only ever grows (saturating per bucket). The window's
    /// min/max are recovered from the diffed buckets, so they are exact
    /// only up to one bucket width.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (index, (later, early)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            let n = later.saturating_sub(*early);
            if n > 0 {
                out.counts[index] = n;
                out.count += n;
                let bound = bucket_lower_bound(index);
                out.min = out.min.min(bound);
                out.max = out.max.max(bound);
            }
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        // The global max is monotone: if the later snapshot's max falls in a
        // bucket the window touched, it is the window's exact max.
        if out.count > 0 && bucket_index(self.max) == bucket_index(out.max) {
            out.max = self.max;
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), 15);
    }

    #[test]
    fn bucket_bounds_are_monotone_and_tight() {
        for index in 1..NUM_BUCKETS {
            assert!(bucket_lower_bound(index) > bucket_lower_bound(index - 1));
        }
        for v in [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            1000,
            123_456,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let index = bucket_index(v);
            assert!(bucket_lower_bound(index) <= v);
            if index + 1 < NUM_BUCKETS {
                assert!(
                    v < bucket_lower_bound(index + 1),
                    "value {v} beyond bucket {index}"
                );
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_bounded_by_sub_bucket_resolution() {
        for v in [100u64, 999, 5_000, 1 << 20, (1 << 40) + 12345] {
            let err = v - bucket_lower_bound(bucket_index(v));
            assert!(err as f64 <= v as f64 / SUB_BUCKETS as f64);
        }
    }

    #[test]
    fn quantiles_match_exact_percentiles_within_one_bucket() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (1..=1000).map(|i| i * 37 % 9973).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let exact = sorted[((sorted.len() - 1) as f64 * q).floor() as usize];
            let approx = h.value_at_quantile(q);
            assert!(approx <= exact, "q={q}: {approx} > {exact}");
            assert!(
                exact - approx <= Histogram::bucket_width(exact),
                "q={q}: {exact} - {approx} exceeds one bucket"
            );
        }
    }

    #[test]
    fn diff_isolates_a_window() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(100);
        let before = h.clone();
        h.record(100);
        h.record(2000);
        let window = h.diff(&before);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum(), 2100);
        assert_eq!(window.value_at_quantile(0.0), 100);
        assert!(window.max() >= bucket_lower_bound(bucket_index(2000)));
    }

    #[test]
    fn mean_and_sum_are_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(33);
        assert_eq!(h.sum(), 63);
        assert!((h.mean() - 21.0).abs() < f64::EPSILON);
    }

    fn arb_histogram() -> impl Strategy<Value = Histogram> {
        prop::collection::vec((0u64..1_000_000, 1u64..4), 0..64).prop_map(|samples| {
            let mut h = Histogram::new();
            for (v, n) in samples {
                h.record_n(v, n);
            }
            h
        })
    }

    proptest! {
        #[test]
        fn merge_is_commutative(a in arb_histogram(), b in arb_histogram()) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn merge_is_associative(
            a in arb_histogram(),
            b in arb_histogram(),
            c in arb_histogram(),
        ) {
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn merge_preserves_count_and_sum(a in arb_histogram(), b in arb_histogram()) {
            let mut merged = a.clone();
            merged.merge(&b);
            prop_assert_eq!(merged.count(), a.count() + b.count());
            prop_assert_eq!(merged.sum(), a.sum() + b.sum());
        }
    }
}
