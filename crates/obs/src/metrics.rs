//! A small metrics registry: named counters, gauges and histograms behind
//! one snapshot-and-diff surface.
//!
//! The registry is the aggregation point that subsumes the scattered
//! per-subsystem counter structs (`StorageStats`, `MailboxStats`, the
//! harness's ad-hoc latency sampling): harnesses fold whatever typed stats
//! they collect into a [`MetricsSnapshot`], snapshot at window boundaries
//! and [`MetricsSnapshot::diff`] — one code path for every counter in the
//! system. Counters are monotonic and lock-free; histograms are recorded
//! under a short per-histogram mutex.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::Histogram;

/// A monotonic, lock-free counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge (queue depths, in-flight rounds).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A [`Histogram`] behind a mutex, shareable between recording threads.
#[derive(Debug, Default)]
pub struct SharedHistogram(Mutex<Histogram>);

impl SharedHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        SharedHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.0.lock().record(value);
    }

    /// Clones the current contents.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().clone()
    }

    /// Merges `other` into this histogram.
    pub fn merge(&self, other: &Histogram) {
        self.0.lock().merge(other);
    }
}

/// A registry of named metrics. Registration is idempotent: asking for an
/// existing name returns the existing handle, so independent subsystems can
/// share a metric by name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<SharedHistogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock();
        Arc::clone(
            counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock();
        Arc::clone(
            gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<SharedHistogram> {
        let mut histograms = self.histograms.lock();
        Arc::clone(
            histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(SharedHistogram::new())),
        )
    }

    /// A coherent-enough snapshot of every registered metric (each metric is
    /// read atomically; the set is read under the registry locks).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, counter) in self.counters.lock().iter() {
            snap.counters.insert(name.clone(), counter.get());
        }
        for (name, gauge) in self.gauges.lock().iter() {
            snap.gauges.insert(name.clone(), gauge.get());
        }
        for (name, histogram) in self.histograms.lock().iter() {
            snap.histograms.insert(name.clone(), histogram.snapshot());
        }
        snap
    }
}

/// A point-in-time copy of a [`MetricsRegistry`] (or of typed stats folded
/// in by a harness), diffable against an earlier snapshot of the same
/// metrics for per-window accounting.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (diffs keep the later snapshot's value).
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Folds an externally maintained counter into the snapshot (used by
    /// harnesses to pull typed stats like `StorageStats` under the same
    /// surface). Adds when the name already exists.
    pub fn fold_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// Folds an externally maintained gauge into the snapshot
    /// (last-write-wins).
    pub fn fold_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Window difference `self - earlier`: counters subtract (saturating,
    /// missing names count as zero), gauges keep this snapshot's value,
    /// histograms diff bucket-wise.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (name, &later) in &self.counters {
            let early = earlier.counters.get(name).copied().unwrap_or(0);
            out.counters
                .insert(name.clone(), later.saturating_sub(early));
        }
        out.gauges = self.gauges.clone();
        for (name, later) in &self.histograms {
            let diffed = match earlier.histograms.get(name) {
                Some(early) => later.diff(early),
                None => later.clone(),
            };
            out.histograms.insert(name.clone(), diffed);
        }
        out
    }

    /// Renders the snapshot as sorted `name value` lines (diagnostics).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value}");
        }
        for (name, histogram) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count={} mean={:.1} p50={} p99={} max={}",
                histogram.count(),
                histogram.mean(),
                histogram.value_at_quantile(0.5),
                histogram.value_at_quantile(0.99),
                histogram.max(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("txn/committed");
        let b = registry.counter("txn/committed");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(registry.snapshot().counters["txn/committed"], 4);
    }

    #[test]
    fn snapshot_diff_isolates_a_window() {
        let registry = MetricsRegistry::new();
        let committed = registry.counter("committed");
        let depth = registry.gauge("depth");
        let latency = registry.histogram("latency");
        committed.add(10);
        depth.set(5);
        latency.record(100);
        let before = registry.snapshot();
        committed.add(7);
        depth.set(2);
        latency.record(300);
        let window = registry.snapshot().diff(&before);
        assert_eq!(window.counters["committed"], 7);
        assert_eq!(window.gauges["depth"], 2, "gauges keep the later value");
        assert_eq!(window.histograms["latency"].count(), 1);
    }

    #[test]
    fn folded_stats_share_the_surface() {
        let mut snap = MetricsSnapshot::default();
        snap.fold_counter("storage/mv/installed", 12);
        snap.fold_counter("storage/mv/installed", 3);
        snap.fold_gauge("mailbox/queued", 9);
        assert_eq!(snap.counters["storage/mv/installed"], 15);
        let rendered = snap.render();
        assert!(rendered.contains("counter storage/mv/installed 15"));
        assert!(rendered.contains("gauge mailbox/queued 9"));
    }
}
